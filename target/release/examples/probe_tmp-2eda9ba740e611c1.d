/root/repo/target/release/examples/probe_tmp-2eda9ba740e611c1.d: examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-2eda9ba740e611c1: examples/probe_tmp.rs

examples/probe_tmp.rs:
