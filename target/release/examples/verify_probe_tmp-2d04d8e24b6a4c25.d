/root/repo/target/release/examples/verify_probe_tmp-2d04d8e24b6a4c25.d: examples/verify_probe_tmp.rs

/root/repo/target/release/examples/verify_probe_tmp-2d04d8e24b6a4c25: examples/verify_probe_tmp.rs

examples/verify_probe_tmp.rs:
