/root/repo/target/release/deps/rand-f28fcf5fbfd657fa.d: crates/shim-rand/src/lib.rs

/root/repo/target/release/deps/librand-f28fcf5fbfd657fa.rlib: crates/shim-rand/src/lib.rs

/root/repo/target/release/deps/librand-f28fcf5fbfd657fa.rmeta: crates/shim-rand/src/lib.rs

crates/shim-rand/src/lib.rs:
