/root/repo/target/release/deps/mass_obs-abffe6286b2260db.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/release/deps/libmass_obs-abffe6286b2260db.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/release/deps/libmass_obs-abffe6286b2260db.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
