/root/repo/target/release/deps/mass_crawler-b2f2af311e2b349e.d: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

/root/repo/target/release/deps/libmass_crawler-b2f2af311e2b349e.rlib: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

/root/repo/target/release/deps/libmass_crawler-b2f2af311e2b349e.rmeta: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

crates/crawler/src/lib.rs:
crates/crawler/src/assemble.rs:
crates/crawler/src/backoff.rs:
crates/crawler/src/breaker.rs:
crates/crawler/src/checkpoint.rs:
crates/crawler/src/config.rs:
crates/crawler/src/engine.rs:
crates/crawler/src/host.rs:
crates/crawler/src/politeness.rs:
crates/crawler/src/xml_host.rs:
