/root/repo/target/release/deps/mass-ba5f1c001ecae513.d: src/lib.rs

/root/repo/target/release/deps/libmass-ba5f1c001ecae513.rlib: src/lib.rs

/root/repo/target/release/deps/libmass-ba5f1c001ecae513.rmeta: src/lib.rs

src/lib.rs:
