/root/repo/target/release/deps/mass_eval-b4ba970cb39e54de.d: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

/root/repo/target/release/deps/libmass_eval-b4ba970cb39e54de.rlib: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

/root/repo/target/release/deps/libmass_eval-b4ba970cb39e54de.rmeta: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

crates/eval/src/lib.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
crates/eval/src/table.rs:
crates/eval/src/user_study.rs:
