/root/repo/target/release/deps/mass_xml-72b84b29beebcc5d.d: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs

/root/repo/target/release/deps/libmass_xml-72b84b29beebcc5d.rlib: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs

/root/repo/target/release/deps/libmass_xml-72b84b29beebcc5d.rmeta: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs

crates/xmlstore/src/lib.rs:
crates/xmlstore/src/dataset_io.rs:
crates/xmlstore/src/error.rs:
crates/xmlstore/src/escape.rs:
crates/xmlstore/src/parser.rs:
crates/xmlstore/src/tree.rs:
crates/xmlstore/src/writer.rs:
