/root/repo/target/release/deps/mass_graph-a81f9b3768ee7a04.d: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs

/root/repo/target/release/deps/libmass_graph-a81f9b3768ee7a04.rlib: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs

/root/repo/target/release/deps/libmass_graph-a81f9b3768ee7a04.rmeta: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs

crates/graph/src/lib.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/hits.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/traversal.rs:
