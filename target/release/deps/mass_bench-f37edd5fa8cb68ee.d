/root/repo/target/release/deps/mass_bench-f37edd5fa8cb68ee.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmass_bench-f37edd5fa8cb68ee.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmass_bench-f37edd5fa8cb68ee.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
