/root/repo/target/release/deps/mass_viz-2bfae6d73b3527f7.d: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/libmass_viz-2bfae6d73b3527f7.rlib: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/libmass_viz-2bfae6d73b3527f7.rmeta: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/export.rs:
crates/viz/src/filter.rs:
crates/viz/src/layout.rs:
crates/viz/src/network.rs:
crates/viz/src/stats.rs:
crates/viz/src/svg.rs:
