/root/repo/target/release/deps/proptest-7bfb886635ed3657.d: crates/shim-proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-7bfb886635ed3657.rlib: crates/shim-proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-7bfb886635ed3657.rmeta: crates/shim-proptest/src/lib.rs

crates/shim-proptest/src/lib.rs:
