/root/repo/target/release/deps/mass-ba9e30dd9e4b32ab.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/mass-ba9e30dd9e4b32ab: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
