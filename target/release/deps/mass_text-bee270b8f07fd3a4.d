/root/repo/target/release/deps/mass_text-bee270b8f07fd3a4.d: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/release/deps/libmass_text-bee270b8f07fd3a4.rlib: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/release/deps/libmass_text-bee270b8f07fd3a4.rmeta: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

crates/text/src/lib.rs:
crates/text/src/discovery.rs:
crates/text/src/interest.rs:
crates/text/src/nb.rs:
crates/text/src/novelty.rs:
crates/text/src/search.rs:
crates/text/src/sentiment.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
