/root/repo/target/release/deps/mass_bench-5384841b80fda086.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmass_bench-5384841b80fda086.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmass_bench-5384841b80fda086.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
