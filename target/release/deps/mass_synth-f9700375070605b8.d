/root/repo/target/release/deps/mass_synth-f9700375070605b8.d: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs

/root/repo/target/release/deps/libmass_synth-f9700375070605b8.rlib: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs

/root/repo/target/release/deps/libmass_synth-f9700375070605b8.rmeta: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs

crates/synth/src/lib.rs:
crates/synth/src/ads.rs:
crates/synth/src/config.rs:
crates/synth/src/generator.rs:
crates/synth/src/oracle.rs:
crates/synth/src/sampling.rs:
crates/synth/src/truth.rs:
crates/synth/src/vocab.rs:
