/root/repo/target/release/deps/mass-f01da02039c6fd1e.d: src/lib.rs

/root/repo/target/release/deps/libmass-f01da02039c6fd1e.rlib: src/lib.rs

/root/repo/target/release/deps/libmass-f01da02039c6fd1e.rmeta: src/lib.rs

src/lib.rs:
