/root/repo/target/release/deps/mass_types-0b7d2e6efc33c0ba.d: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs

/root/repo/target/release/deps/libmass_types-0b7d2e6efc33c0ba.rlib: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs

/root/repo/target/release/deps/libmass_types-0b7d2e6efc33c0ba.rmeta: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs

crates/types/src/lib.rs:
crates/types/src/dataset.rs:
crates/types/src/domains.rs:
crates/types/src/entity.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/index.rs:
