/root/repo/target/release/deps/mass_core-0bd86f3209c0fe97.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs

/root/repo/target/release/deps/libmass_core-0bd86f3209c0fe97.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs

/root/repo/target/release/deps/libmass_core-0bd86f3209c0fe97.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/baselines.rs:
crates/core/src/domain.rs:
crates/core/src/expert_search.rs:
crates/core/src/gl.rs:
crates/core/src/incremental.rs:
crates/core/src/params.rs:
crates/core/src/quality.rs:
crates/core/src/recommend.rs:
crates/core/src/solver.rs:
crates/core/src/topk.rs:
