/root/repo/target/release/deps/mass-c64f02058ac5df06.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/obs_session.rs

/root/repo/target/release/deps/mass-c64f02058ac5df06: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/obs_session.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/obs_session.rs:
