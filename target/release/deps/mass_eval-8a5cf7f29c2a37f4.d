/root/repo/target/release/deps/mass_eval-8a5cf7f29c2a37f4.d: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

/root/repo/target/release/deps/libmass_eval-8a5cf7f29c2a37f4.rlib: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

/root/repo/target/release/deps/libmass_eval-8a5cf7f29c2a37f4.rmeta: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

crates/eval/src/lib.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
crates/eval/src/table.rs:
crates/eval/src/user_study.rs:
