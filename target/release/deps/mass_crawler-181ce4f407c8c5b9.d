/root/repo/target/release/deps/mass_crawler-181ce4f407c8c5b9.d: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

/root/repo/target/release/deps/libmass_crawler-181ce4f407c8c5b9.rlib: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

/root/repo/target/release/deps/libmass_crawler-181ce4f407c8c5b9.rmeta: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

crates/crawler/src/lib.rs:
crates/crawler/src/assemble.rs:
crates/crawler/src/backoff.rs:
crates/crawler/src/breaker.rs:
crates/crawler/src/checkpoint.rs:
crates/crawler/src/config.rs:
crates/crawler/src/engine.rs:
crates/crawler/src/host.rs:
crates/crawler/src/politeness.rs:
crates/crawler/src/xml_host.rs:
