/root/repo/target/release/deps/table_x10_telemetry-723a2b19f034f84f.d: crates/bench/src/bin/table_x10_telemetry.rs

/root/repo/target/release/deps/table_x10_telemetry-723a2b19f034f84f: crates/bench/src/bin/table_x10_telemetry.rs

crates/bench/src/bin/table_x10_telemetry.rs:
