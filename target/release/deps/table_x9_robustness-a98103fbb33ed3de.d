/root/repo/target/release/deps/table_x9_robustness-a98103fbb33ed3de.d: crates/bench/src/bin/table_x9_robustness.rs

/root/repo/target/release/deps/table_x9_robustness-a98103fbb33ed3de: crates/bench/src/bin/table_x9_robustness.rs

crates/bench/src/bin/table_x9_robustness.rs:
