/root/repo/target/release/deps/mass_text-d0ad53922cef3a0e.d: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/release/deps/libmass_text-d0ad53922cef3a0e.rlib: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/release/deps/libmass_text-d0ad53922cef3a0e.rmeta: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

crates/text/src/lib.rs:
crates/text/src/discovery.rs:
crates/text/src/interest.rs:
crates/text/src/nb.rs:
crates/text/src/novelty.rs:
crates/text/src/search.rs:
crates/text/src/sentiment.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
