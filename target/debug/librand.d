/root/repo/target/debug/librand.rlib: /root/repo/crates/shim-rand/src/lib.rs
