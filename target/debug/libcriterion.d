/root/repo/target/debug/libcriterion.rlib: /root/repo/crates/shim-criterion/src/lib.rs
