/root/repo/target/debug/examples/topic_discovery-2649c6955de7fac5.d: examples/topic_discovery.rs

/root/repo/target/debug/examples/topic_discovery-2649c6955de7fac5: examples/topic_discovery.rs

examples/topic_discovery.rs:
