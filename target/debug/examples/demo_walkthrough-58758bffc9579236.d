/root/repo/target/debug/examples/demo_walkthrough-58758bffc9579236.d: examples/demo_walkthrough.rs

/root/repo/target/debug/examples/demo_walkthrough-58758bffc9579236: examples/demo_walkthrough.rs

examples/demo_walkthrough.rs:
