/root/repo/target/debug/examples/business_advertisement-b0dffe05514fbd18.d: examples/business_advertisement.rs Cargo.toml

/root/repo/target/debug/examples/libbusiness_advertisement-b0dffe05514fbd18.rmeta: examples/business_advertisement.rs Cargo.toml

examples/business_advertisement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
