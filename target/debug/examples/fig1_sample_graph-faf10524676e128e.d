/root/repo/target/debug/examples/fig1_sample_graph-faf10524676e128e.d: examples/fig1_sample_graph.rs

/root/repo/target/debug/examples/fig1_sample_graph-faf10524676e128e: examples/fig1_sample_graph.rs

examples/fig1_sample_graph.rs:
