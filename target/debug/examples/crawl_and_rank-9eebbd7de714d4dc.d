/root/repo/target/debug/examples/crawl_and_rank-9eebbd7de714d4dc.d: examples/crawl_and_rank.rs Cargo.toml

/root/repo/target/debug/examples/libcrawl_and_rank-9eebbd7de714d4dc.rmeta: examples/crawl_and_rank.rs Cargo.toml

examples/crawl_and_rank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
