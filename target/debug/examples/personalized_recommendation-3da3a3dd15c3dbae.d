/root/repo/target/debug/examples/personalized_recommendation-3da3a3dd15c3dbae.d: examples/personalized_recommendation.rs Cargo.toml

/root/repo/target/debug/examples/libpersonalized_recommendation-3da3a3dd15c3dbae.rmeta: examples/personalized_recommendation.rs Cargo.toml

examples/personalized_recommendation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
