/root/repo/target/debug/examples/expert_search-b77afda4b3527617.d: examples/expert_search.rs Cargo.toml

/root/repo/target/debug/examples/libexpert_search-b77afda4b3527617.rmeta: examples/expert_search.rs Cargo.toml

examples/expert_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
