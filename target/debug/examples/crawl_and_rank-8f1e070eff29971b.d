/root/repo/target/debug/examples/crawl_and_rank-8f1e070eff29971b.d: examples/crawl_and_rank.rs

/root/repo/target/debug/examples/crawl_and_rank-8f1e070eff29971b: examples/crawl_and_rank.rs

examples/crawl_and_rank.rs:
