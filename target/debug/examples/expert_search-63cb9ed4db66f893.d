/root/repo/target/debug/examples/expert_search-63cb9ed4db66f893.d: examples/expert_search.rs

/root/repo/target/debug/examples/expert_search-63cb9ed4db66f893: examples/expert_search.rs

examples/expert_search.rs:
