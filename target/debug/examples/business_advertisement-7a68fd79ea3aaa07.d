/root/repo/target/debug/examples/business_advertisement-7a68fd79ea3aaa07.d: examples/business_advertisement.rs

/root/repo/target/debug/examples/business_advertisement-7a68fd79ea3aaa07: examples/business_advertisement.rs

examples/business_advertisement.rs:
