/root/repo/target/debug/examples/incremental_updates-f541ea1a62179ef0.d: examples/incremental_updates.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_updates-f541ea1a62179ef0.rmeta: examples/incremental_updates.rs Cargo.toml

examples/incremental_updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
