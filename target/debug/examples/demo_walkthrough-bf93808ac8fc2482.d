/root/repo/target/debug/examples/demo_walkthrough-bf93808ac8fc2482.d: examples/demo_walkthrough.rs

/root/repo/target/debug/examples/demo_walkthrough-bf93808ac8fc2482: examples/demo_walkthrough.rs

examples/demo_walkthrough.rs:
