/root/repo/target/debug/examples/quickstart-52b8c4dc10e5ff52.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-52b8c4dc10e5ff52.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
