/root/repo/target/debug/examples/business_advertisement-6a054cbd65ce02f1.d: examples/business_advertisement.rs

/root/repo/target/debug/examples/business_advertisement-6a054cbd65ce02f1: examples/business_advertisement.rs

examples/business_advertisement.rs:
