/root/repo/target/debug/examples/demo_walkthrough-c393b41a305430e7.d: examples/demo_walkthrough.rs Cargo.toml

/root/repo/target/debug/examples/libdemo_walkthrough-c393b41a305430e7.rmeta: examples/demo_walkthrough.rs Cargo.toml

examples/demo_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
