/root/repo/target/debug/examples/crawl_and_rank-4c395a15983f07ea.d: examples/crawl_and_rank.rs

/root/repo/target/debug/examples/crawl_and_rank-4c395a15983f07ea: examples/crawl_and_rank.rs

examples/crawl_and_rank.rs:
