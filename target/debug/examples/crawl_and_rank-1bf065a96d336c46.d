/root/repo/target/debug/examples/crawl_and_rank-1bf065a96d336c46.d: examples/crawl_and_rank.rs Cargo.toml

/root/repo/target/debug/examples/libcrawl_and_rank-1bf065a96d336c46.rmeta: examples/crawl_and_rank.rs Cargo.toml

examples/crawl_and_rank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
