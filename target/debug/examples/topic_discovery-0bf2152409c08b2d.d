/root/repo/target/debug/examples/topic_discovery-0bf2152409c08b2d.d: examples/topic_discovery.rs Cargo.toml

/root/repo/target/debug/examples/libtopic_discovery-0bf2152409c08b2d.rmeta: examples/topic_discovery.rs Cargo.toml

examples/topic_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
