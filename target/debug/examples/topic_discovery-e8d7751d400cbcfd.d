/root/repo/target/debug/examples/topic_discovery-e8d7751d400cbcfd.d: examples/topic_discovery.rs Cargo.toml

/root/repo/target/debug/examples/libtopic_discovery-e8d7751d400cbcfd.rmeta: examples/topic_discovery.rs Cargo.toml

examples/topic_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
