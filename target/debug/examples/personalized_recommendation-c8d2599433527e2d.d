/root/repo/target/debug/examples/personalized_recommendation-c8d2599433527e2d.d: examples/personalized_recommendation.rs Cargo.toml

/root/repo/target/debug/examples/libpersonalized_recommendation-c8d2599433527e2d.rmeta: examples/personalized_recommendation.rs Cargo.toml

examples/personalized_recommendation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
