/root/repo/target/debug/examples/personalized_recommendation-c9f898201d8e21de.d: examples/personalized_recommendation.rs

/root/repo/target/debug/examples/personalized_recommendation-c9f898201d8e21de: examples/personalized_recommendation.rs

examples/personalized_recommendation.rs:
