/root/repo/target/debug/examples/incremental_updates-efb5c3f202f86659.d: examples/incremental_updates.rs

/root/repo/target/debug/examples/incremental_updates-efb5c3f202f86659: examples/incremental_updates.rs

examples/incremental_updates.rs:
