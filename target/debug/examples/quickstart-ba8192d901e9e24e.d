/root/repo/target/debug/examples/quickstart-ba8192d901e9e24e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ba8192d901e9e24e: examples/quickstart.rs

examples/quickstart.rs:
