/root/repo/target/debug/examples/personalized_recommendation-314ff4dd8267178f.d: examples/personalized_recommendation.rs

/root/repo/target/debug/examples/personalized_recommendation-314ff4dd8267178f: examples/personalized_recommendation.rs

examples/personalized_recommendation.rs:
