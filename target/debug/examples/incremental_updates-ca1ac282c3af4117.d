/root/repo/target/debug/examples/incremental_updates-ca1ac282c3af4117.d: examples/incremental_updates.rs

/root/repo/target/debug/examples/incremental_updates-ca1ac282c3af4117: examples/incremental_updates.rs

examples/incremental_updates.rs:
