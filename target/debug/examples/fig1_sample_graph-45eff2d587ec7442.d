/root/repo/target/debug/examples/fig1_sample_graph-45eff2d587ec7442.d: examples/fig1_sample_graph.rs Cargo.toml

/root/repo/target/debug/examples/libfig1_sample_graph-45eff2d587ec7442.rmeta: examples/fig1_sample_graph.rs Cargo.toml

examples/fig1_sample_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
