/root/repo/target/debug/examples/expert_search-9df96d9677d299ed.d: examples/expert_search.rs Cargo.toml

/root/repo/target/debug/examples/libexpert_search-9df96d9677d299ed.rmeta: examples/expert_search.rs Cargo.toml

examples/expert_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
