/root/repo/target/debug/examples/expert_search-3edab0785b443b0a.d: examples/expert_search.rs

/root/repo/target/debug/examples/expert_search-3edab0785b443b0a: examples/expert_search.rs

examples/expert_search.rs:
