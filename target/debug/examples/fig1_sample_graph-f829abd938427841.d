/root/repo/target/debug/examples/fig1_sample_graph-f829abd938427841.d: examples/fig1_sample_graph.rs

/root/repo/target/debug/examples/fig1_sample_graph-f829abd938427841: examples/fig1_sample_graph.rs

examples/fig1_sample_graph.rs:
