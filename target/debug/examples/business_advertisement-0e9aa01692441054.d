/root/repo/target/debug/examples/business_advertisement-0e9aa01692441054.d: examples/business_advertisement.rs Cargo.toml

/root/repo/target/debug/examples/libbusiness_advertisement-0e9aa01692441054.rmeta: examples/business_advertisement.rs Cargo.toml

examples/business_advertisement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
