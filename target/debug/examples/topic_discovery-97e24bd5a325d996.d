/root/repo/target/debug/examples/topic_discovery-97e24bd5a325d996.d: examples/topic_discovery.rs

/root/repo/target/debug/examples/topic_discovery-97e24bd5a325d996: examples/topic_discovery.rs

examples/topic_discovery.rs:
