/root/repo/target/debug/examples/quickstart-ef6c57127a58f171.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ef6c57127a58f171: examples/quickstart.rs

examples/quickstart.rs:
