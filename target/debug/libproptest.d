/root/repo/target/debug/libproptest.rlib: /root/repo/crates/shim-proptest/src/lib.rs
