/root/repo/target/debug/deps/ground_truth_recovery-d7ca456a67945713.d: tests/ground_truth_recovery.rs

/root/repo/target/debug/deps/ground_truth_recovery-d7ca456a67945713: tests/ground_truth_recovery.rs

tests/ground_truth_recovery.rs:
