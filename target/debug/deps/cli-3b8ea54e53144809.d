/root/repo/target/debug/deps/cli-3b8ea54e53144809.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-3b8ea54e53144809: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mass=/root/repo/target/debug/mass
