/root/repo/target/debug/deps/table_x7_classifier-db641a499ba79899.d: crates/bench/src/bin/table_x7_classifier.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x7_classifier-db641a499ba79899.rmeta: crates/bench/src/bin/table_x7_classifier.rs Cargo.toml

crates/bench/src/bin/table_x7_classifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
