/root/repo/target/debug/deps/mass_types-4ee3d65f35cd14b8.d: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs Cargo.toml

/root/repo/target/debug/deps/libmass_types-4ee3d65f35cd14b8.rmeta: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/dataset.rs:
crates/types/src/domains.rs:
crates/types/src/entity.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
