/root/repo/target/debug/deps/fig4_network-f7d97829c1823469.d: crates/bench/src/bin/fig4_network.rs

/root/repo/target/debug/deps/fig4_network-f7d97829c1823469: crates/bench/src/bin/fig4_network.rs

crates/bench/src/bin/fig4_network.rs:
