/root/repo/target/debug/deps/mass_crawler-a60720a23e14a379.d: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs Cargo.toml

/root/repo/target/debug/deps/libmass_crawler-a60720a23e14a379.rmeta: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs Cargo.toml

crates/crawler/src/lib.rs:
crates/crawler/src/assemble.rs:
crates/crawler/src/backoff.rs:
crates/crawler/src/breaker.rs:
crates/crawler/src/checkpoint.rs:
crates/crawler/src/config.rs:
crates/crawler/src/engine.rs:
crates/crawler/src/host.rs:
crates/crawler/src/politeness.rs:
crates/crawler/src/xml_host.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
