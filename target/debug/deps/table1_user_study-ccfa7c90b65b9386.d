/root/repo/target/debug/deps/table1_user_study-ccfa7c90b65b9386.d: crates/bench/src/bin/table1_user_study.rs

/root/repo/target/debug/deps/table1_user_study-ccfa7c90b65b9386: crates/bench/src/bin/table1_user_study.rs

crates/bench/src/bin/table1_user_study.rs:
