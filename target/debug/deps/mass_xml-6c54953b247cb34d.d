/root/repo/target/debug/deps/mass_xml-6c54953b247cb34d.d: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libmass_xml-6c54953b247cb34d.rmeta: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs Cargo.toml

crates/xmlstore/src/lib.rs:
crates/xmlstore/src/dataset_io.rs:
crates/xmlstore/src/error.rs:
crates/xmlstore/src/escape.rs:
crates/xmlstore/src/parser.rs:
crates/xmlstore/src/tree.rs:
crates/xmlstore/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
