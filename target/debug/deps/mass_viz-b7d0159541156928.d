/root/repo/target/debug/deps/mass_viz-b7d0159541156928.d: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/libmass_viz-b7d0159541156928.rlib: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/libmass_viz-b7d0159541156928.rmeta: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/export.rs:
crates/viz/src/filter.rs:
crates/viz/src/layout.rs:
crates/viz/src/network.rs:
crates/viz/src/stats.rs:
crates/viz/src/svg.rs:
