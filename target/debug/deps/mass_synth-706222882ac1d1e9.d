/root/repo/target/debug/deps/mass_synth-706222882ac1d1e9.d: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs

/root/repo/target/debug/deps/mass_synth-706222882ac1d1e9: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs

crates/synth/src/lib.rs:
crates/synth/src/ads.rs:
crates/synth/src/config.rs:
crates/synth/src/generator.rs:
crates/synth/src/oracle.rs:
crates/synth/src/sampling.rs:
crates/synth/src/truth.rs:
crates/synth/src/vocab.rs:
