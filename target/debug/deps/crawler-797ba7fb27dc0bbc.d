/root/repo/target/debug/deps/crawler-797ba7fb27dc0bbc.d: crates/bench/benches/crawler.rs Cargo.toml

/root/repo/target/debug/deps/libcrawler-797ba7fb27dc0bbc.rmeta: crates/bench/benches/crawler.rs Cargo.toml

crates/bench/benches/crawler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
