/root/repo/target/debug/deps/fig_x3_convergence-1cae2988f10f336b.d: crates/bench/src/bin/fig_x3_convergence.rs

/root/repo/target/debug/deps/fig_x3_convergence-1cae2988f10f336b: crates/bench/src/bin/fig_x3_convergence.rs

crates/bench/src/bin/fig_x3_convergence.rs:
