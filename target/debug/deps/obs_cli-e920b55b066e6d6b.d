/root/repo/target/debug/deps/obs_cli-e920b55b066e6d6b.d: crates/cli/tests/obs_cli.rs

/root/repo/target/debug/deps/obs_cli-e920b55b066e6d6b: crates/cli/tests/obs_cli.rs

crates/cli/tests/obs_cli.rs:

# env-dep:CARGO_BIN_EXE_mass=/root/repo/target/debug/mass
