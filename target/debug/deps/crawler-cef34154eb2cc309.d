/root/repo/target/debug/deps/crawler-cef34154eb2cc309.d: crates/bench/benches/crawler.rs Cargo.toml

/root/repo/target/debug/deps/libcrawler-cef34154eb2cc309.rmeta: crates/bench/benches/crawler.rs Cargo.toml

crates/bench/benches/crawler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
