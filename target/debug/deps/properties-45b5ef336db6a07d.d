/root/repo/target/debug/deps/properties-45b5ef336db6a07d.d: crates/text/tests/properties.rs

/root/repo/target/debug/deps/properties-45b5ef336db6a07d: crates/text/tests/properties.rs

crates/text/tests/properties.rs:
