/root/repo/target/debug/deps/table_x8_discovery-ed0e7bf61fdbede6.d: crates/bench/src/bin/table_x8_discovery.rs

/root/repo/target/debug/deps/table_x8_discovery-ed0e7bf61fdbede6: crates/bench/src/bin/table_x8_discovery.rs

crates/bench/src/bin/table_x8_discovery.rs:
