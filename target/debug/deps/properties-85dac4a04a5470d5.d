/root/repo/target/debug/deps/properties-85dac4a04a5470d5.d: crates/eval/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-85dac4a04a5470d5.rmeta: crates/eval/tests/properties.rs Cargo.toml

crates/eval/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
