/root/repo/target/debug/deps/mass-d0adb5bc294a2cea.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmass-d0adb5bc294a2cea.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
