/root/repo/target/debug/deps/properties-0a08b1e36eab6280.d: crates/crawler/tests/properties.rs

/root/repo/target/debug/deps/properties-0a08b1e36eab6280: crates/crawler/tests/properties.rs

crates/crawler/tests/properties.rs:
