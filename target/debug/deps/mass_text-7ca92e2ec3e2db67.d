/root/repo/target/debug/deps/mass_text-7ca92e2ec3e2db67.d: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/debug/deps/mass_text-7ca92e2ec3e2db67: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

crates/text/src/lib.rs:
crates/text/src/discovery.rs:
crates/text/src/interest.rs:
crates/text/src/nb.rs:
crates/text/src/novelty.rs:
crates/text/src/search.rs:
crates/text/src/sentiment.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
