/root/repo/target/debug/deps/fig1_sample_graph-e5697a2a48b7d763.d: crates/bench/src/bin/fig1_sample_graph.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_sample_graph-e5697a2a48b7d763.rmeta: crates/bench/src/bin/fig1_sample_graph.rs Cargo.toml

crates/bench/src/bin/fig1_sample_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
