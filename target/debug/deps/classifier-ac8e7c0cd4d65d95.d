/root/repo/target/debug/deps/classifier-ac8e7c0cd4d65d95.d: crates/bench/benches/classifier.rs

/root/repo/target/debug/deps/classifier-ac8e7c0cd4d65d95: crates/bench/benches/classifier.rs

crates/bench/benches/classifier.rs:
