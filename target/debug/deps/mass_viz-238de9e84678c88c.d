/root/repo/target/debug/deps/mass_viz-238de9e84678c88c.d: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libmass_viz-238de9e84678c88c.rmeta: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs Cargo.toml

crates/viz/src/lib.rs:
crates/viz/src/export.rs:
crates/viz/src/filter.rs:
crates/viz/src/layout.rs:
crates/viz/src/network.rs:
crates/viz/src/stats.rs:
crates/viz/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
