/root/repo/target/debug/deps/fig1_sample_graph-4f9f4a6850134931.d: crates/bench/src/bin/fig1_sample_graph.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_sample_graph-4f9f4a6850134931.rmeta: crates/bench/src/bin/fig1_sample_graph.rs Cargo.toml

crates/bench/src/bin/fig1_sample_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
