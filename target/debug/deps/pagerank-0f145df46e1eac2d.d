/root/repo/target/debug/deps/pagerank-0f145df46e1eac2d.d: crates/bench/benches/pagerank.rs Cargo.toml

/root/repo/target/debug/deps/libpagerank-0f145df46e1eac2d.rmeta: crates/bench/benches/pagerank.rs Cargo.toml

crates/bench/benches/pagerank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
