/root/repo/target/debug/deps/extensions-b4a29881a7afe05b.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-b4a29881a7afe05b.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
