/root/repo/target/debug/deps/mass_eval-a3520b7b1e8b2838.d: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

/root/repo/target/debug/deps/mass_eval-a3520b7b1e8b2838: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

crates/eval/src/lib.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
crates/eval/src/table.rs:
crates/eval/src/user_study.rs:
