/root/repo/target/debug/deps/ground_truth_recovery-8e3d05a50335a59b.d: tests/ground_truth_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libground_truth_recovery-8e3d05a50335a59b.rmeta: tests/ground_truth_recovery.rs Cargo.toml

tests/ground_truth_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
