/root/repo/target/debug/deps/mass_crawler-aa01f0c1d348a975.d: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

/root/repo/target/debug/deps/libmass_crawler-aa01f0c1d348a975.rlib: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

/root/repo/target/debug/deps/libmass_crawler-aa01f0c1d348a975.rmeta: crates/crawler/src/lib.rs crates/crawler/src/assemble.rs crates/crawler/src/backoff.rs crates/crawler/src/breaker.rs crates/crawler/src/checkpoint.rs crates/crawler/src/config.rs crates/crawler/src/engine.rs crates/crawler/src/host.rs crates/crawler/src/politeness.rs crates/crawler/src/xml_host.rs

crates/crawler/src/lib.rs:
crates/crawler/src/assemble.rs:
crates/crawler/src/backoff.rs:
crates/crawler/src/breaker.rs:
crates/crawler/src/checkpoint.rs:
crates/crawler/src/config.rs:
crates/crawler/src/engine.rs:
crates/crawler/src/host.rs:
crates/crawler/src/politeness.rs:
crates/crawler/src/xml_host.rs:
