/root/repo/target/debug/deps/fig4_network-18786de6f8909f11.d: crates/bench/src/bin/fig4_network.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_network-18786de6f8909f11.rmeta: crates/bench/src/bin/fig4_network.rs Cargo.toml

crates/bench/src/bin/fig4_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
