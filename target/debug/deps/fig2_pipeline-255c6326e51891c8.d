/root/repo/target/debug/deps/fig2_pipeline-255c6326e51891c8.d: crates/bench/src/bin/fig2_pipeline.rs

/root/repo/target/debug/deps/fig2_pipeline-255c6326e51891c8: crates/bench/src/bin/fig2_pipeline.rs

crates/bench/src/bin/fig2_pipeline.rs:
