/root/repo/target/debug/deps/ground_truth_recovery-10da9ca69bd24d1f.d: tests/ground_truth_recovery.rs

/root/repo/target/debug/deps/ground_truth_recovery-10da9ca69bd24d1f: tests/ground_truth_recovery.rs

tests/ground_truth_recovery.rs:
