/root/repo/target/debug/deps/mass_synth-7fe57bcc10251b72.d: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs

/root/repo/target/debug/deps/libmass_synth-7fe57bcc10251b72.rlib: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs

/root/repo/target/debug/deps/libmass_synth-7fe57bcc10251b72.rmeta: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs

crates/synth/src/lib.rs:
crates/synth/src/ads.rs:
crates/synth/src/config.rs:
crates/synth/src/generator.rs:
crates/synth/src/oracle.rs:
crates/synth/src/sampling.rs:
crates/synth/src/truth.rs:
crates/synth/src/vocab.rs:
