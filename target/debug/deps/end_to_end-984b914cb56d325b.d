/root/repo/target/debug/deps/end_to_end-984b914cb56d325b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-984b914cb56d325b: tests/end_to_end.rs

tests/end_to_end.rs:
