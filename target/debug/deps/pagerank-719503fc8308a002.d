/root/repo/target/debug/deps/pagerank-719503fc8308a002.d: crates/bench/benches/pagerank.rs Cargo.toml

/root/repo/target/debug/deps/libpagerank-719503fc8308a002.rmeta: crates/bench/benches/pagerank.rs Cargo.toml

crates/bench/benches/pagerank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
