/root/repo/target/debug/deps/table_x9_robustness-300962f36268acf4.d: crates/bench/src/bin/table_x9_robustness.rs

/root/repo/target/debug/deps/table_x9_robustness-300962f36268acf4: crates/bench/src/bin/table_x9_robustness.rs

crates/bench/src/bin/table_x9_robustness.rs:
