/root/repo/target/debug/deps/mass_graph-5e0b8e3d76a3c40a.d: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs

/root/repo/target/debug/deps/mass_graph-5e0b8e3d76a3c40a: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs

crates/graph/src/lib.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/hits.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/traversal.rs:
