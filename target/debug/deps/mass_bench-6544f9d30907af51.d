/root/repo/target/debug/deps/mass_bench-6544f9d30907af51.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmass_bench-6544f9d30907af51.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmass_bench-6544f9d30907af51.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
