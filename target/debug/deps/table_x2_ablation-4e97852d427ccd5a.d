/root/repo/target/debug/deps/table_x2_ablation-4e97852d427ccd5a.d: crates/bench/src/bin/table_x2_ablation.rs

/root/repo/target/debug/deps/table_x2_ablation-4e97852d427ccd5a: crates/bench/src/bin/table_x2_ablation.rs

crates/bench/src/bin/table_x2_ablation.rs:
