/root/repo/target/debug/deps/table_x8_discovery-7a2c2e715d483734.d: crates/bench/src/bin/table_x8_discovery.rs

/root/repo/target/debug/deps/table_x8_discovery-7a2c2e715d483734: crates/bench/src/bin/table_x8_discovery.rs

crates/bench/src/bin/table_x8_discovery.rs:
