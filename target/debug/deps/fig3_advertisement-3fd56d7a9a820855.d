/root/repo/target/debug/deps/fig3_advertisement-3fd56d7a9a820855.d: crates/bench/src/bin/fig3_advertisement.rs

/root/repo/target/debug/deps/fig3_advertisement-3fd56d7a9a820855: crates/bench/src/bin/fig3_advertisement.rs

crates/bench/src/bin/fig3_advertisement.rs:
