/root/repo/target/debug/deps/table_x7_classifier-21ae05a76ae3b004.d: crates/bench/src/bin/table_x7_classifier.rs

/root/repo/target/debug/deps/table_x7_classifier-21ae05a76ae3b004: crates/bench/src/bin/table_x7_classifier.rs

crates/bench/src/bin/table_x7_classifier.rs:
