/root/repo/target/debug/deps/ground_truth_recovery-b98862911e62a153.d: tests/ground_truth_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libground_truth_recovery-b98862911e62a153.rmeta: tests/ground_truth_recovery.rs Cargo.toml

tests/ground_truth_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
