/root/repo/target/debug/deps/properties-267429c067a88e80.d: crates/crawler/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-267429c067a88e80.rmeta: crates/crawler/tests/properties.rs Cargo.toml

crates/crawler/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
