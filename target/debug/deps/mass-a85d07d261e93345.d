/root/repo/target/debug/deps/mass-a85d07d261e93345.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libmass-a85d07d261e93345.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
