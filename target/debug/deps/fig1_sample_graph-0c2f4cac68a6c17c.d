/root/repo/target/debug/deps/fig1_sample_graph-0c2f4cac68a6c17c.d: crates/bench/src/bin/fig1_sample_graph.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_sample_graph-0c2f4cac68a6c17c.rmeta: crates/bench/src/bin/fig1_sample_graph.rs Cargo.toml

crates/bench/src/bin/fig1_sample_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
