/root/repo/target/debug/deps/chaos-6944996ed0cc09dc.d: crates/crawler/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-6944996ed0cc09dc.rmeta: crates/crawler/tests/chaos.rs Cargo.toml

crates/crawler/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
