/root/repo/target/debug/deps/obs_cli-ab5a02c81a0bf6a9.d: crates/cli/tests/obs_cli.rs Cargo.toml

/root/repo/target/debug/deps/libobs_cli-ab5a02c81a0bf6a9.rmeta: crates/cli/tests/obs_cli.rs Cargo.toml

crates/cli/tests/obs_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_mass=placeholder:mass
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
