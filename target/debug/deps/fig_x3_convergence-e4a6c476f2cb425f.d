/root/repo/target/debug/deps/fig_x3_convergence-e4a6c476f2cb425f.d: crates/bench/src/bin/fig_x3_convergence.rs

/root/repo/target/debug/deps/fig_x3_convergence-e4a6c476f2cb425f: crates/bench/src/bin/fig_x3_convergence.rs

crates/bench/src/bin/fig_x3_convergence.rs:
