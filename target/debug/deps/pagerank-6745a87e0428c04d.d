/root/repo/target/debug/deps/pagerank-6745a87e0428c04d.d: crates/bench/benches/pagerank.rs

/root/repo/target/debug/deps/pagerank-6745a87e0428c04d: crates/bench/benches/pagerank.rs

crates/bench/benches/pagerank.rs:
