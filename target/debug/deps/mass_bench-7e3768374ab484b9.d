/root/repo/target/debug/deps/mass_bench-7e3768374ab484b9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmass_bench-7e3768374ab484b9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
