/root/repo/target/debug/deps/mass_obs-133e6ba8babd2696.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libmass_obs-133e6ba8babd2696.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
