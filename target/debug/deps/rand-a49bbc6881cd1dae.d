/root/repo/target/debug/deps/rand-a49bbc6881cd1dae.d: crates/shim-rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-a49bbc6881cd1dae.rmeta: crates/shim-rand/src/lib.rs Cargo.toml

crates/shim-rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
