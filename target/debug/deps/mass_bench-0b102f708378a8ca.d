/root/repo/target/debug/deps/mass_bench-0b102f708378a8ca.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmass_bench-0b102f708378a8ca.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmass_bench-0b102f708378a8ca.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
