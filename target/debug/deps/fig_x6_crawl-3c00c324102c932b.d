/root/repo/target/debug/deps/fig_x6_crawl-3c00c324102c932b.d: crates/bench/src/bin/fig_x6_crawl.rs Cargo.toml

/root/repo/target/debug/deps/libfig_x6_crawl-3c00c324102c932b.rmeta: crates/bench/src/bin/fig_x6_crawl.rs Cargo.toml

crates/bench/src/bin/fig_x6_crawl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
