/root/repo/target/debug/deps/mass_obs-98549af74077e8cf.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/debug/deps/mass_obs-98549af74077e8cf: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
