/root/repo/target/debug/deps/table_x1_ranking_quality-deab6489429cf888.d: crates/bench/src/bin/table_x1_ranking_quality.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x1_ranking_quality-deab6489429cf888.rmeta: crates/bench/src/bin/table_x1_ranking_quality.rs Cargo.toml

crates/bench/src/bin/table_x1_ranking_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
