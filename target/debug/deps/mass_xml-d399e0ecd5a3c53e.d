/root/repo/target/debug/deps/mass_xml-d399e0ecd5a3c53e.d: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs

/root/repo/target/debug/deps/mass_xml-d399e0ecd5a3c53e: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs

crates/xmlstore/src/lib.rs:
crates/xmlstore/src/dataset_io.rs:
crates/xmlstore/src/error.rs:
crates/xmlstore/src/escape.rs:
crates/xmlstore/src/parser.rs:
crates/xmlstore/src/tree.rs:
crates/xmlstore/src/writer.rs:
