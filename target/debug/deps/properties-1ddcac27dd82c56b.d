/root/repo/target/debug/deps/properties-1ddcac27dd82c56b.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-1ddcac27dd82c56b: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
