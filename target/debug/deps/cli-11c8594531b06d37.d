/root/repo/target/debug/deps/cli-11c8594531b06d37.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-11c8594531b06d37.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_mass=placeholder:mass
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
