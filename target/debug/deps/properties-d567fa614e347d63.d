/root/repo/target/debug/deps/properties-d567fa614e347d63.d: crates/text/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d567fa614e347d63.rmeta: crates/text/tests/properties.rs Cargo.toml

crates/text/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
