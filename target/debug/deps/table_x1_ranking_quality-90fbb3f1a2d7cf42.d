/root/repo/target/debug/deps/table_x1_ranking_quality-90fbb3f1a2d7cf42.d: crates/bench/src/bin/table_x1_ranking_quality.rs

/root/repo/target/debug/deps/table_x1_ranking_quality-90fbb3f1a2d7cf42: crates/bench/src/bin/table_x1_ranking_quality.rs

crates/bench/src/bin/table_x1_ranking_quality.rs:
