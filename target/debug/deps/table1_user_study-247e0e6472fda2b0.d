/root/repo/target/debug/deps/table1_user_study-247e0e6472fda2b0.d: crates/bench/src/bin/table1_user_study.rs

/root/repo/target/debug/deps/table1_user_study-247e0e6472fda2b0: crates/bench/src/bin/table1_user_study.rs

crates/bench/src/bin/table1_user_study.rs:
