/root/repo/target/debug/deps/proptest-21acfd3d7b603a60.d: crates/shim-proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-21acfd3d7b603a60.rmeta: crates/shim-proptest/src/lib.rs Cargo.toml

crates/shim-proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
