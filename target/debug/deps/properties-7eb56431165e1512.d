/root/repo/target/debug/deps/properties-7eb56431165e1512.d: crates/xmlstore/tests/properties.rs

/root/repo/target/debug/deps/properties-7eb56431165e1512: crates/xmlstore/tests/properties.rs

crates/xmlstore/tests/properties.rs:
