/root/repo/target/debug/deps/mass_bench-29d5ea6f3f6aa59a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmass_bench-29d5ea6f3f6aa59a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
