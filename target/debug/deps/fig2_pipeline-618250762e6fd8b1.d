/root/repo/target/debug/deps/fig2_pipeline-618250762e6fd8b1.d: crates/bench/src/bin/fig2_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_pipeline-618250762e6fd8b1.rmeta: crates/bench/src/bin/fig2_pipeline.rs Cargo.toml

crates/bench/src/bin/fig2_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
