/root/repo/target/debug/deps/fig2_pipeline-113a961265321f7f.d: crates/bench/src/bin/fig2_pipeline.rs

/root/repo/target/debug/deps/fig2_pipeline-113a961265321f7f: crates/bench/src/bin/fig2_pipeline.rs

crates/bench/src/bin/fig2_pipeline.rs:
