/root/repo/target/debug/deps/paper_scale-2c4ed67063cd16dc.d: tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-2c4ed67063cd16dc: tests/paper_scale.rs

tests/paper_scale.rs:
