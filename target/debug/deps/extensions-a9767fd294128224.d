/root/repo/target/debug/deps/extensions-a9767fd294128224.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-a9767fd294128224: tests/extensions.rs

tests/extensions.rs:
