/root/repo/target/debug/deps/fig2_pipeline-0f080c068b4bafe9.d: crates/bench/src/bin/fig2_pipeline.rs

/root/repo/target/debug/deps/fig2_pipeline-0f080c068b4bafe9: crates/bench/src/bin/fig2_pipeline.rs

crates/bench/src/bin/fig2_pipeline.rs:
