/root/repo/target/debug/deps/mass-9a737d6ea1c16871.d: src/lib.rs

/root/repo/target/debug/deps/mass-9a737d6ea1c16871: src/lib.rs

src/lib.rs:
