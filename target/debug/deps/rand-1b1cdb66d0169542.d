/root/repo/target/debug/deps/rand-1b1cdb66d0169542.d: crates/shim-rand/src/lib.rs

/root/repo/target/debug/deps/librand-1b1cdb66d0169542.rlib: crates/shim-rand/src/lib.rs

/root/repo/target/debug/deps/librand-1b1cdb66d0169542.rmeta: crates/shim-rand/src/lib.rs

crates/shim-rand/src/lib.rs:
