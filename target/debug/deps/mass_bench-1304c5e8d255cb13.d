/root/repo/target/debug/deps/mass_bench-1304c5e8d255cb13.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mass_bench-1304c5e8d255cb13: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
