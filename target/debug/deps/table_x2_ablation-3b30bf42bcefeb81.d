/root/repo/target/debug/deps/table_x2_ablation-3b30bf42bcefeb81.d: crates/bench/src/bin/table_x2_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x2_ablation-3b30bf42bcefeb81.rmeta: crates/bench/src/bin/table_x2_ablation.rs Cargo.toml

crates/bench/src/bin/table_x2_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
