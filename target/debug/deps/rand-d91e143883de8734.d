/root/repo/target/debug/deps/rand-d91e143883de8734.d: crates/shim-rand/src/lib.rs

/root/repo/target/debug/deps/rand-d91e143883de8734: crates/shim-rand/src/lib.rs

crates/shim-rand/src/lib.rs:
