/root/repo/target/debug/deps/fig_x3_convergence-0621adeb4b6942f0.d: crates/bench/src/bin/fig_x3_convergence.rs

/root/repo/target/debug/deps/fig_x3_convergence-0621adeb4b6942f0: crates/bench/src/bin/fig_x3_convergence.rs

crates/bench/src/bin/fig_x3_convergence.rs:
