/root/repo/target/debug/deps/table_x7_classifier-eae3e60f7e6072f9.d: crates/bench/src/bin/table_x7_classifier.rs

/root/repo/target/debug/deps/table_x7_classifier-eae3e60f7e6072f9: crates/bench/src/bin/table_x7_classifier.rs

crates/bench/src/bin/table_x7_classifier.rs:
