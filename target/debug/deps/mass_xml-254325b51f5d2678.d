/root/repo/target/debug/deps/mass_xml-254325b51f5d2678.d: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs

/root/repo/target/debug/deps/libmass_xml-254325b51f5d2678.rlib: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs

/root/repo/target/debug/deps/libmass_xml-254325b51f5d2678.rmeta: crates/xmlstore/src/lib.rs crates/xmlstore/src/dataset_io.rs crates/xmlstore/src/error.rs crates/xmlstore/src/escape.rs crates/xmlstore/src/parser.rs crates/xmlstore/src/tree.rs crates/xmlstore/src/writer.rs

crates/xmlstore/src/lib.rs:
crates/xmlstore/src/dataset_io.rs:
crates/xmlstore/src/error.rs:
crates/xmlstore/src/escape.rs:
crates/xmlstore/src/parser.rs:
crates/xmlstore/src/tree.rs:
crates/xmlstore/src/writer.rs:
