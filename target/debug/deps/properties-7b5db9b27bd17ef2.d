/root/repo/target/debug/deps/properties-7b5db9b27bd17ef2.d: crates/crawler/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7b5db9b27bd17ef2.rmeta: crates/crawler/tests/properties.rs Cargo.toml

crates/crawler/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
