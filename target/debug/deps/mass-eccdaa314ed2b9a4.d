/root/repo/target/debug/deps/mass-eccdaa314ed2b9a4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmass-eccdaa314ed2b9a4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
