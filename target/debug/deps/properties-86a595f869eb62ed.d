/root/repo/target/debug/deps/properties-86a595f869eb62ed.d: crates/types/tests/properties.rs

/root/repo/target/debug/deps/properties-86a595f869eb62ed: crates/types/tests/properties.rs

crates/types/tests/properties.rs:
