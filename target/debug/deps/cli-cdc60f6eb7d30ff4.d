/root/repo/target/debug/deps/cli-cdc60f6eb7d30ff4.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-cdc60f6eb7d30ff4: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mass=/root/repo/target/debug/mass
