/root/repo/target/debug/deps/paper_scale-538cf07c67e8f57d.d: tests/paper_scale.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_scale-538cf07c67e8f57d.rmeta: tests/paper_scale.rs Cargo.toml

tests/paper_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
