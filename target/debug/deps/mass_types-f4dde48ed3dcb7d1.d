/root/repo/target/debug/deps/mass_types-f4dde48ed3dcb7d1.d: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs

/root/repo/target/debug/deps/mass_types-f4dde48ed3dcb7d1: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs

crates/types/src/lib.rs:
crates/types/src/dataset.rs:
crates/types/src/domains.rs:
crates/types/src/entity.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/index.rs:
