/root/repo/target/debug/deps/properties-7379a1ca90ef4074.d: crates/viz/tests/properties.rs

/root/repo/target/debug/deps/properties-7379a1ca90ef4074: crates/viz/tests/properties.rs

crates/viz/tests/properties.rs:
