/root/repo/target/debug/deps/fig3_advertisement-6ddecc5c1e137c20.d: crates/bench/src/bin/fig3_advertisement.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_advertisement-6ddecc5c1e137c20.rmeta: crates/bench/src/bin/fig3_advertisement.rs Cargo.toml

crates/bench/src/bin/fig3_advertisement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
