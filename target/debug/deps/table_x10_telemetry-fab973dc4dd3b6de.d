/root/repo/target/debug/deps/table_x10_telemetry-fab973dc4dd3b6de.d: crates/bench/src/bin/table_x10_telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x10_telemetry-fab973dc4dd3b6de.rmeta: crates/bench/src/bin/table_x10_telemetry.rs Cargo.toml

crates/bench/src/bin/table_x10_telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
