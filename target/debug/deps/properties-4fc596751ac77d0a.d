/root/repo/target/debug/deps/properties-4fc596751ac77d0a.d: crates/text/tests/properties.rs

/root/repo/target/debug/deps/properties-4fc596751ac77d0a: crates/text/tests/properties.rs

crates/text/tests/properties.rs:
