/root/repo/target/debug/deps/table_x7_classifier-500b33419d7263d0.d: crates/bench/src/bin/table_x7_classifier.rs

/root/repo/target/debug/deps/table_x7_classifier-500b33419d7263d0: crates/bench/src/bin/table_x7_classifier.rs

crates/bench/src/bin/table_x7_classifier.rs:
