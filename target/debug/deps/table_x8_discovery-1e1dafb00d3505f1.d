/root/repo/target/debug/deps/table_x8_discovery-1e1dafb00d3505f1.d: crates/bench/src/bin/table_x8_discovery.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x8_discovery-1e1dafb00d3505f1.rmeta: crates/bench/src/bin/table_x8_discovery.rs Cargo.toml

crates/bench/src/bin/table_x8_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
