/root/repo/target/debug/deps/fig3_advertisement-baac13afea0931ca.d: crates/bench/src/bin/fig3_advertisement.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_advertisement-baac13afea0931ca.rmeta: crates/bench/src/bin/fig3_advertisement.rs Cargo.toml

crates/bench/src/bin/fig3_advertisement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
