/root/repo/target/debug/deps/mass-417d8ed72ddddb7a.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/obs_session.rs

/root/repo/target/debug/deps/mass-417d8ed72ddddb7a: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/obs_session.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/obs_session.rs:
