/root/repo/target/debug/deps/rand-bbc8053625a26ef5.d: crates/shim-rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-bbc8053625a26ef5.rmeta: crates/shim-rand/src/lib.rs Cargo.toml

crates/shim-rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
