/root/repo/target/debug/deps/table_x5_sensitivity-557f5a79fa21c4eb.d: crates/bench/src/bin/table_x5_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x5_sensitivity-557f5a79fa21c4eb.rmeta: crates/bench/src/bin/table_x5_sensitivity.rs Cargo.toml

crates/bench/src/bin/table_x5_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
