/root/repo/target/debug/deps/table_x1_ranking_quality-8f0c9a1d08798244.d: crates/bench/src/bin/table_x1_ranking_quality.rs

/root/repo/target/debug/deps/table_x1_ranking_quality-8f0c9a1d08798244: crates/bench/src/bin/table_x1_ranking_quality.rs

crates/bench/src/bin/table_x1_ranking_quality.rs:
