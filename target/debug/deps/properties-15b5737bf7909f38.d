/root/repo/target/debug/deps/properties-15b5737bf7909f38.d: crates/synth/tests/properties.rs

/root/repo/target/debug/deps/properties-15b5737bf7909f38: crates/synth/tests/properties.rs

crates/synth/tests/properties.rs:
