/root/repo/target/debug/deps/fig1_sample_graph-2acb94a0c02f3d46.d: crates/bench/src/bin/fig1_sample_graph.rs

/root/repo/target/debug/deps/fig1_sample_graph-2acb94a0c02f3d46: crates/bench/src/bin/fig1_sample_graph.rs

crates/bench/src/bin/fig1_sample_graph.rs:
