/root/repo/target/debug/deps/table_x10_telemetry-e3fd87649dcdbc95.d: crates/bench/src/bin/table_x10_telemetry.rs

/root/repo/target/debug/deps/table_x10_telemetry-e3fd87649dcdbc95: crates/bench/src/bin/table_x10_telemetry.rs

crates/bench/src/bin/table_x10_telemetry.rs:
