/root/repo/target/debug/deps/fig_x6_crawl-59e652b07f63a3b2.d: crates/bench/src/bin/fig_x6_crawl.rs Cargo.toml

/root/repo/target/debug/deps/libfig_x6_crawl-59e652b07f63a3b2.rmeta: crates/bench/src/bin/fig_x6_crawl.rs Cargo.toml

crates/bench/src/bin/fig_x6_crawl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
