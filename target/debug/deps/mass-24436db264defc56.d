/root/repo/target/debug/deps/mass-24436db264defc56.d: src/lib.rs

/root/repo/target/debug/deps/libmass-24436db264defc56.rlib: src/lib.rs

/root/repo/target/debug/deps/libmass-24436db264defc56.rmeta: src/lib.rs

src/lib.rs:
