/root/repo/target/debug/deps/mass-fe5b41117f2618be.d: src/lib.rs

/root/repo/target/debug/deps/libmass-fe5b41117f2618be.rlib: src/lib.rs

/root/repo/target/debug/deps/libmass-fe5b41117f2618be.rmeta: src/lib.rs

src/lib.rs:
