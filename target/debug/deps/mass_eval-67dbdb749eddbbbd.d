/root/repo/target/debug/deps/mass_eval-67dbdb749eddbbbd.d: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs Cargo.toml

/root/repo/target/debug/deps/libmass_eval-67dbdb749eddbbbd.rmeta: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
crates/eval/src/table.rs:
crates/eval/src/user_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
