/root/repo/target/debug/deps/mass_text-c62189910658018d.d: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/debug/deps/libmass_text-c62189910658018d.rlib: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/debug/deps/libmass_text-c62189910658018d.rmeta: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

crates/text/src/lib.rs:
crates/text/src/discovery.rs:
crates/text/src/interest.rs:
crates/text/src/nb.rs:
crates/text/src/novelty.rs:
crates/text/src/search.rs:
crates/text/src/sentiment.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
