/root/repo/target/debug/deps/properties-3bad124612c306bf.d: crates/synth/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3bad124612c306bf.rmeta: crates/synth/tests/properties.rs Cargo.toml

crates/synth/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
