/root/repo/target/debug/deps/criterion-3b5bf92246bf8ca7.d: crates/shim-criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-3b5bf92246bf8ca7.rmeta: crates/shim-criterion/src/lib.rs Cargo.toml

crates/shim-criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
