/root/repo/target/debug/deps/fig3_advertisement-7e7ee05bde6a01cc.d: crates/bench/src/bin/fig3_advertisement.rs

/root/repo/target/debug/deps/fig3_advertisement-7e7ee05bde6a01cc: crates/bench/src/bin/fig3_advertisement.rs

crates/bench/src/bin/fig3_advertisement.rs:
