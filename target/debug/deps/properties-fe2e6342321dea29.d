/root/repo/target/debug/deps/properties-fe2e6342321dea29.d: crates/xmlstore/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fe2e6342321dea29.rmeta: crates/xmlstore/tests/properties.rs Cargo.toml

crates/xmlstore/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
