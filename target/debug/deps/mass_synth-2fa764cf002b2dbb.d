/root/repo/target/debug/deps/mass_synth-2fa764cf002b2dbb.d: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libmass_synth-2fa764cf002b2dbb.rmeta: crates/synth/src/lib.rs crates/synth/src/ads.rs crates/synth/src/config.rs crates/synth/src/generator.rs crates/synth/src/oracle.rs crates/synth/src/sampling.rs crates/synth/src/truth.rs crates/synth/src/vocab.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/ads.rs:
crates/synth/src/config.rs:
crates/synth/src/generator.rs:
crates/synth/src/oracle.rs:
crates/synth/src/sampling.rs:
crates/synth/src/truth.rs:
crates/synth/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
