/root/repo/target/debug/deps/mass_core-dc83335c5052b132.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs

/root/repo/target/debug/deps/mass_core-dc83335c5052b132: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/baselines.rs:
crates/core/src/domain.rs:
crates/core/src/expert_search.rs:
crates/core/src/gl.rs:
crates/core/src/incremental.rs:
crates/core/src/params.rs:
crates/core/src/quality.rs:
crates/core/src/recommend.rs:
crates/core/src/solver.rs:
crates/core/src/topk.rs:
