/root/repo/target/debug/deps/mass_core-56fc1d9c50dad2ae.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs Cargo.toml

/root/repo/target/debug/deps/libmass_core-56fc1d9c50dad2ae.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/baselines.rs:
crates/core/src/domain.rs:
crates/core/src/expert_search.rs:
crates/core/src/gl.rs:
crates/core/src/incremental.rs:
crates/core/src/params.rs:
crates/core/src/quality.rs:
crates/core/src/recommend.rs:
crates/core/src/solver.rs:
crates/core/src/topk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
