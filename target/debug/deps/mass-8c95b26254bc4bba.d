/root/repo/target/debug/deps/mass-8c95b26254bc4bba.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmass-8c95b26254bc4bba.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
