/root/repo/target/debug/deps/mass_text-13dd6a992a19b9e0.d: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs Cargo.toml

/root/repo/target/debug/deps/libmass_text-13dd6a992a19b9e0.rmeta: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs Cargo.toml

crates/text/src/lib.rs:
crates/text/src/discovery.rs:
crates/text/src/interest.rs:
crates/text/src/nb.rs:
crates/text/src/novelty.rs:
crates/text/src/search.rs:
crates/text/src/sentiment.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
