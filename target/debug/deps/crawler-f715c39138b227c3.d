/root/repo/target/debug/deps/crawler-f715c39138b227c3.d: crates/bench/benches/crawler.rs

/root/repo/target/debug/deps/crawler-f715c39138b227c3: crates/bench/benches/crawler.rs

crates/bench/benches/crawler.rs:
