/root/repo/target/debug/deps/properties-858f06f1de98dad0.d: crates/graph/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-858f06f1de98dad0.rmeta: crates/graph/tests/properties.rs Cargo.toml

crates/graph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
