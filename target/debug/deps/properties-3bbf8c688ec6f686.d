/root/repo/target/debug/deps/properties-3bbf8c688ec6f686.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-3bbf8c688ec6f686: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
