/root/repo/target/debug/deps/table_x1_ranking_quality-1791ce6ebb4214ce.d: crates/bench/src/bin/table_x1_ranking_quality.rs

/root/repo/target/debug/deps/table_x1_ranking_quality-1791ce6ebb4214ce: crates/bench/src/bin/table_x1_ranking_quality.rs

crates/bench/src/bin/table_x1_ranking_quality.rs:
