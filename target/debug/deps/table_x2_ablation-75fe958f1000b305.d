/root/repo/target/debug/deps/table_x2_ablation-75fe958f1000b305.d: crates/bench/src/bin/table_x2_ablation.rs

/root/repo/target/debug/deps/table_x2_ablation-75fe958f1000b305: crates/bench/src/bin/table_x2_ablation.rs

crates/bench/src/bin/table_x2_ablation.rs:
