/root/repo/target/debug/deps/fig_x6_crawl-64dbd1d5bb1c69a1.d: crates/bench/src/bin/fig_x6_crawl.rs

/root/repo/target/debug/deps/fig_x6_crawl-64dbd1d5bb1c69a1: crates/bench/src/bin/fig_x6_crawl.rs

crates/bench/src/bin/fig_x6_crawl.rs:
