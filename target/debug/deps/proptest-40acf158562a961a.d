/root/repo/target/debug/deps/proptest-40acf158562a961a.d: crates/shim-proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-40acf158562a961a.rlib: crates/shim-proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-40acf158562a961a.rmeta: crates/shim-proptest/src/lib.rs

crates/shim-proptest/src/lib.rs:
