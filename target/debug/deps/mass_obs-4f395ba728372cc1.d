/root/repo/target/debug/deps/mass_obs-4f395ba728372cc1.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/debug/deps/libmass_obs-4f395ba728372cc1.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

/root/repo/target/debug/deps/libmass_obs-4f395ba728372cc1.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sink.rs:
