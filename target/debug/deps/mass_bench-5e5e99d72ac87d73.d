/root/repo/target/debug/deps/mass_bench-5e5e99d72ac87d73.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mass_bench-5e5e99d72ac87d73: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
