/root/repo/target/debug/deps/properties-a80c28b5bb65218c.d: crates/viz/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a80c28b5bb65218c.rmeta: crates/viz/tests/properties.rs Cargo.toml

crates/viz/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
