/root/repo/target/debug/deps/mass_types-1d4a135c45d5e1df.d: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs

/root/repo/target/debug/deps/libmass_types-1d4a135c45d5e1df.rlib: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs

/root/repo/target/debug/deps/libmass_types-1d4a135c45d5e1df.rmeta: crates/types/src/lib.rs crates/types/src/dataset.rs crates/types/src/domains.rs crates/types/src/entity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/index.rs

crates/types/src/lib.rs:
crates/types/src/dataset.rs:
crates/types/src/domains.rs:
crates/types/src/entity.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/index.rs:
