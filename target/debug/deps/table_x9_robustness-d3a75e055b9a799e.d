/root/repo/target/debug/deps/table_x9_robustness-d3a75e055b9a799e.d: crates/bench/src/bin/table_x9_robustness.rs

/root/repo/target/debug/deps/table_x9_robustness-d3a75e055b9a799e: crates/bench/src/bin/table_x9_robustness.rs

crates/bench/src/bin/table_x9_robustness.rs:
