/root/repo/target/debug/deps/properties-66f9a81d7cbf30eb.d: crates/eval/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-66f9a81d7cbf30eb.rmeta: crates/eval/tests/properties.rs Cargo.toml

crates/eval/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
