/root/repo/target/debug/deps/paper_scale-050915e66976bc6c.d: tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-050915e66976bc6c: tests/paper_scale.rs

tests/paper_scale.rs:
