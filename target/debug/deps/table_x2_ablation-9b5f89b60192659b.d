/root/repo/target/debug/deps/table_x2_ablation-9b5f89b60192659b.d: crates/bench/src/bin/table_x2_ablation.rs

/root/repo/target/debug/deps/table_x2_ablation-9b5f89b60192659b: crates/bench/src/bin/table_x2_ablation.rs

crates/bench/src/bin/table_x2_ablation.rs:
