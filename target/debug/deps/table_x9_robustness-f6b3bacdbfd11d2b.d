/root/repo/target/debug/deps/table_x9_robustness-f6b3bacdbfd11d2b.d: crates/bench/src/bin/table_x9_robustness.rs

/root/repo/target/debug/deps/table_x9_robustness-f6b3bacdbfd11d2b: crates/bench/src/bin/table_x9_robustness.rs

crates/bench/src/bin/table_x9_robustness.rs:
