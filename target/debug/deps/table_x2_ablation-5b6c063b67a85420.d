/root/repo/target/debug/deps/table_x2_ablation-5b6c063b67a85420.d: crates/bench/src/bin/table_x2_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x2_ablation-5b6c063b67a85420.rmeta: crates/bench/src/bin/table_x2_ablation.rs Cargo.toml

crates/bench/src/bin/table_x2_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
