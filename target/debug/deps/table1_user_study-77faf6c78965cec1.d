/root/repo/target/debug/deps/table1_user_study-77faf6c78965cec1.d: crates/bench/src/bin/table1_user_study.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_user_study-77faf6c78965cec1.rmeta: crates/bench/src/bin/table1_user_study.rs Cargo.toml

crates/bench/src/bin/table1_user_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
