/root/repo/target/debug/deps/fig4_network-8d8ae968dc007de7.d: crates/bench/src/bin/fig4_network.rs

/root/repo/target/debug/deps/fig4_network-8d8ae968dc007de7: crates/bench/src/bin/fig4_network.rs

crates/bench/src/bin/fig4_network.rs:
