/root/repo/target/debug/deps/properties-c3222e14d78b195f.d: crates/types/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c3222e14d78b195f.rmeta: crates/types/tests/properties.rs Cargo.toml

crates/types/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
