/root/repo/target/debug/deps/extensions-5d3f8064b8480b58.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-5d3f8064b8480b58.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
