/root/repo/target/debug/deps/fig4_network-f6d9b928d60529b8.d: crates/bench/src/bin/fig4_network.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_network-f6d9b928d60529b8.rmeta: crates/bench/src/bin/fig4_network.rs Cargo.toml

crates/bench/src/bin/fig4_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
