/root/repo/target/debug/deps/cli-3973be3193779b5a.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-3973be3193779b5a.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_mass=placeholder:mass
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
