/root/repo/target/debug/deps/extensions-4153ce6b1bfb0720.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-4153ce6b1bfb0720: tests/extensions.rs

tests/extensions.rs:
