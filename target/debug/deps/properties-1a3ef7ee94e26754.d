/root/repo/target/debug/deps/properties-1a3ef7ee94e26754.d: crates/crawler/tests/properties.rs

/root/repo/target/debug/deps/properties-1a3ef7ee94e26754: crates/crawler/tests/properties.rs

crates/crawler/tests/properties.rs:
