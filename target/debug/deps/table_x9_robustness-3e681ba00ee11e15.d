/root/repo/target/debug/deps/table_x9_robustness-3e681ba00ee11e15.d: crates/bench/src/bin/table_x9_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x9_robustness-3e681ba00ee11e15.rmeta: crates/bench/src/bin/table_x9_robustness.rs Cargo.toml

crates/bench/src/bin/table_x9_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
