/root/repo/target/debug/deps/chaos-fb33a9bae2045c79.d: crates/crawler/tests/chaos.rs

/root/repo/target/debug/deps/chaos-fb33a9bae2045c79: crates/crawler/tests/chaos.rs

crates/crawler/tests/chaos.rs:
