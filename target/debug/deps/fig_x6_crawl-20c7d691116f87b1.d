/root/repo/target/debug/deps/fig_x6_crawl-20c7d691116f87b1.d: crates/bench/src/bin/fig_x6_crawl.rs

/root/repo/target/debug/deps/fig_x6_crawl-20c7d691116f87b1: crates/bench/src/bin/fig_x6_crawl.rs

crates/bench/src/bin/fig_x6_crawl.rs:
