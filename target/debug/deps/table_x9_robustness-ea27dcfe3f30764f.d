/root/repo/target/debug/deps/table_x9_robustness-ea27dcfe3f30764f.d: crates/bench/src/bin/table_x9_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libtable_x9_robustness-ea27dcfe3f30764f.rmeta: crates/bench/src/bin/table_x9_robustness.rs Cargo.toml

crates/bench/src/bin/table_x9_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
