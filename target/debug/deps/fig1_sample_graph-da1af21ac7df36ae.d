/root/repo/target/debug/deps/fig1_sample_graph-da1af21ac7df36ae.d: crates/bench/src/bin/fig1_sample_graph.rs

/root/repo/target/debug/deps/fig1_sample_graph-da1af21ac7df36ae: crates/bench/src/bin/fig1_sample_graph.rs

crates/bench/src/bin/fig1_sample_graph.rs:
