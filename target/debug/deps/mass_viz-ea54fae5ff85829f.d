/root/repo/target/debug/deps/mass_viz-ea54fae5ff85829f.d: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/mass_viz-ea54fae5ff85829f: crates/viz/src/lib.rs crates/viz/src/export.rs crates/viz/src/filter.rs crates/viz/src/layout.rs crates/viz/src/network.rs crates/viz/src/stats.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/export.rs:
crates/viz/src/filter.rs:
crates/viz/src/layout.rs:
crates/viz/src/network.rs:
crates/viz/src/stats.rs:
crates/viz/src/svg.rs:
