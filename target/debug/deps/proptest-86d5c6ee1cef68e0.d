/root/repo/target/debug/deps/proptest-86d5c6ee1cef68e0.d: crates/shim-proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-86d5c6ee1cef68e0.rmeta: crates/shim-proptest/src/lib.rs Cargo.toml

crates/shim-proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
