/root/repo/target/debug/deps/properties-2b3118c4190f3a11.d: crates/synth/tests/properties.rs

/root/repo/target/debug/deps/properties-2b3118c4190f3a11: crates/synth/tests/properties.rs

crates/synth/tests/properties.rs:
