/root/repo/target/debug/deps/criterion-ca1339cabcb91e8f.d: crates/shim-criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-ca1339cabcb91e8f: crates/shim-criterion/src/lib.rs

crates/shim-criterion/src/lib.rs:
