/root/repo/target/debug/deps/mass_core-a27a34f0655a47b2.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs

/root/repo/target/debug/deps/libmass_core-a27a34f0655a47b2.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs

/root/repo/target/debug/deps/libmass_core-a27a34f0655a47b2.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/baselines.rs crates/core/src/domain.rs crates/core/src/expert_search.rs crates/core/src/gl.rs crates/core/src/incremental.rs crates/core/src/params.rs crates/core/src/quality.rs crates/core/src/recommend.rs crates/core/src/solver.rs crates/core/src/topk.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/baselines.rs:
crates/core/src/domain.rs:
crates/core/src/expert_search.rs:
crates/core/src/gl.rs:
crates/core/src/incremental.rs:
crates/core/src/params.rs:
crates/core/src/quality.rs:
crates/core/src/recommend.rs:
crates/core/src/solver.rs:
crates/core/src/topk.rs:
