/root/repo/target/debug/deps/properties-05278e4af07423b2.d: crates/synth/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-05278e4af07423b2.rmeta: crates/synth/tests/properties.rs Cargo.toml

crates/synth/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
