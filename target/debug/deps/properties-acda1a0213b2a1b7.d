/root/repo/target/debug/deps/properties-acda1a0213b2a1b7.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-acda1a0213b2a1b7.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
