/root/repo/target/debug/deps/table_x5_sensitivity-4f6cb431fc2c5f4f.d: crates/bench/src/bin/table_x5_sensitivity.rs

/root/repo/target/debug/deps/table_x5_sensitivity-4f6cb431fc2c5f4f: crates/bench/src/bin/table_x5_sensitivity.rs

crates/bench/src/bin/table_x5_sensitivity.rs:
