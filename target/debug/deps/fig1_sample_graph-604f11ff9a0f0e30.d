/root/repo/target/debug/deps/fig1_sample_graph-604f11ff9a0f0e30.d: crates/bench/src/bin/fig1_sample_graph.rs

/root/repo/target/debug/deps/fig1_sample_graph-604f11ff9a0f0e30: crates/bench/src/bin/fig1_sample_graph.rs

crates/bench/src/bin/fig1_sample_graph.rs:
