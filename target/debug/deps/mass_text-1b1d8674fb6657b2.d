/root/repo/target/debug/deps/mass_text-1b1d8674fb6657b2.d: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/debug/deps/libmass_text-1b1d8674fb6657b2.rlib: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

/root/repo/target/debug/deps/libmass_text-1b1d8674fb6657b2.rmeta: crates/text/src/lib.rs crates/text/src/discovery.rs crates/text/src/interest.rs crates/text/src/nb.rs crates/text/src/novelty.rs crates/text/src/search.rs crates/text/src/sentiment.rs crates/text/src/stopwords.rs crates/text/src/tokenize.rs

crates/text/src/lib.rs:
crates/text/src/discovery.rs:
crates/text/src/interest.rs:
crates/text/src/nb.rs:
crates/text/src/novelty.rs:
crates/text/src/search.rs:
crates/text/src/sentiment.rs:
crates/text/src/stopwords.rs:
crates/text/src/tokenize.rs:
