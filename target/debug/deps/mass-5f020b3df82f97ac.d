/root/repo/target/debug/deps/mass-5f020b3df82f97ac.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/mass-5f020b3df82f97ac: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
