/root/repo/target/debug/deps/mass_bench-ce9bfaa6f4688eab.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmass_bench-ce9bfaa6f4688eab.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmass_bench-ce9bfaa6f4688eab.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
