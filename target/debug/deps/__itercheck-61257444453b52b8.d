/root/repo/target/debug/deps/__itercheck-61257444453b52b8.d: crates/bench/src/bin/__itercheck.rs

/root/repo/target/debug/deps/__itercheck-61257444453b52b8: crates/bench/src/bin/__itercheck.rs

crates/bench/src/bin/__itercheck.rs:
