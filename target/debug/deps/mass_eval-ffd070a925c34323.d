/root/repo/target/debug/deps/mass_eval-ffd070a925c34323.d: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

/root/repo/target/debug/deps/mass_eval-ffd070a925c34323: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

crates/eval/src/lib.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
crates/eval/src/table.rs:
crates/eval/src/user_study.rs:
