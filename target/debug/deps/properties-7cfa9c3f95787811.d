/root/repo/target/debug/deps/properties-7cfa9c3f95787811.d: crates/obs/tests/properties.rs

/root/repo/target/debug/deps/properties-7cfa9c3f95787811: crates/obs/tests/properties.rs

crates/obs/tests/properties.rs:
