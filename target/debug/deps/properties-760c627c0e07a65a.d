/root/repo/target/debug/deps/properties-760c627c0e07a65a.d: crates/eval/tests/properties.rs

/root/repo/target/debug/deps/properties-760c627c0e07a65a: crates/eval/tests/properties.rs

crates/eval/tests/properties.rs:
