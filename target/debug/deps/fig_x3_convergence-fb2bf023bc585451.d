/root/repo/target/debug/deps/fig_x3_convergence-fb2bf023bc585451.d: crates/bench/src/bin/fig_x3_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libfig_x3_convergence-fb2bf023bc585451.rmeta: crates/bench/src/bin/fig_x3_convergence.rs Cargo.toml

crates/bench/src/bin/fig_x3_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
