/root/repo/target/debug/deps/fig3_advertisement-4fa77db77866596c.d: crates/bench/src/bin/fig3_advertisement.rs

/root/repo/target/debug/deps/fig3_advertisement-4fa77db77866596c: crates/bench/src/bin/fig3_advertisement.rs

crates/bench/src/bin/fig3_advertisement.rs:
