/root/repo/target/debug/deps/properties-9a6d9912bf93c39e.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-9a6d9912bf93c39e: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
