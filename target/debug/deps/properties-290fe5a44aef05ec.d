/root/repo/target/debug/deps/properties-290fe5a44aef05ec.d: crates/eval/tests/properties.rs

/root/repo/target/debug/deps/properties-290fe5a44aef05ec: crates/eval/tests/properties.rs

crates/eval/tests/properties.rs:
