/root/repo/target/debug/deps/table1_user_study-fa2cab3b1546d8ba.d: crates/bench/src/bin/table1_user_study.rs

/root/repo/target/debug/deps/table1_user_study-fa2cab3b1546d8ba: crates/bench/src/bin/table1_user_study.rs

crates/bench/src/bin/table1_user_study.rs:
