/root/repo/target/debug/deps/mass-27093c8aa335b9b4.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/obs_session.rs

/root/repo/target/debug/deps/mass-27093c8aa335b9b4: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/obs_session.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/obs_session.rs:
