/root/repo/target/debug/deps/fig4_network-53d20cac13a056b0.d: crates/bench/src/bin/fig4_network.rs

/root/repo/target/debug/deps/fig4_network-53d20cac13a056b0: crates/bench/src/bin/fig4_network.rs

crates/bench/src/bin/fig4_network.rs:
