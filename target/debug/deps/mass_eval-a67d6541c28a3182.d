/root/repo/target/debug/deps/mass_eval-a67d6541c28a3182.d: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

/root/repo/target/debug/deps/libmass_eval-a67d6541c28a3182.rlib: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

/root/repo/target/debug/deps/libmass_eval-a67d6541c28a3182.rmeta: crates/eval/src/lib.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs crates/eval/src/report.rs crates/eval/src/significance.rs crates/eval/src/table.rs crates/eval/src/user_study.rs

crates/eval/src/lib.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
crates/eval/src/table.rs:
crates/eval/src/user_study.rs:
