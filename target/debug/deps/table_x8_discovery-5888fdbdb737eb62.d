/root/repo/target/debug/deps/table_x8_discovery-5888fdbdb737eb62.d: crates/bench/src/bin/table_x8_discovery.rs

/root/repo/target/debug/deps/table_x8_discovery-5888fdbdb737eb62: crates/bench/src/bin/table_x8_discovery.rs

crates/bench/src/bin/table_x8_discovery.rs:
