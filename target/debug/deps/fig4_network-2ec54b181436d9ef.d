/root/repo/target/debug/deps/fig4_network-2ec54b181436d9ef.d: crates/bench/src/bin/fig4_network.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_network-2ec54b181436d9ef.rmeta: crates/bench/src/bin/fig4_network.rs Cargo.toml

crates/bench/src/bin/fig4_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
