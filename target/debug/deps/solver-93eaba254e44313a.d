/root/repo/target/debug/deps/solver-93eaba254e44313a.d: crates/bench/benches/solver.rs

/root/repo/target/debug/deps/solver-93eaba254e44313a: crates/bench/benches/solver.rs

crates/bench/benches/solver.rs:
