/root/repo/target/debug/deps/fig_x6_crawl-71aced4e8f3efd5a.d: crates/bench/src/bin/fig_x6_crawl.rs

/root/repo/target/debug/deps/fig_x6_crawl-71aced4e8f3efd5a: crates/bench/src/bin/fig_x6_crawl.rs

crates/bench/src/bin/fig_x6_crawl.rs:
