/root/repo/target/debug/deps/properties-5af558dbccd5b1be.d: crates/text/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5af558dbccd5b1be.rmeta: crates/text/tests/properties.rs Cargo.toml

crates/text/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
