/root/repo/target/debug/deps/table_x5_sensitivity-ed99de5a9ce458ee.d: crates/bench/src/bin/table_x5_sensitivity.rs

/root/repo/target/debug/deps/table_x5_sensitivity-ed99de5a9ce458ee: crates/bench/src/bin/table_x5_sensitivity.rs

crates/bench/src/bin/table_x5_sensitivity.rs:
