/root/repo/target/debug/deps/mass-64f8d38a2ccbf853.d: src/lib.rs

/root/repo/target/debug/deps/mass-64f8d38a2ccbf853: src/lib.rs

src/lib.rs:
