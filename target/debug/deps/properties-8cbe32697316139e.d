/root/repo/target/debug/deps/properties-8cbe32697316139e.d: crates/obs/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8cbe32697316139e.rmeta: crates/obs/tests/properties.rs Cargo.toml

crates/obs/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
