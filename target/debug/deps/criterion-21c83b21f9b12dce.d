/root/repo/target/debug/deps/criterion-21c83b21f9b12dce.d: crates/shim-criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-21c83b21f9b12dce.rmeta: crates/shim-criterion/src/lib.rs Cargo.toml

crates/shim-criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
