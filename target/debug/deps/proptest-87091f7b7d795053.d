/root/repo/target/debug/deps/proptest-87091f7b7d795053.d: crates/shim-proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-87091f7b7d795053: crates/shim-proptest/src/lib.rs

crates/shim-proptest/src/lib.rs:
