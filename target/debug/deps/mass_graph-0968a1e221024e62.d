/root/repo/target/debug/deps/mass_graph-0968a1e221024e62.d: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs

/root/repo/target/debug/deps/libmass_graph-0968a1e221024e62.rlib: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs

/root/repo/target/debug/deps/libmass_graph-0968a1e221024e62.rmeta: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs

crates/graph/src/lib.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/hits.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/traversal.rs:
