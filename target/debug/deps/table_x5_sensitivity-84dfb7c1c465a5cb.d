/root/repo/target/debug/deps/table_x5_sensitivity-84dfb7c1c465a5cb.d: crates/bench/src/bin/table_x5_sensitivity.rs

/root/repo/target/debug/deps/table_x5_sensitivity-84dfb7c1c465a5cb: crates/bench/src/bin/table_x5_sensitivity.rs

crates/bench/src/bin/table_x5_sensitivity.rs:
