/root/repo/target/debug/deps/pipeline-e056c7fe9b1b019a.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/pipeline-e056c7fe9b1b019a: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
