/root/repo/target/debug/deps/criterion-5ef7ce5b0b0742bc.d: crates/shim-criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5ef7ce5b0b0742bc.rlib: crates/shim-criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5ef7ce5b0b0742bc.rmeta: crates/shim-criterion/src/lib.rs

crates/shim-criterion/src/lib.rs:
