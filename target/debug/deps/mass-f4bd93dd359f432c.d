/root/repo/target/debug/deps/mass-f4bd93dd359f432c.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/mass-f4bd93dd359f432c: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
