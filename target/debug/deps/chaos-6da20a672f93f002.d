/root/repo/target/debug/deps/chaos-6da20a672f93f002.d: crates/crawler/tests/chaos.rs

/root/repo/target/debug/deps/chaos-6da20a672f93f002: crates/crawler/tests/chaos.rs

crates/crawler/tests/chaos.rs:
