/root/repo/target/debug/deps/end_to_end-783f515f7feb0b90.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-783f515f7feb0b90: tests/end_to_end.rs

tests/end_to_end.rs:
