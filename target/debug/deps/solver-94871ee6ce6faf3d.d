/root/repo/target/debug/deps/solver-94871ee6ce6faf3d.d: crates/bench/benches/solver.rs Cargo.toml

/root/repo/target/debug/deps/libsolver-94871ee6ce6faf3d.rmeta: crates/bench/benches/solver.rs Cargo.toml

crates/bench/benches/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
