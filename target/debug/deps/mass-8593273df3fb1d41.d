/root/repo/target/debug/deps/mass-8593273df3fb1d41.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/obs_session.rs Cargo.toml

/root/repo/target/debug/deps/libmass-8593273df3fb1d41.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/obs_session.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/obs_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
