/root/repo/target/debug/deps/mass_graph-6494a632661f5d93.d: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs Cargo.toml

/root/repo/target/debug/deps/libmass_graph-6494a632661f5d93.rmeta: crates/graph/src/lib.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/hits.rs crates/graph/src/pagerank.rs crates/graph/src/traversal.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/hits.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/traversal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
