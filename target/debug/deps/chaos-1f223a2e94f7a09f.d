/root/repo/target/debug/deps/chaos-1f223a2e94f7a09f.d: crates/crawler/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-1f223a2e94f7a09f.rmeta: crates/crawler/tests/chaos.rs Cargo.toml

crates/crawler/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
