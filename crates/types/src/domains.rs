//! Interest-domain catalogues.
//!
//! The paper predefines ten interest domains for its MSN-Spaces corpus:
//! *Travel, Computer, Communication, Education, Economics, Military, Sports,
//! Medicine, Art, Politics*. [`DomainSet`] is an ordered, name-addressable
//! catalogue of such domains; [`PAPER_DOMAINS`] is that exact list.

use crate::ids::DomainId;
use std::collections::HashMap;

/// The ten predefined interest domains of the paper's evaluation (Section III).
pub const PAPER_DOMAINS: [&str; 10] = [
    "Travel",
    "Computer",
    "Communication",
    "Education",
    "Economics",
    "Military",
    "Sports",
    "Medicine",
    "Art",
    "Politics",
];

/// An ordered catalogue of interest domains (`C_t` in Eq. 5).
///
/// Domains can be predefined by the business application (as in the paper's
/// evaluation) or discovered by topic-discovery techniques; either way they
/// end up as a `DomainSet`, and every domain-influence vector in `mass-core`
/// is indexed by [`DomainId`] positions in this catalogue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainSet {
    names: Vec<String>,
    by_name: HashMap<String, DomainId>,
}

impl DomainSet {
    /// Builds a catalogue from domain names. Duplicate names (case-sensitive)
    /// keep the first occurrence's id.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut set = DomainSet {
            names: Vec::new(),
            by_name: HashMap::new(),
        };
        for name in names {
            set.insert(name.into());
        }
        set
    }

    /// The paper's ten-domain catalogue.
    pub fn paper() -> Self {
        Self::new(PAPER_DOMAINS)
    }

    /// Adds a domain, returning its id (existing id if already present).
    pub fn insert(&mut self, name: String) -> DomainId {
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = DomainId::new(self.names.len());
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a domain.
    ///
    /// # Panics
    /// Panics if `id` is not from this catalogue.
    pub fn name(&self, id: DomainId) -> &str {
        &self.names[id.index()]
    }

    /// Looks a domain up by exact name.
    pub fn id_of(&self, name: &str) -> Option<DomainId> {
        self.by_name.get(name).copied()
    }

    /// Case-insensitive lookup, for user-supplied domain choices
    /// (the Fig. 3 dropdown accepts e.g. "sports").
    pub fn id_of_ci(&self, name: &str) -> Option<DomainId> {
        self.names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .map(DomainId::new)
    }

    /// Iterates `(id, name)` pairs in catalogue order.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (DomainId::new(i), n.as_str()))
    }

    /// All ids in catalogue order.
    pub fn ids(&self) -> impl Iterator<Item = DomainId> + '_ {
        (0..self.names.len()).map(DomainId::new)
    }

    /// All names in catalogue order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

impl Default for DomainSet {
    /// The default catalogue is the paper's ten domains.
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_ten_domains_in_order() {
        let d = DomainSet::paper();
        assert_eq!(d.len(), 10);
        assert_eq!(d.name(DomainId::new(0)), "Travel");
        assert_eq!(d.name(DomainId::new(6)), "Sports");
        assert_eq!(d.name(DomainId::new(9)), "Politics");
    }

    #[test]
    fn lookup_by_name() {
        let d = DomainSet::paper();
        assert_eq!(d.id_of("Art"), Some(DomainId::new(8)));
        assert_eq!(d.id_of("art"), None);
        assert_eq!(d.id_of_ci("art"), Some(DomainId::new(8)));
        assert_eq!(d.id_of_ci("SPORTS"), Some(DomainId::new(6)));
        assert_eq!(d.id_of("Cooking"), None);
    }

    #[test]
    fn insert_deduplicates() {
        let mut d = DomainSet::new(["A", "B"]);
        let a = d.id_of("A").unwrap();
        assert_eq!(d.insert("A".into()), a);
        assert_eq!(d.len(), 2);
        let c = d.insert("C".into());
        assert_eq!(c, DomainId::new(2));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn iter_yields_pairs() {
        let d = DomainSet::new(["X", "Y"]);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(
            pairs,
            vec![(DomainId::new(0), "X"), (DomainId::new(1), "Y")]
        );
        assert_eq!(d.ids().count(), 2);
    }

    #[test]
    fn empty_set() {
        let d = DomainSet::new(Vec::<String>::new());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(DomainSet::default(), DomainSet::paper());
    }
}
