//! Precomputed lookup structures over a [`crate::Dataset`].
//!
//! The influence equations repeatedly need per-blogger aggregates — which
//! posts a blogger wrote (`P(b_i)`), how many comments a blogger has made in
//! total (`TC(b_j)`, the Eq. 3 normaliser), in-link tallies for the link
//! baselines — so [`DatasetIndex`] computes them once in a single pass.

use crate::dataset::Dataset;
use crate::ids::{BloggerId, PostId};

/// Immutable per-dataset aggregates, built by [`Dataset::index`].
///
/// All vectors are indexed by the dense id spaces of the dataset the index
/// was built from; using it with a different dataset is a logic error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetIndex {
    /// `posts_by_blogger[b]` = ids of the posts authored by blogger `b`,
    /// in post-id order. This is `P(b_i)` from Eq. 1.
    posts_by_blogger: Vec<Vec<PostId>>,
    /// `TC(b)`: total number of comments blogger `b` has written anywhere.
    total_comments_made: Vec<u32>,
    /// Total number of comments received across all of `b`'s posts.
    comments_received: Vec<u32>,
    /// In-link count of each post (how many other posts link to it).
    post_inlinks: Vec<u32>,
    /// In-link count of each blogger in the friend/space link graph.
    blogger_inlinks: Vec<u32>,
}

impl DatasetIndex {
    /// Builds the index in a single pass over the dataset.
    pub fn build(ds: &Dataset) -> Self {
        let nb = ds.bloggers.len();
        let np = ds.posts.len();
        let mut posts_by_blogger = vec![Vec::new(); nb];
        let mut total_comments_made = vec![0u32; nb];
        let mut comments_received = vec![0u32; nb];
        let mut post_inlinks = vec![0u32; np];
        let mut blogger_inlinks = vec![0u32; nb];

        for (pidx, post) in ds.posts.iter().enumerate() {
            let pid = PostId::new(pidx);
            posts_by_blogger[post.author.index()].push(pid);
            comments_received[post.author.index()] += post.comments.len() as u32;
            for c in &post.comments {
                total_comments_made[c.commenter.index()] += 1;
            }
            for &target in &post.links_to {
                post_inlinks[target.index()] += 1;
            }
        }
        for blogger in &ds.bloggers {
            for &friend in &blogger.friends {
                blogger_inlinks[friend.index()] += 1;
            }
        }

        DatasetIndex {
            posts_by_blogger,
            total_comments_made,
            comments_received,
            post_inlinks,
            blogger_inlinks,
        }
    }

    /// Posts authored by `b` (`P(b_i)`).
    #[inline]
    pub fn posts_of(&self, b: BloggerId) -> &[PostId] {
        &self.posts_by_blogger[b.index()]
    }

    /// `|P(b_i)|` — number of posts written by `b`.
    #[inline]
    pub fn post_count(&self, b: BloggerId) -> usize {
        self.posts_by_blogger[b.index()].len()
    }

    /// `TC(b)`: total comments blogger `b` has made on anyone's posts.
    #[inline]
    pub fn total_comments_made(&self, b: BloggerId) -> u32 {
        self.total_comments_made[b.index()]
    }

    /// Total comments received across all of `b`'s posts.
    #[inline]
    pub fn comments_received(&self, b: BloggerId) -> u32 {
        self.comments_received[b.index()]
    }

    /// How many posts link to post `p`.
    #[inline]
    pub fn post_inlinks(&self, p: PostId) -> u32 {
        self.post_inlinks[p.index()]
    }

    /// How many bloggers link to blogger `b` in the space link graph.
    #[inline]
    pub fn blogger_inlinks(&self, b: BloggerId) -> u32 {
        self.blogger_inlinks[b.index()]
    }

    /// Number of bloggers the index covers.
    #[inline]
    pub fn blogger_count(&self) -> usize {
        self.posts_by_blogger.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::dataset::DatasetBuilder;
    use crate::entity::Sentiment;
    use crate::ids::{BloggerId, PostId};

    #[test]
    fn aggregates_match_hand_counts() {
        let mut b = DatasetBuilder::new();
        let amery = b.blogger("Amery");
        let bob = b.blogger("Bob");
        let cary = b.blogger("Cary");
        let p1 = b.post(amery, "Post1", "programming skills in computer science");
        let p2 = b.post(amery, "Post2", "economic depression trends");
        let p3 = b.post(bob, "Post3", "more cs");
        b.comment(p1, bob, "agree", Some(Sentiment::Positive));
        b.comment(p1, cary, "hmm", None);
        b.comment(p2, cary, "support", Some(Sentiment::Positive));
        b.link_posts(p3, p1);
        b.friend(bob, amery);
        b.friend(cary, amery);
        let ds = b.build().unwrap();
        let ix = ds.index();

        assert_eq!(ix.posts_of(amery), &[p1, p2]);
        assert_eq!(ix.post_count(amery), 2);
        assert_eq!(ix.post_count(cary), 0);
        assert_eq!(ix.total_comments_made(cary), 2);
        assert_eq!(ix.total_comments_made(bob), 1);
        assert_eq!(ix.total_comments_made(amery), 0);
        assert_eq!(ix.comments_received(amery), 3);
        assert_eq!(ix.comments_received(bob), 0);
        assert_eq!(ix.post_inlinks(p1), 1);
        assert_eq!(ix.post_inlinks(p3), 0);
        assert_eq!(ix.blogger_inlinks(amery), 2);
        assert_eq!(ix.blogger_inlinks(bob), 0);
        assert_eq!(ix.blogger_count(), 3);
    }

    #[test]
    fn empty_dataset_indexes_cleanly() {
        let ds = DatasetBuilder::new().build().unwrap();
        let ix = ds.index();
        assert_eq!(ix.blogger_count(), 0);
    }

    #[test]
    fn blogger_without_posts_has_empty_slices() {
        let mut b = DatasetBuilder::new();
        let lurker = b.blogger("Lurker");
        let ds = b.build().unwrap();
        let ix = ds.index();
        assert!(ix.posts_of(lurker).is_empty());
        assert_eq!(ix.total_comments_made(lurker), 0);
        assert_eq!(ix.comments_received(lurker), 0);
    }

    #[test]
    fn index_is_deterministic() {
        let mut b = DatasetBuilder::new();
        let x = b.blogger("x");
        let y = b.blogger("y");
        let p = b.post(x, "t", "w w w");
        b.comment(p, y, "ok", None);
        let ds = b.build().unwrap();
        assert_eq!(ds.index(), ds.index());
        let _ = (BloggerId::new(0), PostId::new(0)); // silence unused imports in some cfgs
    }
}
