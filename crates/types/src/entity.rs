//! Blogosphere entities: bloggers, posts and comments.

use crate::ids::{BloggerId, DomainId, PostId};

/// A commenter's attitude toward a post, per Section II of the paper.
///
/// The paper maps attitudes to a *sentiment factor* `SF(b_i, d_k, b_j)`:
/// `1.0` for positive comments (containing words such as "agree", "support",
/// "conform"), `0.1` for negative comments, and `0.5` otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Sentiment {
    /// The commenter endorses the post (`SF = 1.0`).
    Positive,
    /// The commenter disagrees with or criticises the post (`SF = 0.1`).
    Negative,
    /// No clear attitude (`SF = 0.5`). This is the default for untagged
    /// comments and the fallback when lexicon analysis is inconclusive.
    #[default]
    Neutral,
}

impl Sentiment {
    /// The sentiment factor the paper assigns to this attitude class.
    #[inline]
    pub fn factor(self) -> f64 {
        match self {
            Sentiment::Positive => 1.0,
            Sentiment::Neutral => 0.5,
            Sentiment::Negative => 0.1,
        }
    }

    /// Stable lowercase name, used by the XML store.
    pub fn as_str(self) -> &'static str {
        match self {
            Sentiment::Positive => "positive",
            Sentiment::Negative => "negative",
            Sentiment::Neutral => "neutral",
        }
    }

    /// Parses the stable name produced by [`Sentiment::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "positive" => Some(Sentiment::Positive),
            "negative" => Some(Sentiment::Negative),
            "neutral" => Some(Sentiment::Neutral),
            _ => None,
        }
    }
}

/// A reply left on a [`Post`] by another blogger.
#[derive(Clone, Debug, PartialEq)]
pub struct Comment {
    /// The blogger who wrote the comment (`b_j` in Eq. 3).
    pub commenter: BloggerId,
    /// Raw comment text; the comment analyzer derives [`Comment::sentiment`]
    /// from it when the tag is absent.
    pub text: String,
    /// Attitude of the commenter, if already analysed or ground-truth known.
    pub sentiment: Option<Sentiment>,
    /// When the comment was written, in corpus ticks (arbitrary units, `0`
    /// for timeless corpora). Temporal analyses decay a comment's sentiment
    /// contribution by its own age, independent of its post's age.
    pub ts: u64,
}

impl Comment {
    /// Creates an untagged comment at tick 0; sentiment is left to the
    /// analyzer.
    pub fn new(commenter: BloggerId, text: impl Into<String>) -> Self {
        Comment {
            commenter,
            text: text.into(),
            sentiment: None,
            ts: 0,
        }
    }

    /// Creates an untagged comment stamped with a tick.
    pub fn new_at(commenter: BloggerId, text: impl Into<String>, ts: u64) -> Self {
        Comment {
            ts,
            ..Comment::new(commenter, text)
        }
    }

    /// The effective sentiment: the explicit tag if present, else
    /// [`Sentiment::Neutral`].
    #[inline]
    pub fn effective_sentiment(&self) -> Sentiment {
        self.sentiment.unwrap_or_default()
    }
}

/// A blog post — the paper's unit of analysis (`d_k`).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Post {
    /// Author of the post (`b_i`).
    pub author: BloggerId,
    /// Post title, displayed in the UI and used by the classifier.
    pub title: String,
    /// Post body text.
    pub text: String,
    /// Posts this post links to (blogroll citations, trackbacks). These form
    /// the post-level link graph used by the OpinionLeader baseline and the
    /// in-link/out-link features of the iFinder baseline.
    pub links_to: Vec<PostId>,
    /// Comments received, in arrival order.
    pub comments: Vec<Comment>,
    /// Ground-truth domain, when the post came from the synthetic generator.
    /// Real crawled posts leave this `None`; the analyzer infers domains with
    /// the naive-Bayes classifier instead.
    pub true_domain: Option<DomainId>,
    /// When the post was published, in corpus ticks (arbitrary units, `0`
    /// for timeless corpora). The temporal facet weights a post's quality
    /// by its age relative to the analysis horizon.
    pub ts: u64,
}

impl Post {
    /// Creates a post at tick 0 with no links or comments.
    pub fn new(author: BloggerId, title: impl Into<String>, text: impl Into<String>) -> Self {
        Post {
            author,
            title: title.into(),
            text: text.into(),
            links_to: Vec::new(),
            comments: Vec::new(),
            true_domain: None,
            ts: 0,
        }
    }

    /// Creates a post stamped with a tick.
    pub fn new_at(
        author: BloggerId,
        title: impl Into<String>,
        text: impl Into<String>,
        ts: u64,
    ) -> Self {
        Post {
            ts,
            ..Post::new(author, title, text)
        }
    }

    /// Post length in word tokens — the paper's quality proxy
    /// ("the longer a post, the higher quality it is considered").
    pub fn length_words(&self) -> usize {
        self.text.split_whitespace().count()
    }

    /// Number of comments received (`|C(b_i, d_k)|` counts commenters per
    /// comment occurrence; the paper sums over comments).
    #[inline]
    pub fn comment_count(&self) -> usize {
        self.comments.len()
    }
}

/// A blog author (`b_i`).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Blogger {
    /// Display name, shown on visualisation nodes.
    pub name: String,
    /// Free-text profile; Scenario 2 mines interest domains from it.
    pub profile: String,
    /// Bloggers this blogger links to from their space (friend/blogroll
    /// links). These are the edges of the General-Links authority graph.
    pub friends: Vec<BloggerId>,
}

impl Blogger {
    /// Creates a blogger with an empty profile and no links.
    pub fn new(name: impl Into<String>) -> Self {
        Blogger {
            name: name.into(),
            profile: String::new(),
            friends: Vec::new(),
        }
    }

    /// Creates a blogger with a profile.
    pub fn with_profile(name: impl Into<String>, profile: impl Into<String>) -> Self {
        Blogger {
            name: name.into(),
            profile: profile.into(),
            friends: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentiment_factors_match_paper() {
        assert_eq!(Sentiment::Positive.factor(), 1.0);
        assert_eq!(Sentiment::Neutral.factor(), 0.5);
        assert_eq!(Sentiment::Negative.factor(), 0.1);
    }

    #[test]
    fn sentiment_name_roundtrip() {
        for s in [Sentiment::Positive, Sentiment::Negative, Sentiment::Neutral] {
            assert_eq!(Sentiment::parse(s.as_str()), Some(s));
        }
        assert_eq!(Sentiment::parse("meh"), None);
    }

    #[test]
    fn default_sentiment_is_neutral() {
        let c = Comment::new(BloggerId::new(0), "hm");
        assert_eq!(c.effective_sentiment(), Sentiment::Neutral);
        let tagged = Comment {
            sentiment: Some(Sentiment::Positive),
            ..c
        };
        assert_eq!(tagged.effective_sentiment(), Sentiment::Positive);
    }

    #[test]
    fn post_length_counts_words() {
        let p = Post::new(BloggerId::new(0), "t", "one two  three\nfour");
        assert_eq!(p.length_words(), 4);
        let empty = Post::new(BloggerId::new(0), "t", "");
        assert_eq!(empty.length_words(), 0);
    }

    #[test]
    fn post_comment_count() {
        let mut p = Post::new(BloggerId::new(0), "t", "x");
        assert_eq!(p.comment_count(), 0);
        p.comments.push(Comment::new(BloggerId::new(1), "hi"));
        p.comments.push(Comment::new(BloggerId::new(1), "again"));
        assert_eq!(p.comment_count(), 2);
    }

    #[test]
    fn timestamps_default_to_zero() {
        assert_eq!(Post::new(BloggerId::new(0), "t", "x").ts, 0);
        assert_eq!(Comment::new(BloggerId::new(1), "hi").ts, 0);
        let p = Post::new_at(BloggerId::new(0), "t", "x", 42);
        assert_eq!(p.ts, 42);
        let c = Comment::new_at(BloggerId::new(1), "hi", 43);
        assert_eq!(c.ts, 43);
    }

    #[test]
    fn blogger_constructors() {
        let b = Blogger::new("Amery");
        assert_eq!(b.name, "Amery");
        assert!(b.profile.is_empty());
        let p = Blogger::with_profile("Bob", "likes sports");
        assert_eq!(p.profile, "likes sports");
    }
}
