//! Typed identifiers for the MASS data model.
//!
//! All identifiers are dense indices into the owning [`crate::Dataset`]'s
//! vectors, wrapped in newtypes so a post index can never be confused with a
//! blogger index. They are `u32` internally: the paper's corpus is ~3 000
//! bloggers and ~40 000 posts, and even aggressive synthetic scale-ups stay
//! far below `u32::MAX`.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw dense index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn new(idx: usize) -> Self {
                assert!(idx <= u32::MAX as usize, concat!($tag, " id out of range"));
                Self(idx as u32)
            }

            /// The raw dense index, for vector addressing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(idx: usize) -> Self {
                Self::new(idx)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::Blogger`] within a [`crate::Dataset`].
    BloggerId,
    "b"
);

define_id!(
    /// Identifier of a [`crate::Post`] within a [`crate::Dataset`].
    PostId,
    "p"
);

define_id!(
    /// Identifier of an interest domain within a [`crate::DomainSet`].
    DomainId,
    "C"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_index() {
        let b = BloggerId::new(42);
        assert_eq!(b.index(), 42);
        assert_eq!(usize::from(b), 42);
        assert_eq!(BloggerId::from(42usize), b);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(BloggerId::new(7).to_string(), "b7");
        assert_eq!(PostId::new(9).to_string(), "p9");
        assert_eq!(DomainId::new(3).to_string(), "C3");
        assert_eq!(format!("{:?}", PostId::new(0)), "p0");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(PostId::new(1));
        set.insert(PostId::new(1));
        set.insert(PostId::new(2));
        assert_eq!(set.len(), 2);
        assert!(BloggerId::new(1) < BloggerId::new(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_id_panics() {
        let _ = BloggerId::new(u32::MAX as usize + 1);
    }

    #[test]
    fn max_u32_is_accepted() {
        assert_eq!(BloggerId::new(u32::MAX as usize).index(), u32::MAX as usize);
    }
}
