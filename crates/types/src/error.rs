//! Error type for dataset construction and validation.

use crate::ids::{BloggerId, PostId};
use std::fmt;

/// Convenience alias used across the MASS crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Consistency errors detected when building or validating a [`crate::Dataset`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A post's author id is not a blogger in the dataset.
    UnknownAuthor { post: PostId, author: BloggerId },
    /// A comment references a commenter id that is not a blogger.
    UnknownCommenter { post: PostId, commenter: BloggerId },
    /// A friend link points at a blogger id outside the dataset.
    UnknownFriend {
        blogger: BloggerId,
        friend: BloggerId,
    },
    /// A post-to-post link points at a post id outside the dataset.
    UnknownLinkedPost { post: PostId, target: PostId },
    /// A post's `true_domain` index exceeds the domain catalogue.
    UnknownDomain {
        post: PostId,
        domain: usize,
        catalogue_len: usize,
    },
    /// A blogger commented on their own post; the paper's influence flow is
    /// between peers, so self-comments are rejected at build time.
    SelfComment { post: PostId, blogger: BloggerId },
    /// A post links to itself.
    SelfLink { post: PostId },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAuthor { post, author } => {
                write!(f, "post {post} has unknown author {author}")
            }
            Error::UnknownCommenter { post, commenter } => {
                write!(f, "post {post} has comment from unknown blogger {commenter}")
            }
            Error::UnknownFriend { blogger, friend } => {
                write!(f, "blogger {blogger} links to unknown blogger {friend}")
            }
            Error::UnknownLinkedPost { post, target } => {
                write!(f, "post {post} links to unknown post {target}")
            }
            Error::UnknownDomain { post, domain, catalogue_len } => write!(
                f,
                "post {post} claims domain index {domain} but the catalogue has {catalogue_len} domains"
            ),
            Error::SelfComment { post, blogger } => {
                write!(f, "blogger {blogger} comments on their own post {post}")
            }
            Error::SelfLink { post } => write!(f, "post {post} links to itself"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_ids() {
        let e = Error::UnknownCommenter {
            post: PostId::new(3),
            commenter: BloggerId::new(9),
        };
        assert_eq!(e.to_string(), "post p3 has comment from unknown blogger b9");
        let e = Error::SelfLink {
            post: PostId::new(1),
        };
        assert!(e.to_string().contains("p1"));
        let e = Error::UnknownDomain {
            post: PostId::new(2),
            domain: 11,
            catalogue_len: 10,
        };
        assert!(e.to_string().contains("11"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::SelfComment {
            post: PostId::new(0),
            blogger: BloggerId::new(0),
        });
        assert!(e.to_string().contains("own post"));
    }
}
