//! The blogosphere snapshot: [`Dataset`], its builder and summary stats.

use crate::domains::DomainSet;
use crate::entity::{Blogger, Comment, Post, Sentiment};
use crate::error::{Error, Result};
use crate::ids::{BloggerId, DomainId, PostId};
use crate::index::DatasetIndex;

/// A consistent snapshot of a (real or simulated) blogosphere crawl:
/// bloggers, their posts with comments, the space link graph and the domain
/// catalogue the analyzer classifies against.
///
/// Construct via [`DatasetBuilder`] (which validates referential integrity)
/// or deserialise from the XML store in `mass-xml`. All id spaces are dense:
/// `BloggerId(i)` indexes `bloggers[i]`, `PostId(k)` indexes `posts[k]`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Dataset {
    /// All bloggers, indexed by [`BloggerId`].
    pub bloggers: Vec<Blogger>,
    /// All posts, indexed by [`PostId`].
    pub posts: Vec<Post>,
    /// The interest-domain catalogue.
    pub domains: DomainSet,
}

impl Dataset {
    /// Builds the per-blogger aggregate index ([`DatasetIndex`]).
    pub fn index(&self) -> DatasetIndex {
        DatasetIndex::build(self)
    }

    /// Looks up a blogger.
    #[inline]
    pub fn blogger(&self, id: BloggerId) -> &Blogger {
        &self.bloggers[id.index()]
    }

    /// Looks up a post.
    #[inline]
    pub fn post(&self, id: PostId) -> &Post {
        &self.posts[id.index()]
    }

    /// Iterates `(id, blogger)` pairs.
    pub fn bloggers_enumerated(&self) -> impl Iterator<Item = (BloggerId, &Blogger)> {
        self.bloggers
            .iter()
            .enumerate()
            .map(|(i, b)| (BloggerId::new(i), b))
    }

    /// Iterates `(id, post)` pairs.
    pub fn posts_enumerated(&self) -> impl Iterator<Item = (PostId, &Post)> {
        self.posts
            .iter()
            .enumerate()
            .map(|(i, p)| (PostId::new(i), p))
    }

    /// Finds a blogger by exact display name (names need not be unique; the
    /// first match wins).
    pub fn blogger_by_name(&self, name: &str) -> Option<BloggerId> {
        self.bloggers
            .iter()
            .position(|b| b.name == name)
            .map(BloggerId::new)
    }

    /// Validates referential integrity; [`DatasetBuilder::build`] calls this,
    /// and the XML loader re-validates untrusted files with it.
    pub fn validate(&self) -> Result<()> {
        let nb = self.bloggers.len();
        let np = self.posts.len();
        for (pidx, post) in self.posts.iter().enumerate() {
            let pid = PostId::new(pidx);
            if post.author.index() >= nb {
                return Err(Error::UnknownAuthor {
                    post: pid,
                    author: post.author,
                });
            }
            for c in &post.comments {
                if c.commenter.index() >= nb {
                    return Err(Error::UnknownCommenter {
                        post: pid,
                        commenter: c.commenter,
                    });
                }
                if c.commenter == post.author {
                    return Err(Error::SelfComment {
                        post: pid,
                        blogger: c.commenter,
                    });
                }
            }
            for &target in &post.links_to {
                if target.index() >= np {
                    return Err(Error::UnknownLinkedPost { post: pid, target });
                }
                if target == pid {
                    return Err(Error::SelfLink { post: pid });
                }
            }
            if let Some(d) = post.true_domain {
                if d.index() >= self.domains.len() {
                    return Err(Error::UnknownDomain {
                        post: pid,
                        domain: d.index(),
                        catalogue_len: self.domains.len(),
                    });
                }
            }
        }
        for (bidx, blogger) in self.bloggers.iter().enumerate() {
            for &friend in &blogger.friends {
                if friend.index() >= nb {
                    return Err(Error::UnknownFriend {
                        blogger: BloggerId::new(bidx),
                        friend,
                    });
                }
            }
        }
        Ok(())
    }

    /// Summary statistics for logging and the CLI `stats` command.
    pub fn stats(&self) -> DatasetStats {
        let total_comments: usize = self.posts.iter().map(|p| p.comments.len()).sum();
        let total_post_links: usize = self.posts.iter().map(|p| p.links_to.len()).sum();
        let total_friend_links: usize = self.bloggers.iter().map(|b| b.friends.len()).sum();
        let total_words: usize = self.posts.iter().map(|p| p.length_words()).sum();
        DatasetStats {
            bloggers: self.bloggers.len(),
            posts: self.posts.len(),
            comments: total_comments,
            post_links: total_post_links,
            friend_links: total_friend_links,
            domains: self.domains.len(),
            mean_post_words: if self.posts.is_empty() {
                0.0
            } else {
                total_words as f64 / self.posts.len() as f64
            },
        }
    }
}

/// Aggregate counts over a [`Dataset`], produced by [`Dataset::stats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of bloggers.
    pub bloggers: usize,
    /// Number of posts.
    pub posts: usize,
    /// Total comments across all posts.
    pub comments: usize,
    /// Total post-to-post links.
    pub post_links: usize,
    /// Total blogger-to-blogger (friend) links.
    pub friend_links: usize,
    /// Number of domains in the catalogue.
    pub domains: usize,
    /// Mean post length in words.
    pub mean_post_words: f64,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} bloggers, {} posts ({} comments, {:.1} words/post), {} post links, {} friend links, {} domains",
            self.bloggers,
            self.posts,
            self.comments,
            self.mean_post_words,
            self.post_links,
            self.friend_links,
            self.domains
        )
    }
}

/// Incremental, validated constructor for [`Dataset`].
///
/// The builder hands out ids as entities are added, so callers can wire
/// comments and links without tracking indices themselves. [`build`]
/// validates the finished dataset.
///
/// [`build`]: DatasetBuilder::build
#[derive(Clone, Debug, Default)]
pub struct DatasetBuilder {
    dataset: Dataset,
}

impl DatasetBuilder {
    /// Starts an empty dataset with the paper's ten-domain catalogue.
    pub fn new() -> Self {
        DatasetBuilder {
            dataset: Dataset {
                domains: DomainSet::paper(),
                ..Default::default()
            },
        }
    }

    /// Starts an empty dataset with a custom domain catalogue.
    pub fn with_domains(domains: DomainSet) -> Self {
        DatasetBuilder {
            dataset: Dataset {
                domains,
                ..Default::default()
            },
        }
    }

    /// Adds a blogger with an empty profile.
    pub fn blogger(&mut self, name: impl Into<String>) -> BloggerId {
        self.add_blogger(Blogger::new(name))
    }

    /// Adds a blogger with a profile text.
    pub fn blogger_with_profile(
        &mut self,
        name: impl Into<String>,
        profile: impl Into<String>,
    ) -> BloggerId {
        self.add_blogger(Blogger::with_profile(name, profile))
    }

    /// Adds a fully-formed blogger record.
    pub fn add_blogger(&mut self, blogger: Blogger) -> BloggerId {
        let id = BloggerId::new(self.dataset.bloggers.len());
        self.dataset.bloggers.push(blogger);
        id
    }

    /// Adds a post authored by `author`.
    pub fn post(
        &mut self,
        author: BloggerId,
        title: impl Into<String>,
        text: impl Into<String>,
    ) -> PostId {
        self.add_post(Post::new(author, title, text))
    }

    /// Adds a post with a ground-truth domain tag (synthetic corpora).
    pub fn post_in_domain(
        &mut self,
        author: BloggerId,
        title: impl Into<String>,
        text: impl Into<String>,
        domain: DomainId,
    ) -> PostId {
        let mut p = Post::new(author, title, text);
        p.true_domain = Some(domain);
        self.add_post(p)
    }

    /// Adds a fully-formed post record.
    pub fn add_post(&mut self, post: Post) -> PostId {
        let id = PostId::new(self.dataset.posts.len());
        self.dataset.posts.push(post);
        id
    }

    /// Appends a comment to `post`.
    pub fn comment(
        &mut self,
        post: PostId,
        commenter: BloggerId,
        text: impl Into<String>,
        sentiment: Option<Sentiment>,
    ) {
        self.dataset.posts[post.index()].comments.push(Comment {
            commenter,
            text: text.into(),
            sentiment,
            ts: 0,
        });
    }

    /// Records that `from` links to `to` in the post link graph.
    pub fn link_posts(&mut self, from: PostId, to: PostId) {
        self.dataset.posts[from.index()].links_to.push(to);
    }

    /// Records a friend/space link `from → to` in the blogger link graph.
    pub fn friend(&mut self, from: BloggerId, to: BloggerId) {
        self.dataset.bloggers[from.index()].friends.push(to);
    }

    /// Number of bloggers added so far.
    pub fn blogger_count(&self) -> usize {
        self.dataset.bloggers.len()
    }

    /// Number of posts added so far.
    pub fn post_count(&self) -> usize {
        self.dataset.posts.len()
    }

    /// Validates and returns the dataset.
    pub fn build(self) -> Result<Dataset> {
        self.dataset.validate()?;
        Ok(self.dataset)
    }

    /// Returns the dataset without validation. For test fixtures that
    /// deliberately construct inconsistent data.
    pub fn build_unchecked(self) -> Dataset {
        self.dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DatasetBuilder {
        let mut b = DatasetBuilder::new();
        let a = b.blogger("A");
        let c = b.blogger("C");
        let p = b.post(a, "t", "hello world text");
        b.comment(p, c, "agree", Some(Sentiment::Positive));
        b
    }

    #[test]
    fn build_validates_ok() {
        let ds = toy().build().unwrap();
        assert_eq!(ds.bloggers.len(), 2);
        assert_eq!(ds.posts.len(), 1);
        assert_eq!(ds.blogger_by_name("C"), Some(BloggerId::new(1)));
        assert_eq!(ds.blogger_by_name("Z"), None);
    }

    #[test]
    fn self_comment_rejected() {
        let mut b = DatasetBuilder::new();
        let a = b.blogger("A");
        let p = b.post(a, "t", "x");
        b.comment(p, a, "me!", None);
        assert_eq!(
            b.build().unwrap_err(),
            Error::SelfComment {
                post: PostId::new(0),
                blogger: a
            }
        );
    }

    #[test]
    fn unknown_commenter_rejected() {
        let mut b = toy();
        let p = PostId::new(0);
        b.comment(p, BloggerId::new(99), "ghost", None);
        assert!(matches!(
            b.build().unwrap_err(),
            Error::UnknownCommenter { .. }
        ));
    }

    #[test]
    fn unknown_friend_rejected() {
        let mut b = toy();
        b.friend(BloggerId::new(0), BloggerId::new(50));
        assert!(matches!(
            b.build().unwrap_err(),
            Error::UnknownFriend { .. }
        ));
    }

    #[test]
    fn self_link_rejected() {
        let mut b = toy();
        b.link_posts(PostId::new(0), PostId::new(0));
        assert_eq!(
            b.build().unwrap_err(),
            Error::SelfLink {
                post: PostId::new(0)
            }
        );
    }

    #[test]
    fn unknown_linked_post_rejected() {
        let mut b = toy();
        b.link_posts(PostId::new(0), PostId::new(77));
        assert!(matches!(
            b.build().unwrap_err(),
            Error::UnknownLinkedPost { .. }
        ));
    }

    #[test]
    fn unknown_domain_rejected() {
        let mut b = DatasetBuilder::new();
        let a = b.blogger("A");
        b.post_in_domain(a, "t", "x", DomainId::new(10)); // catalogue has 10 => max index 9
        assert!(matches!(
            b.build().unwrap_err(),
            Error::UnknownDomain { .. }
        ));
    }

    #[test]
    fn unknown_author_rejected() {
        let mut b = DatasetBuilder::new();
        b.add_post(Post::new(BloggerId::new(5), "t", "x"));
        assert!(matches!(
            b.build().unwrap_err(),
            Error::UnknownAuthor { .. }
        ));
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let mut b = DatasetBuilder::new();
        b.add_post(Post::new(BloggerId::new(5), "t", "x"));
        let ds = b.build_unchecked();
        assert!(ds.validate().is_err());
    }

    #[test]
    fn stats_count_everything() {
        let mut b = toy();
        let a = BloggerId::new(0);
        let c = BloggerId::new(1);
        b.friend(a, c);
        let p2 = b.post(c, "t2", "four words in here");
        b.link_posts(p2, PostId::new(0));
        let ds = b.build().unwrap();
        let s = ds.stats();
        assert_eq!(s.bloggers, 2);
        assert_eq!(s.posts, 2);
        assert_eq!(s.comments, 1);
        assert_eq!(s.post_links, 1);
        assert_eq!(s.friend_links, 1);
        assert_eq!(s.domains, 10);
        assert!((s.mean_post_words - 3.5).abs() < 1e-12);
        let rendered = s.to_string();
        assert!(rendered.contains("2 bloggers"));
    }

    #[test]
    fn empty_dataset_stats() {
        let s = DatasetBuilder::new().build().unwrap().stats();
        assert_eq!(s.posts, 0);
        assert_eq!(s.mean_post_words, 0.0);
    }

    #[test]
    fn enumerated_iterators_pair_ids() {
        let ds = toy().build().unwrap();
        let ids: Vec<_> = ds
            .bloggers_enumerated()
            .map(|(i, b)| (i, b.name.clone()))
            .collect();
        assert_eq!(
            ids,
            vec![
                (BloggerId::new(0), "A".into()),
                (BloggerId::new(1), "C".into())
            ]
        );
        assert_eq!(ds.posts_enumerated().count(), 1);
    }
}
