//! # mass-types
//!
//! Core data model for the MASS influential-blogger mining system
//! (Cai & Chen, *MASS: a Multi-fAcet domain-Specific influential blogger
//! mining System*, ICDE 2010).
//!
//! This crate defines the entities every other MASS crate operates on:
//!
//! * [`Blogger`] — a blog author with a profile and outgoing space links,
//! * [`Post`] — a blog post with text, post-to-post links and [`Comment`]s,
//! * [`Comment`] — a reply by another blogger, optionally sentiment-tagged,
//! * [`Dataset`] — the crawled blogosphere snapshot, plus
//! * [`DatasetIndex`] — precomputed lookup structures (per-blogger post lists,
//!   `TC(b)` total-comment counts, in-link tallies) that the influence model
//!   in `mass-core` consumes.
//!
//! The model follows the paper's "post-reply" view of the blogosphere: the
//! primary analysis unit is the *post*; bloggers influence each other by
//! commenting on posts and by linking to each other's spaces.
//!
//! ```
//! use mass_types::{DatasetBuilder, Sentiment};
//!
//! let mut b = DatasetBuilder::new();
//! let amery = b.blogger("Amery");
//! let bob = b.blogger("Bob");
//! let post = b.post(amery, "Rust tips", "Some programming skills in CS.");
//! b.comment(post, bob, "agree, great post", Some(Sentiment::Positive));
//! let dataset = b.build().expect("consistent dataset");
//! assert_eq!(dataset.bloggers.len(), 2);
//! assert_eq!(dataset.index().total_comments_made(bob), 1);
//! ```

pub mod dataset;
pub mod domains;
pub mod entity;
pub mod error;
pub mod ids;
pub mod index;

pub use dataset::{Dataset, DatasetBuilder, DatasetStats};
pub use domains::{DomainSet, PAPER_DOMAINS};
pub use entity::{Blogger, Comment, Post, Sentiment};
pub use error::{Error, Result};
pub use ids::{BloggerId, DomainId, PostId};
pub use index::DatasetIndex;
