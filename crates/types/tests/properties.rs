//! Property-based tests for the data model: any dataset the strategy can
//! produce must index consistently and validate deterministically.

use mass_types::{
    Blogger, BloggerId, Comment, Dataset, DatasetBuilder, DomainId, Post, PostId, Sentiment,
};
use proptest::prelude::*;

/// Strategy: a structurally valid dataset with up to 12 bloggers, 20 posts,
/// and arbitrary comment/link wiring that respects the builder's rules.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..12, 0usize..20).prop_flat_map(|(nb, np)| {
        let posts = proptest::collection::vec(
            (
                0..nb,                                                 // author
                ".{0,40}",                                             // text
                proptest::collection::vec((0..nb, any::<u8>()), 0..6), // comments
                proptest::option::of(0..10usize),                      // true domain
            ),
            np..=np,
        );
        posts.prop_map(move |post_specs| {
            let mut b = DatasetBuilder::new();
            let ids: Vec<BloggerId> = (0..nb).map(|i| b.blogger(format!("b{i}"))).collect();
            for (author, text, comments, domain) in post_specs {
                let author_id = ids[author];
                let pid = match domain {
                    Some(d) => b.post_in_domain(author_id, "t", text, DomainId::new(d)),
                    None => b.post(author_id, "t", text),
                };
                for (commenter, sentiment_byte) in comments {
                    if commenter == author {
                        continue; // builder policy: no self-comments
                    }
                    let sentiment = match sentiment_byte % 4 {
                        0 => Some(Sentiment::Positive),
                        1 => Some(Sentiment::Negative),
                        2 => Some(Sentiment::Neutral),
                        _ => None,
                    };
                    b.comment(pid, ids[commenter], "c", sentiment);
                }
            }
            // Friend links: a deterministic sprinkle derived from sizes.
            for i in 0..nb {
                let target = (i * 7 + 3) % nb;
                if target != i {
                    b.friend(ids[i], ids[target]);
                }
            }
            b.build().expect("strategy builds valid datasets")
        })
    })
}

proptest! {
    #[test]
    fn built_datasets_validate(ds in arb_dataset()) {
        prop_assert!(ds.validate().is_ok());
    }

    #[test]
    fn index_totals_are_conserved(ds in arb_dataset()) {
        let ix = ds.index();
        // Σ_b TC(b) == Σ_b comments_received(b) == total comments.
        let total: u32 = ds.posts.iter().map(|p| p.comments.len() as u32).sum();
        let made: u32 = (0..ds.bloggers.len())
            .map(|i| ix.total_comments_made(BloggerId::new(i)))
            .sum();
        let received: u32 = (0..ds.bloggers.len())
            .map(|i| ix.comments_received(BloggerId::new(i)))
            .sum();
        prop_assert_eq!(made, total);
        prop_assert_eq!(received, total);
        // Σ_b |P(b)| == number of posts, and the lists partition the posts.
        let post_total: usize =
            (0..ds.bloggers.len()).map(|i| ix.post_count(BloggerId::new(i))).sum();
        prop_assert_eq!(post_total, ds.posts.len());
        for (i, _) in ds.bloggers.iter().enumerate() {
            for &p in ix.posts_of(BloggerId::new(i)) {
                prop_assert_eq!(ds.post(p).author, BloggerId::new(i));
            }
        }
    }

    #[test]
    fn stats_agree_with_index(ds in arb_dataset()) {
        let stats = ds.stats();
        let ix = ds.index();
        let comments: u32 = (0..ds.bloggers.len())
            .map(|i| ix.comments_received(BloggerId::new(i)))
            .sum();
        prop_assert_eq!(stats.comments, comments as usize);
        prop_assert_eq!(stats.bloggers, ds.bloggers.len());
        prop_assert_eq!(stats.posts, ds.posts.len());
    }

    #[test]
    fn corrupting_a_reference_fails_validation(ds in arb_dataset()) {
        prop_assume!(!ds.posts.is_empty());
        let mut broken = ds.clone();
        broken.posts[0].author = BloggerId::new(ds.bloggers.len() + 5);
        prop_assert!(broken.validate().is_err());

        let mut broken = ds.clone();
        broken.bloggers[0].friends.push(BloggerId::new(ds.bloggers.len() + 9));
        prop_assert!(broken.validate().is_err());

        let mut broken = ds;
        let bad_target = PostId::new(broken.posts.len() + 1);
        broken.posts[0].links_to.push(bad_target);
        prop_assert!(broken.validate().is_err());
    }

    #[test]
    fn validation_is_pure(ds in arb_dataset()) {
        let before = ds.clone();
        let _ = ds.validate();
        prop_assert_eq!(before, ds);
    }
}

#[test]
fn strategy_smoke() {
    // Non-proptest sanity: entities compose as the strategy assumes.
    let mut b = DatasetBuilder::new();
    let x = b.add_blogger(Blogger::new("x"));
    let p = b.add_post(Post::new(x, "t", "w"));
    let y = b.blogger("y");
    b.comment(p, y, "c", None);
    let ds = b.build().unwrap();
    assert_eq!(ds.posts[0].comments[0], Comment::new(y, "c"));
}
