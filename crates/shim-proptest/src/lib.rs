//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of proptest the MASS workspace actually uses: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and regex-literal strategies,
//! `collection::{vec, hash_set}`, `option::of`, `any::<T>()`, and
//! `sample::Index`.
//!
//! Semantics match upstream where tests can observe them, with one deliberate
//! omission: **no shrinking**. A failing case panics with the generated
//! inputs' assertion message instead of a minimised counterexample. Runs are
//! deterministic — the RNG is seeded from the test's name — so failures
//! reproduce exactly on re-run.

pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config that runs `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the full workspace suite
            // fast while still exercising each property broadly.
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was discarded (`prop_assume!` failed); it does not count
        /// toward the case budget.
        Reject(String),
        /// The property is false for this input.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic generator state handed to strategies (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the stream from a test's name, so each property test has a
        /// stable, independent input sequence across runs and platforms.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            let mut s = [0u64; 4];
            for slot in &mut s {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one property: keeps generating cases until `config.cases`
    /// successes, panicking on the first failure. Used by `proptest!`.
    pub fn run<F>(name: &str, config: &Config, f: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let reject_budget = config.cases * 16 + 256;
        while passed < config.cases {
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > reject_budget {
                        panic!(
                            "proptest `{name}`: too many rejected cases \
                             ({rejected} rejects for {passed} passes) — \
                             loosen the strategy or the prop_assume!"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed after {passed} passing cases: {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing values of `Self::Value` from a [`TestRng`].
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate` yields
    /// the final value directly.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {self:?}");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy {self:?}");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    self.start() + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy {self:?}");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    }

    /// `&str` strategies are regex literals (the subset in [`crate::string`]).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_regex(self, rng)
        }
    }

    /// Marker + constructor for `any::<T>()`.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// Strategy producing arbitrary values of `A` (see [`any`]).
    #[derive(Clone, Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection size: a fixed `usize`, `lo..hi`, or
    /// `lo..=hi`.
    pub trait SizeRange {
        /// Inclusive `(min, max)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range {self:?}");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range {self:?}");
            (*self.start(), *self.end())
        }
    }

    fn pick_len(size: &impl SizeRange, rng: &mut TestRng) -> usize {
        let (lo, hi) = size.bounds();
        lo + rng.below((hi - lo + 1) as u64) as usize
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = pick_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy for `HashSet<S::Value>` (see [`hash_set`]).
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = pick_len(&self.size, rng);
            let mut set = HashSet::with_capacity(target);
            // Duplicates don't grow the set, so allow a generous number of
            // draws; if the element domain is smaller than `target` we return
            // what we managed, mirroring upstream's best-effort behaviour.
            let mut attempts = target * 16 + 16;
            while set.len() < target && attempts > 0 {
                set.insert(self.element.generate(rng));
                attempts -= 1;
            }
            set
        }
    }

    /// `proptest::collection::hash_set(element, size)`.
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (see [`of`]).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default 3:1 bias toward Some.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    /// An index into a collection whose length is only known at use time
    /// (`any::<prop::sample::Index>()` then `.index(len)`).
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        /// Wraps a raw draw; used by the `Arbitrary` impl.
        pub fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Projects onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod string {
    //! Generation from the regex subset the workspace's string strategies
    //! use: literals, `.`, `[a-z0-9 ]` classes (ranges + literal chars),
    //! `(...)` groups, and `{n}` / `{n,m}` quantifiers.

    use crate::test_runner::TestRng;

    enum Atom {
        /// Any printable ASCII char plus a few multibyte ones, to exercise
        /// escaping paths.
        Dot,
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<(Atom, u32, u32)>),
    }

    /// Characters `.` can produce. Mostly printable ASCII (including XML
    /// specials), with a couple of multibyte characters so byte-length and
    /// char-length can differ.
    const DOT_EXTRAS: [char; 4] = ['é', 'Ω', '→', '\u{00A0}'];

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars>,
        in_group: bool,
    ) -> Vec<(Atom, u32, u32)> {
        let mut seq = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' {
                assert!(in_group, "unmatched ')' in regex strategy");
                chars.next();
                return seq;
            }
            chars.next();
            let atom = match c {
                '.' => Atom::Dot,
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().expect("unterminated class in regex strategy");
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().expect("unterminated class range");
                            assert!(hi != ']', "trailing '-' unsupported in class");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(!ranges.is_empty(), "empty class in regex strategy");
                    Atom::Class(ranges)
                }
                '(' => Atom::Group(parse_seq(chars, true)),
                '\\' => Atom::Literal(chars.next().expect("dangling escape in regex strategy")),
                other => Atom::Literal(other),
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut digits = String::new();
                let mut lo = None;
                loop {
                    match chars.next().expect("unterminated quantifier") {
                        '}' => break,
                        ',' => {
                            lo = Some(digits.parse::<u32>().expect("bad quantifier"));
                            digits.clear();
                        }
                        d => digits.push(d),
                    }
                }
                let last = digits.parse::<u32>().expect("bad quantifier");
                match lo {
                    Some(l) => (l, last),
                    None => (last, last),
                }
            } else {
                (1, 1)
            };
            seq.push((atom, lo, hi));
        }
        assert!(!in_group, "unterminated '(' in regex strategy");
        seq
    }

    fn emit(seq: &[(Atom, u32, u32)], rng: &mut TestRng, out: &mut String) {
        for (atom, lo, hi) in seq {
            let n = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..n {
                match atom {
                    Atom::Dot => {
                        // ~1 in 16 draws yields a non-ASCII char.
                        if rng.below(16) == 0 {
                            out.push(DOT_EXTRAS[rng.below(DOT_EXTRAS.len() as u64) as usize]);
                        } else {
                            out.push((0x20 + rng.below(0x5F) as u8) as char);
                        }
                    }
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(a, b) in ranges {
                            let span = (b as u64) - (a as u64) + 1;
                            if pick < span {
                                out.push(char::from_u32(a as u32 + pick as u32).unwrap());
                                break;
                            }
                            pick -= span;
                        }
                    }
                    Atom::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }

    /// Generates one string matching `pattern` (subset documented above).
    pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let seq = parse_seq(&mut chars, false);
        let mut out = String::new();
        emit(&seq, rng, &mut out);
        out
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0usize..10, s in "[a-z]{0,8}") { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run(stringify!($name), &config, |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                outcome
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::from_name("regex_subset_shapes");
        for _ in 0..200 {
            let s = crate::string::generate_from_regex("[a-z]{3,8}( [a-z]{3,8}){1,3}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((2..=4).contains(&words.len()), "{s:?}");
            for w in words {
                assert!((3..=8).contains(&w.len()), "{s:?}");
                assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
            let t = crate::string::generate_from_regex(".{0,20}", &mut rng);
            assert!(t.chars().count() <= 20);
            let u = crate::string::generate_from_regex("[a-z][a-z0-9]{0,8}", &mut rng);
            assert!(u.chars().next().unwrap().is_ascii_lowercase());
            assert!(u.chars().count() <= 9);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let s = crate::collection::vec(0usize..100, 3..10);
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn hash_set_respects_min_when_domain_allows() {
        let mut rng = TestRng::from_name("hs");
        for _ in 0..100 {
            let s = crate::collection::hash_set(0u32..50, 1..20).generate(&mut rng);
            assert!(!s.is_empty());
            assert!(s.len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            x in 1usize..50,
            v in crate::collection::vec(0u64..10, 0..5),
            opt in crate::option::of(0usize..4),
            s in "[a-z ]{0,16}",
            flag in any::<bool>(),
        ) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert!(v.len() < 5);
            if let Some(o) = opt {
                prop_assert!(o < 4);
            }
            prop_assert!(s.len() <= 16);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(x, 0);
            let _ = Just(7usize).generate(&mut crate::test_runner::TestRng::from_name("j"));
        }
    }
}
