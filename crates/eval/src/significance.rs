//! Paired-bootstrap significance testing.
//!
//! X9 compares systems across a handful of corpus seeds; with samples that
//! small, a mean difference needs a significance estimate before anyone
//! should believe it. The paired bootstrap is the standard IR tool: resample
//! the paired per-seed differences with replacement and count how often the
//! resampled mean contradicts the observed direction.

/// Result of a paired bootstrap comparison of system A vs system B.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapResult {
    /// Observed mean difference (A − B).
    pub mean_diff: f64,
    /// Fraction of bootstrap resamples whose mean difference has the
    /// opposite sign (or zero) — a one-sided p-value estimate.
    pub p_value: f64,
    /// Resamples drawn.
    pub resamples: usize,
}

impl BootstrapResult {
    /// Conventional α = 0.05 call on the one-sided test.
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Runs a paired bootstrap over per-condition paired scores.
///
/// `a` and `b` hold the two systems' scores under identical conditions
/// (same seed/corpus at each index). Deterministic in `seed`.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or `resamples == 0`.
pub fn paired_bootstrap(a: &[f64], b: &[f64], resamples: usize, seed: u64) -> BootstrapResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    assert!(!a.is_empty(), "need at least one pair");
    assert!(resamples > 0, "need at least one resample");

    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    let observed = diffs.iter().sum::<f64>() / n as f64;

    // splitmix64 is plenty for bootstrap index draws and keeps this module
    // dependency-free.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut contradictions = 0usize;
    for _ in 0..resamples {
        let mut total = 0.0;
        for _ in 0..n {
            total += diffs[(next() % n as u64) as usize];
        }
        let resampled = total / n as f64;
        let contradicts = if observed > 0.0 {
            resampled <= 0.0
        } else {
            resampled >= 0.0
        };
        if contradicts {
            contradictions += 1;
        }
    }
    BootstrapResult {
        mean_diff: observed,
        p_value: contradictions as f64 / resamples as f64,
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        let a = [0.9, 0.92, 0.88, 0.91, 0.9, 0.93];
        let b = [0.5, 0.52, 0.48, 0.51, 0.5, 0.49];
        let r = paired_bootstrap(&a, &b, 2000, 1);
        assert!(r.mean_diff > 0.3);
        assert_eq!(r.p_value, 0.0);
        assert!(r.significant());
    }

    #[test]
    fn noise_is_not_significant() {
        let a = [0.5, 0.7, 0.4, 0.6, 0.45, 0.65];
        let b = [0.6, 0.5, 0.55, 0.5, 0.6, 0.52];
        let r = paired_bootstrap(&a, &b, 2000, 2);
        assert!(!r.significant(), "p = {}", r.p_value);
    }

    #[test]
    fn direction_is_symmetric() {
        let a = [0.9, 0.8, 0.85];
        let b = [0.3, 0.2, 0.25];
        let ab = paired_bootstrap(&a, &b, 1000, 3);
        let ba = paired_bootstrap(&b, &a, 1000, 3);
        assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-12);
        assert_eq!(ab.p_value, ba.p_value);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = [0.6, 0.62, 0.58];
        let b = [0.55, 0.6, 0.59];
        let r1 = paired_bootstrap(&a, &b, 500, 7);
        let r2 = paired_bootstrap(&a, &b, 500, 7);
        assert_eq!(r1, r2);
        let r3 = paired_bootstrap(&a, &b, 500, 8);
        let _ = r3; // may or may not differ; just must not panic
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = paired_bootstrap(&[1.0], &[1.0, 2.0], 10, 1);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn empty_input_panics() {
        let _ = paired_bootstrap(&[], &[], 10, 1);
    }
}
