//! The Table I reproduction: simulated user study over three systems.
//!
//! Paper protocol (Section III): for the Travel, Art and Sports domains,
//! take the top-3 bloggers recommended by (a) the general influential-
//! blogger list, (b) Microsoft Live Index and (c) MASS's domain-specific
//! list, have 10 judges score each blogger's applicability to a scenario in
//! that domain from 1 to 5, and report the average. The judges here are the
//! simulated panel of `mass-synth` (see DESIGN.md §2 for the substitution
//! argument).

use crate::table::{f1, TextTable};
use mass_core::baselines::live_index;
use mass_core::{top_k, MassAnalysis, MassParams};
use mass_synth::{GroundTruth, JudgePanel, JudgePanelConfig};
use mass_types::{BloggerId, Dataset, DomainId};

/// Configuration of a user-study run.
#[derive(Clone, Debug)]
pub struct UserStudyConfig {
    /// How many recommended bloggers each judge scores (paper: 3).
    pub k: usize,
    /// The evaluation domains (paper: Travel, Art, Sports).
    pub domains: Vec<DomainId>,
    /// Judge panel behaviour.
    pub panel: JudgePanelConfig,
    /// MASS model parameters.
    pub params: MassParams,
}

impl Default for UserStudyConfig {
    fn default() -> Self {
        UserStudyConfig {
            k: 3,
            // Travel = 0, Art = 8, Sports = 6 in the paper catalogue.
            domains: vec![DomainId::new(0), DomainId::new(8), DomainId::new(6)],
            panel: JudgePanelConfig::default(),
            params: MassParams::paper(),
        }
    }
}

/// The reproduced Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct UserStudyTable {
    /// Domain names, in column order.
    pub domains: Vec<String>,
    /// `(system name, scores per domain)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl UserStudyTable {
    /// Looks up one cell by system and domain name.
    pub fn cell(&self, system: &str, domain: &str) -> Option<f64> {
        let col = self.domains.iter().position(|d| d == domain)?;
        let row = self.rows.iter().find(|(name, _)| name == system)?;
        row.1.get(col).copied()
    }

    /// Mean score of a system across all domains.
    pub fn system_mean(&self, system: &str) -> Option<f64> {
        let row = self.rows.iter().find(|(name, _)| name == system)?;
        Some(row.1.iter().sum::<f64>() / row.1.len() as f64)
    }
}

impl std::fmt::Display for UserStudyTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec!["Average Applicable Scores".to_string()];
        header.extend(self.domains.iter().cloned());
        let mut t = TextTable::new(header);
        for (name, scores) in &self.rows {
            let mut row = vec![name.clone()];
            row.extend(scores.iter().map(|&s| f1(s)));
            t.row(row);
        }
        write!(f, "{t}")
    }
}

/// Runs the study and returns the table. System rows match the paper:
/// "General", "Live Index", "Domain Specific".
pub fn run_user_study(ds: &Dataset, truth: &GroundTruth, cfg: &UserStudyConfig) -> UserStudyTable {
    assert!(cfg.k > 0, "need a positive k");
    let analysis = MassAnalysis::analyze(ds, &cfg.params);
    let panel = JudgePanel::new(truth, cfg.panel);
    let ix = ds.index();

    let general: Vec<BloggerId> = analysis
        .top_k_general(cfg.k)
        .into_iter()
        .map(|(b, _)| b)
        .collect();
    let live: Vec<BloggerId> = top_k(&live_index(ds, &ix), cfg.k)
        .into_iter()
        .map(|(b, _)| b)
        .collect();

    let mut general_row = Vec::new();
    let mut live_row = Vec::new();
    let mut domain_row = Vec::new();
    let mut names = Vec::new();
    for &d in &cfg.domains {
        names.push(ds.domains.name(d).to_string());
        let specific: Vec<BloggerId> = analysis
            .top_k_in_domain(d, cfg.k)
            .into_iter()
            .map(|(b, _)| b)
            .collect();
        general_row.push(panel.score_list(&general, d));
        live_row.push(panel.score_list(&live, d));
        domain_row.push(panel.score_list(&specific, d));
    }

    UserStudyTable {
        domains: names,
        rows: vec![
            ("General".to_string(), general_row),
            ("Live Index".to_string(), live_row),
            ("Domain Specific".to_string(), domain_row),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mass_synth::{generate, SynthConfig};

    fn study() -> UserStudyTable {
        let out = generate(&SynthConfig::default());
        run_user_study(&out.dataset, &out.truth, &UserStudyConfig::default())
    }

    #[test]
    fn table_shape_matches_paper() {
        let t = study();
        assert_eq!(t.domains, vec!["Travel", "Art", "Sports"]);
        let systems: Vec<&str> = t.rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(systems, vec!["General", "Live Index", "Domain Specific"]);
        for (_, row) in &t.rows {
            assert_eq!(row.len(), 3);
            for &s in row {
                assert!((1.0..=5.0).contains(&s), "score {s} off the judge scale");
            }
        }
    }

    #[test]
    fn domain_specific_wins_every_domain() {
        // The paper's headline: Domain Specific (4.3/4.1/4.6) beats General
        // (3.2) and Live Index (3.0–3.3) in all three domains.
        let t = study();
        let mut strict_wins = 0;
        for (col, name) in t.domains.iter().enumerate() {
            let ds_score = t.rows[2].1[col];
            let gen_score = t.rows[0].1[col];
            let li_score = t.rows[1].1[col];
            assert!(
                ds_score >= gen_score,
                "{name}: domain-specific {ds_score} < general {gen_score}"
            );
            assert!(
                ds_score >= li_score,
                "{name}: domain-specific {ds_score} < live index {li_score}"
            );
            if ds_score > gen_score && ds_score > li_score {
                strict_wins += 1;
            }
        }
        // On this small test corpus a single-domain tie is possible (the
        // lists can overlap); the paper-scale margin is asserted by the
        // `user_study_reproduces_table1_shape` integration test.
        assert!(
            strict_wins >= 2,
            "domain-specific strictly won only {strict_wins}/3 domains"
        );
    }

    #[test]
    fn cell_and_mean_lookups() {
        let t = study();
        assert!(t.cell("General", "Travel").is_some());
        assert!(t.cell("Nope", "Travel").is_none());
        assert!(t.cell("General", "Nope").is_none());
        let mean = t.system_mean("Domain Specific").unwrap();
        assert!((1.0..=5.0).contains(&mean));
    }

    #[test]
    fn display_renders_one_decimal() {
        let t = study();
        let s = t.to_string();
        assert!(s.contains("Average Applicable Scores"));
        assert!(s.contains("Domain Specific"));
        // One-decimal cells like "4.2".
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn deterministic() {
        let a = study();
        let b = study();
        assert_eq!(a, b);
    }
}
