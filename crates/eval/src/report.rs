//! Markdown analysis reports — the headless stand-in for the demo's result
//! panels, suitable for checking into a repo or attaching to a ticket.

use crate::table::TextTable;
use mass_core::{MassAnalysis, SolveStatus};
use mass_types::Dataset;

/// Renders a complete markdown report of an analysis: corpus statistics,
/// solver diagnostics, the general top-k and the top-3 per domain.
pub fn analysis_report(ds: &Dataset, analysis: &MassAnalysis, k: usize) -> String {
    let mut out = String::new();
    let ix = ds.index();

    out.push_str("# MASS analysis report\n\n");
    out.push_str(&format!("**Corpus**: {}\n\n", ds.stats()));
    out.push_str(&format!(
        "**Model**: α = {}, β = {}; solver {} in {} sweeps (residual {:.2e})\n\n",
        analysis.params.alpha,
        analysis.params.beta,
        match analysis.scores.status {
            SolveStatus::Converged => "converged",
            SolveStatus::MaxIterations => "DID NOT CONVERGE",
            SolveStatus::Degenerate => "SAW DEGENERATE INPUTS",
        },
        analysis.scores.iterations,
        analysis.scores.residual,
    ));

    out.push_str(&format!(
        "## Top-{k} influential bloggers (general)\n\n```\n"
    ));
    let mut t = TextTable::new(["#", "blogger", "Inf", "AP", "GL", "posts", "comments recv"]);
    for (rank, (b, score)) in analysis.top_k_general(k).iter().enumerate() {
        t.row([
            (rank + 1).to_string(),
            ds.blogger(*b).name.clone(),
            format!("{score:.4}"),
            format!("{:.4}", analysis.scores.ap[b.index()]),
            format!("{:.4}", analysis.scores.gl[b.index()]),
            ix.post_count(*b).to_string(),
            ix.comments_received(*b).to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str("```\n\n");

    out.push_str("## Top-3 per domain\n\n```\n");
    let mut t = TextTable::new(["domain", "top bloggers (Inf(b, C))"]);
    for (d, name) in ds.domains.iter() {
        let tops = analysis.top_k_in_domain(d, 3);
        let cells: Vec<String> = tops
            .iter()
            .map(|(b, s)| format!("{} ({s:.3})", ds.blogger(*b).name))
            .collect();
        t.row([name.to_string(), cells.join(", ")]);
    }
    out.push_str(&t.to_string());
    out.push_str("```\n\n");

    // Facet health: how much signal each facet carries on this corpus.
    let np = ds.posts.len().max(1);
    let commented = analysis.scores.comment.iter().filter(|&&c| c > 0.0).count();
    let copies = analysis.scores.quality.iter().filter(|&&q| q < 0.1).count();
    let gl_active = analysis.scores.gl.iter().filter(|&&g| g > 0.0).count();
    out.push_str("## Facet coverage\n\n");
    out.push_str(&format!(
        "- {commented}/{np} posts carry comment-score signal\n\
         - {copies}/{np} posts flagged as low-novelty (copies)\n\
         - {gl_active}/{} bloggers have non-zero link authority\n",
        ds.bloggers.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mass_core::MassParams;
    use mass_synth::{generate, SynthConfig};

    #[test]
    fn report_contains_all_sections() {
        let out = generate(&SynthConfig::tiny(40));
        let analysis = MassAnalysis::analyze(&out.dataset, &MassParams::paper());
        let report = analysis_report(&out.dataset, &analysis, 5);
        assert!(report.starts_with("# MASS analysis report"));
        for heading in [
            "## Top-5 influential bloggers",
            "## Top-3 per domain",
            "## Facet coverage",
        ] {
            assert!(report.contains(heading), "missing {heading}");
        }
        assert!(report.contains("α = 0.5"));
        assert!(report.contains("Travel"));
        assert!(report.contains("blogger_"));
    }

    #[test]
    fn unconverged_runs_are_flagged() {
        let out = generate(&SynthConfig::tiny(41));
        let params = MassParams {
            epsilon: 1e-300,
            max_iterations: 1,
            ..MassParams::paper()
        };
        let analysis = MassAnalysis::analyze(&out.dataset, &params);
        let report = analysis_report(&out.dataset, &analysis, 3);
        assert!(report.contains("DID NOT CONVERGE"));
    }

    #[test]
    fn report_is_deterministic() {
        let out = generate(&SynthConfig::tiny(42));
        let analysis = MassAnalysis::analyze(&out.dataset, &MassParams::paper());
        assert_eq!(
            analysis_report(&out.dataset, &analysis, 4),
            analysis_report(&out.dataset, &analysis, 4)
        );
    }
}
