//! # mass-eval
//!
//! Evaluation harness for MASS.
//!
//! The paper's evaluation (Section III) is a 10-judge user study producing
//! Table I; [`user_study`] reproduces it with the simulated judge panel from
//! `mass-synth`. Because the synthetic corpus also carries planted ground
//! truth, this crate adds the mechanistic metrics the paper lacked:
//!
//! * [`metrics`] — precision@k, recall@k, NDCG@k, Kendall τ, Spearman ρ,
//! * [`ranking`] — system-vs-truth evaluation over whole corpora,
//! * [`table`] — fixed-width text tables used by every bench binary.

pub mod metrics;
pub mod ranking;
pub mod report;
pub mod significance;
pub mod table;
pub mod user_study;

pub use ranking::{evaluate_domain_system, evaluate_general_system, RankingQuality};
pub use report::analysis_report;
pub use significance::{paired_bootstrap, BootstrapResult};
pub use table::TextTable;
pub use user_study::{run_user_study, UserStudyConfig, UserStudyTable};
