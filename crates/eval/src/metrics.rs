//! Ranking-quality metrics.

use std::collections::HashSet;

/// Precision@k: fraction of the first `k` ranked items that are relevant.
/// Returns 0 when `k == 0` or the ranking is empty.
pub fn precision_at_k<T: Eq + std::hash::Hash>(
    ranked: &[T],
    relevant: &HashSet<T>,
    k: usize,
) -> f64 {
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked[..k].iter().filter(|x| relevant.contains(x)).count();
    hits as f64 / k as f64
}

/// Recall@k: fraction of relevant items found in the first `k`. Duplicate
/// entries in the ranking count once (a ranking with repeats cannot exceed
/// recall 1).
pub fn recall_at_k<T: Eq + std::hash::Hash>(ranked: &[T], relevant: &HashSet<T>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let k = k.min(ranked.len());
    let hits: HashSet<&T> = ranked[..k]
        .iter()
        .filter(|x| relevant.contains(x))
        .collect();
    hits.len() as f64 / relevant.len() as f64
}

/// NDCG@k with graded gains: `gain(i)` is the true relevance of ranked item
/// `i`; the ideal ordering is the gains sorted descending.
pub fn ndcg_at_k(gains_in_ranked_order: &[f64], k: usize) -> f64 {
    let k = k.min(gains_in_ranked_order.len());
    if k == 0 {
        return 0.0;
    }
    let dcg: f64 = gains_in_ranked_order[..k]
        .iter()
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum();
    let mut ideal: Vec<f64> = gains_in_ranked_order.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).expect("gains are finite"));
    let idcg: f64 = ideal[..k]
        .iter()
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Kendall rank correlation τ between two score vectors over the same items
/// (O(n²), fine at blogosphere scale). Returns 0 for fewer than 2 items.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = (da * db).signum();
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Spearman rank correlation ρ between two score vectors (average ranks for
/// ties). Returns 0 for fewer than 2 items or when either vector is
/// constant.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).expect("finite"));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basics() {
        let relevant: HashSet<u32> = [1, 2, 3].into();
        assert_eq!(precision_at_k(&[1, 9, 2, 8], &relevant, 4), 0.5);
        assert_eq!(precision_at_k(&[1, 2], &relevant, 2), 1.0);
        assert_eq!(precision_at_k(&[9, 8], &relevant, 2), 0.0);
        assert_eq!(
            precision_at_k(&[1], &relevant, 10),
            1.0,
            "k clamps to length"
        );
        assert_eq!(precision_at_k::<u32>(&[], &relevant, 3), 0.0);
        assert_eq!(precision_at_k(&[1], &relevant, 0), 0.0);
    }

    #[test]
    fn recall_basics() {
        let relevant: HashSet<u32> = [1, 2, 3, 4].into();
        assert_eq!(recall_at_k(&[1, 2, 9], &relevant, 3), 0.5);
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &relevant, 4), 1.0);
        assert_eq!(recall_at_k(&[1], &HashSet::<u32>::new(), 1), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        assert!((ndcg_at_k(&[3.0, 2.0, 1.0], 3) - 1.0).abs() < 1e-12);
        assert!((ndcg_at_k(&[5.0], 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalises_inversions() {
        let perfect = ndcg_at_k(&[3.0, 2.0, 1.0], 3);
        let swapped = ndcg_at_k(&[1.0, 2.0, 3.0], 3);
        assert!(swapped < perfect);
        assert!(swapped > 0.0);
    }

    #[test]
    fn ndcg_degenerate_cases() {
        assert_eq!(ndcg_at_k(&[], 3), 0.0);
        assert_eq!(ndcg_at_k(&[0.0, 0.0], 2), 0.0);
        assert_eq!(ndcg_at_k(&[1.0], 0), 0.0);
    }

    #[test]
    fn kendall_perfect_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn kendall_ties_shrink_magnitude() {
        let a = [1.0, 2.0, 3.0];
        let tied = [1.0, 1.0, 2.0];
        let tau = kendall_tau(&a, &tied);
        assert!(tau > 0.0 && tau < 1.0);
    }

    #[test]
    fn spearman_perfect_monotone() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 400.0]; // monotone, nonlinear
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&a, &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_vector_is_zero() {
        assert_eq!(spearman_rho(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_handles_ties_with_average_ranks() {
        let rho = spearman_rho(&[1.0, 1.0, 2.0], &[1.0, 1.0, 2.0]);
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = kendall_tau(&[1.0], &[1.0, 2.0]);
    }
}
