//! Fixed-width text tables for benchmark output.
//!
//! Every table/figure harness binary prints through this, so EXPERIMENTS.md
//! excerpts are uniform and diffable.

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (the paper's Table I precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal (Table I itself uses one decimal).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["System", "Travel", "Art"]);
        t.row(["General", "3.2", "3.2"]);
        t.row(["Domain Specific", "4.3", "4.1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("System"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("Domain Specific"));
        // Columns align: "Travel" starts at the same offset in all rows.
        let off = lines[0].find("Travel").unwrap();
        assert_eq!(&lines[2][off..off + 3], "3.2");
    }

    #[test]
    fn tracks_length() {
        let mut t = TextTable::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f1(4.25), "4.2");
        assert_eq!(f1(3.0), "3.0");
        assert_eq!(f2(0.12345), "0.12");
    }
}
