//! Mechanistic ranking evaluation against planted ground truth.

use crate::metrics::{kendall_tau, ndcg_at_k, precision_at_k, spearman_rho};
use mass_core::top_k;
use mass_synth::GroundTruth;
use mass_types::{BloggerId, DomainId};
use std::collections::HashSet;

/// Quality of one system's ranking against the planted truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankingQuality {
    /// Precision@k against the true top-k set.
    pub precision: f64,
    /// NDCG@k with the true scores as gains.
    pub ndcg: f64,
    /// Spearman ρ between system scores and true scores (all bloggers).
    pub spearman: f64,
    /// Kendall τ between system scores and true scores (all bloggers).
    pub kendall: f64,
    /// The `k` used.
    pub k: usize,
}

/// Evaluates a general (domain-agnostic) blogger ranking.
pub fn evaluate_general_system(scores: &[f64], truth: &GroundTruth, k: usize) -> RankingQuality {
    let true_scores: Vec<f64> = (0..truth.len())
        .map(|i| truth.true_general_score(BloggerId::new(i)))
        .collect();
    evaluate_against(scores, &true_scores, truth.top_k_general(k), k)
}

/// Evaluates a domain-specific ranking (one column of a domain matrix or
/// any per-blogger score vector meant for `domain`).
pub fn evaluate_domain_system(
    scores: &[f64],
    truth: &GroundTruth,
    domain: DomainId,
    k: usize,
) -> RankingQuality {
    let true_scores: Vec<f64> = (0..truth.len())
        .map(|i| truth.true_score(BloggerId::new(i), domain))
        .collect();
    evaluate_against(scores, &true_scores, truth.top_k(domain, k), k)
}

fn evaluate_against(
    scores: &[f64],
    true_scores: &[f64],
    true_top: Vec<BloggerId>,
    k: usize,
) -> RankingQuality {
    assert_eq!(
        scores.len(),
        true_scores.len(),
        "score vector must cover every blogger"
    );
    let ranked: Vec<BloggerId> = top_k(scores, scores.len())
        .into_iter()
        .map(|(b, _)| b)
        .collect();
    let relevant: HashSet<BloggerId> = true_top.into_iter().collect();
    let gains: Vec<f64> = ranked.iter().map(|b| true_scores[b.index()]).collect();
    RankingQuality {
        precision: precision_at_k(&ranked, &relevant, k),
        ndcg: ndcg_at_k(&gains, k),
        spearman: spearman_rho(scores, true_scores),
        kendall: kendall_tau(scores, true_scores),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mass_types::DomainId;

    fn truth() -> GroundTruth {
        GroundTruth {
            authority: vec![0.1, 1.0, 0.5, 0.2],
            primary_domain: vec![DomainId::new(0); 4],
            domain_relevance: vec![
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.5, 0.5],
            ],
            fading: vec![],
            rising: vec![],
        }
    }

    #[test]
    fn perfect_general_ranking_scores_one() {
        let t = truth();
        let q = evaluate_general_system(&[0.1, 1.0, 0.5, 0.2], &t, 2);
        assert_eq!(q.precision, 1.0);
        assert!((q.ndcg - 1.0).abs() < 1e-12);
        assert!((q.spearman - 1.0).abs() < 1e-12);
        assert_eq!(q.kendall, 1.0);
    }

    #[test]
    fn reversed_ranking_scores_poorly() {
        let t = truth();
        let q = evaluate_general_system(&[1.0, 0.1, 0.2, 0.5], &t, 2);
        assert!(q.precision < 1.0);
        assert!(q.spearman < 0.0);
    }

    #[test]
    fn domain_evaluation_uses_domain_truth() {
        let t = truth();
        // Domain 1 truth: b1 = 1.0, b3 = 0.1, others 0.
        let good = evaluate_domain_system(&[0.0, 0.9, 0.0, 0.3], &t, DomainId::new(1), 2);
        assert_eq!(good.precision, 1.0);
        let bad = evaluate_domain_system(&[0.9, 0.0, 0.8, 0.0], &t, DomainId::new(1), 2);
        assert!(bad.precision <= 0.5, "{bad:?}");
    }

    #[test]
    #[should_panic(expected = "every blogger")]
    fn wrong_length_panics() {
        let t = truth();
        let _ = evaluate_general_system(&[1.0], &t, 1);
    }
}
