//! Property-based tests for the ranking metrics.

use mass_eval::metrics::{kendall_tau, ndcg_at_k, precision_at_k, recall_at_k, spearman_rho};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn precision_and_recall_are_bounded(
        ranked in proptest::collection::vec(0u32..50, 0..30),
        relevant in proptest::collection::hash_set(0u32..50, 0..20),
        k in 0usize..40,
    ) {
        let p = precision_at_k(&ranked, &relevant, k);
        let r = recall_at_k(&ranked, &relevant, k);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn recall_is_monotone_in_k(
        ranked in proptest::collection::vec(0u32..50, 0..30),
        relevant in proptest::collection::hash_set(0u32..50, 1..20),
    ) {
        let mut last = 0.0;
        for k in 0..ranked.len() + 2 {
            let r = recall_at_k(&ranked, &relevant, k);
            prop_assert!(r >= last - 1e-12);
            last = r;
        }
    }

    #[test]
    fn full_precision_when_everything_relevant(
        ranked in proptest::collection::vec(0u32..20, 1..20),
        k in 1usize..20,
    ) {
        let relevant: HashSet<u32> = (0..20).collect();
        prop_assert_eq!(precision_at_k(&ranked, &relevant, k), 1.0);
    }

    #[test]
    fn ndcg_bounded_and_maximal_for_sorted_gains(
        gains in proptest::collection::vec(0.0f64..10.0, 1..20),
        k in 1usize..25,
    ) {
        let n = ndcg_at_k(&gains, k);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&n), "ndcg {n}");
        let mut sorted = gains.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let ideal = ndcg_at_k(&sorted, k);
        prop_assert!(ideal >= n - 1e-9, "ideal {ideal} < actual {n}");
        if sorted.iter().any(|&g| g > 0.0) {
            prop_assert!((ideal - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn correlations_are_bounded_and_reflexive(
        a in proptest::collection::vec(-100.0f64..100.0, 2..25),
    ) {
        let tau = kendall_tau(&a, &a);
        let rho = spearman_rho(&a, &a);
        prop_assert!(tau >= 0.0, "self-tau {tau}"); // ties may shrink below 1
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&tau));
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&rho));
        // With no ties, self-correlation is exactly 1.
        let mut dedup = a.clone();
        dedup.sort_by(|x, y| x.partial_cmp(y).unwrap());
        dedup.dedup();
        if dedup.len() == a.len() {
            prop_assert_eq!(tau, 1.0);
            prop_assert!((rho - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn correlations_are_antisymmetric_under_negation(
        a in proptest::collection::vec(-100.0f64..100.0, 2..25),
        b in proptest::collection::vec(-100.0f64..100.0, 2..25),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let neg_b: Vec<f64> = b.iter().map(|x| -x).collect();
        let tau = kendall_tau(a, b);
        let tau_neg = kendall_tau(a, &neg_b);
        prop_assert!((tau + tau_neg).abs() < 1e-9, "tau {tau} vs {tau_neg}");
        let rho = spearman_rho(a, b);
        let rho_neg = spearman_rho(a, &neg_b);
        prop_assert!((rho + rho_neg).abs() < 1e-9, "rho {rho} vs {rho_neg}");
    }

    #[test]
    fn correlations_are_symmetric(
        pair in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..25),
    ) {
        let a: Vec<f64> = pair.iter().map(|(x, _)| *x).collect();
        let b: Vec<f64> = pair.iter().map(|(_, y)| *y).collect();
        prop_assert!((kendall_tau(&a, &b) - kendall_tau(&b, &a)).abs() < 1e-12);
        prop_assert!((spearman_rho(&a, &b) - spearman_rho(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(
        a in proptest::collection::vec(0.001f64..100.0, 2..20),
        b in proptest::collection::vec(0.001f64..100.0, 2..20),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let rho = spearman_rho(a, b);
        let squared: Vec<f64> = b.iter().map(|x| x * x).collect(); // strictly monotone on (0,∞)
        let rho_sq = spearman_rho(a, &squared);
        prop_assert!((rho - rho_sq).abs() < 1e-9, "{rho} vs {rho_sq}");
    }
}
