//! Simulated user-study judges (the Table I substitution).
//!
//! The paper ran a user study: 10 graduate-student bloggers scored the top-3
//! bloggers recommended by each system from 1 to 5 for an application
//! scenario ("Suppose you are the sales manager in Nike, which blogger will
//! you choose to send advertisement to?"). That construct — *applicability
//! of the blogger to the scenario's domain* — is exactly the planted truth
//! `authority × domain_relevance`, so the panel here scores a recommended
//! blogger by mapping that quantity onto the 1–5 scale with per-judge noise
//! and rounding, reproducing the study mechanistically.

use crate::truth::GroundTruth;
use mass_types::{BloggerId, DomainId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Panel configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JudgePanelConfig {
    /// Number of judges (the paper used 10).
    pub judges: usize,
    /// Standard deviation of per-judge noise on the 1–5 scale.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JudgePanelConfig {
    fn default() -> Self {
        JudgePanelConfig {
            judges: 10,
            noise: 0.5,
            seed: 1234,
        }
    }
}

/// A panel of simulated judges over a planted ground truth.
#[derive(Clone, Debug)]
pub struct JudgePanel<'a> {
    truth: &'a GroundTruth,
    config: JudgePanelConfig,
    /// Per-domain "deserves a 5" anchor: the best true score achievable in
    /// that domain. Calibrating per domain keeps the 1–5 scale meaningful
    /// at any corpus size (a corpus-wide anchor saturates once thousands of
    /// bloggers exist).
    anchors: Vec<f64>,
}

impl<'a> JudgePanel<'a> {
    /// Builds a panel calibrated against `truth`.
    ///
    /// # Panics
    /// Panics if the truth table is empty or `judges == 0`.
    pub fn new(truth: &'a GroundTruth, config: JudgePanelConfig) -> Self {
        assert!(config.judges > 0, "need at least one judge");
        assert!(!truth.is_empty(), "cannot judge an empty blogosphere");
        let domains = truth.domain_relevance[0].len();
        let anchors: Vec<f64> = (0..domains)
            .map(|d| {
                (0..truth.len())
                    .map(|b| truth.true_score(BloggerId::new(b), DomainId::new(d)))
                    .fold(f64::MIN_POSITIVE, f64::max)
            })
            .collect();
        JudgePanel {
            truth,
            config,
            anchors,
        }
    }

    /// Mean 1–5 applicability score the panel gives `blogger` for a
    /// `domain`-focused scenario.
    pub fn score(&self, blogger: BloggerId, domain: DomainId) -> f64 {
        let quality =
            (self.truth.true_score(blogger, domain) / self.anchors[domain.index()]).min(1.0);
        let ideal = 1.0 + 4.0 * quality.sqrt(); // sqrt: judges reward partial relevance
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(blogger.index() as u64)
                .wrapping_add((domain.index() as u64) << 32),
        );
        let mut total = 0.0;
        for _ in 0..self.config.judges {
            // Box–Muller normal noise.
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let judged = (ideal + self.config.noise * z).round().clamp(1.0, 5.0);
            total += judged;
        }
        total / self.config.judges as f64
    }

    /// Mean panel score over a recommended top-k list — the quantity each
    /// cell of Table I reports.
    pub fn score_list(&self, bloggers: &[BloggerId], domain: DomainId) -> f64 {
        if bloggers.is_empty() {
            return 0.0;
        }
        bloggers.iter().map(|&b| self.score(b, domain)).sum::<f64>() / bloggers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        // 20 bloggers; blogger 0 is the star of domain 0, blogger 1 of
        // domain 1, the rest are weak.
        let n = 20;
        let mut authority = vec![0.05; n];
        authority[0] = 1.0;
        authority[1] = 0.9;
        let mut relevance = vec![vec![0.5, 0.5]; n];
        relevance[0] = vec![0.95, 0.05];
        relevance[1] = vec![0.05, 0.95];
        GroundTruth {
            authority,
            primary_domain: (0..n).map(|i| DomainId::new(i % 2)).collect(),
            domain_relevance: relevance,
            fading: vec![],
            rising: vec![],
        }
    }

    #[test]
    fn relevant_star_outscores_weak_blogger() {
        let t = truth();
        let panel = JudgePanel::new(&t, JudgePanelConfig::default());
        let star = panel.score(BloggerId::new(0), DomainId::new(0));
        let weak = panel.score(BloggerId::new(5), DomainId::new(0));
        assert!(star > 4.0, "star scored {star}");
        assert!(weak < star - 1.0, "weak {weak} vs star {star}");
    }

    #[test]
    fn off_domain_star_scores_lower() {
        let t = truth();
        let panel = JudgePanel::new(&t, JudgePanelConfig::default());
        let on = panel.score(BloggerId::new(0), DomainId::new(0));
        let off = panel.score(BloggerId::new(0), DomainId::new(1));
        assert!(on > off + 1.0, "on {on} off {off}");
    }

    #[test]
    fn scores_stay_on_the_1_to_5_scale() {
        let t = truth();
        let panel = JudgePanel::new(
            &t,
            JudgePanelConfig {
                noise: 3.0,
                ..Default::default()
            },
        );
        for b in 0..t.len() {
            for d in 0..2 {
                let s = panel.score(BloggerId::new(b), DomainId::new(d));
                assert!((1.0..=5.0).contains(&s), "score {s}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = truth();
        let p1 = JudgePanel::new(&t, JudgePanelConfig::default());
        let p2 = JudgePanel::new(&t, JudgePanelConfig::default());
        assert_eq!(
            p1.score(BloggerId::new(3), DomainId::new(0)),
            p2.score(BloggerId::new(3), DomainId::new(0))
        );
    }

    #[test]
    fn list_score_averages() {
        let t = truth();
        let panel = JudgePanel::new(&t, JudgePanelConfig::default());
        let d = DomainId::new(0);
        let list = [BloggerId::new(0), BloggerId::new(1), BloggerId::new(2)];
        let mean = panel.score_list(&list, d);
        let manual: f64 = list.iter().map(|&b| panel.score(b, d)).sum::<f64>() / 3.0;
        assert!((mean - manual).abs() < 1e-12);
        assert_eq!(panel.score_list(&[], d), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one judge")]
    fn zero_judges_rejected() {
        let t = truth();
        let _ = JudgePanel::new(
            &t,
            JudgePanelConfig {
                judges: 0,
                ..Default::default()
            },
        );
    }
}
