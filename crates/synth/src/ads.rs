//! Advertisement and profile text generators (Scenario 1 and 2 inputs).
//!
//! Fig. 3 of the paper shows a business partner either pasting an
//! advertisement text or picking a domain from a dropdown. These helpers
//! produce realistic advertisement copy for a target domain (for the first
//! option) and user-profile blurbs (for Scenario 2), built from the same
//! domain vocabularies the post generator uses — so the interest miner must
//! genuinely classify them, not string-match.

use crate::vocab::DOMAIN_VOCAB;
use mass_types::DomainId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ad-copy skeletons; `{w…}` slots are filled with domain words.
const AD_TEMPLATES: &[&str] = &[
    "Introducing our new {w0} line: perfect for {w1} and {w2} lovers. Visit our {w3} store today",
    "Limited offer on premium {w0} gear, designed for serious {w1} fans with {w2} quality",
    "Your one stop shop for {w0}: {w1}, {w2} and {w3} at unbeatable prices",
    "Experience the future of {w0} with our award winning {w1} and {w2} products",
];

/// Profile skeletons for Scenario 2.
const PROFILE_TEMPLATES: &[&str] = &[
    "Hi, I am passionate about {w0} and {w1}; on weekends I enjoy {w2}",
    "Long time {w0} enthusiast, especially {w1} and {w2}",
    "My blog covers {w0} topics like {w1}, sometimes {w2} too",
];

/// Generates advertisement text targeted at `domain` (e.g. a Nike-style ad
/// for *Sports*). Deterministic in `seed`.
pub fn advertisement_text(domain: DomainId, seed: u64) -> String {
    fill(AD_TEMPLATES, domain, seed)
}

/// Generates a new user's profile blurb interested in `domain`.
pub fn profile_text(domain: DomainId, seed: u64) -> String {
    fill(PROFILE_TEMPLATES, domain, seed)
}

fn fill(templates: &[&str], domain: DomainId, seed: u64) -> String {
    let vocab = DOMAIN_VOCAB[domain.index()];
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(domain.index() as u64 * 7919));
    let mut out = templates[rng.random_range(0..templates.len())].to_string();
    for needle in (0..4).map(|slot| format!("{{w{slot}}}")) {
        if out.contains(&needle) {
            let word = vocab[rng.random_range(0..vocab.len())];
            out = out.replace(&needle, word);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mass_types::PAPER_DOMAINS;

    #[test]
    fn ads_contain_domain_vocabulary() {
        for (d, vocab) in DOMAIN_VOCAB.iter().enumerate().take(PAPER_DOMAINS.len()) {
            let ad = advertisement_text(DomainId::new(d), 1);
            let hits = vocab.iter().filter(|w| ad.contains(*w)).count();
            assert!(hits >= 2, "domain {d} ad lacks vocabulary: {ad}");
        }
    }

    #[test]
    fn no_unfilled_slots() {
        for seed in 0..20 {
            let ad = advertisement_text(DomainId::new(6), seed);
            assert!(!ad.contains("{w"), "unfilled slot in: {ad}");
            let p = profile_text(DomainId::new(0), seed);
            assert!(!p.contains("{w"), "unfilled slot in: {p}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = advertisement_text(DomainId::new(6), 5);
        let b = advertisement_text(DomainId::new(6), 5);
        assert_eq!(a, b);
        let mut differs = false;
        for s in 0..10 {
            if advertisement_text(DomainId::new(6), s) != a {
                differs = true;
            }
        }
        assert!(differs, "ads never vary with seed");
    }

    #[test]
    fn profiles_mention_domain() {
        let p = profile_text(DomainId::new(7), 3);
        let hits = DOMAIN_VOCAB[7].iter().filter(|w| p.contains(*w)).count();
        assert!(hits >= 2, "{p}");
    }
}
