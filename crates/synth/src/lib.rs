//! # mass-synth
//!
//! Synthetic blogosphere generator with planted ground truth.
//!
//! The paper evaluated MASS on ~3 000 crawled MSN Spaces with ~40 000 posts
//! (Section III). MSN Spaces shut down in 2011, so this crate generates a
//! statistically comparable corpus instead — and, unlike a crawl, it *plants*
//! ground truth, which lets the evaluation harness measure ranking quality
//! mechanistically rather than by a 10-person user study.
//!
//! The generative model (documented in DESIGN.md §2):
//!
//! * every blogger has an **authority** drawn from a Zipf-like law and a
//!   **domain affinity** vector peaked on a primary domain;
//! * post counts, post length, friend links received, comments received and
//!   comment positivity all correlate with authority — the same construct
//!   the paper's model tries to recover from observable signals;
//! * post text is a mixture of the author's domain vocabulary and general
//!   filler, so the naive-Bayes Post Analyzer has a real job to do;
//! * a configurable fraction of posts are **copies** (marker words and/or
//!   verbatim reproduction) to exercise the novelty facet;
//! * comment texts carry their sentiment lexically ("I agree…", "this is
//!   wrong…"), so the Comment Analyzer path is exercised end-to-end.
//!
//! ```
//! use mass_synth::{SynthConfig, generate};
//!
//! let cfg = SynthConfig { bloggers: 50, mean_posts_per_blogger: 3.0, seed: 7, ..Default::default() };
//! let out = generate(&cfg);
//! assert_eq!(out.dataset.bloggers.len(), 50);
//! assert!(out.dataset.posts.len() > 50);
//! out.dataset.validate().unwrap();
//! ```

pub mod ads;
pub mod config;
pub mod generator;
pub mod ingest;
pub mod oracle;
pub mod sampling;
pub mod spec;
pub mod stream;
pub mod truth;
pub mod vocab;

pub use ads::{advertisement_text, profile_text};
pub use config::SynthConfig;
pub use generator::{generate, SynthOutput};
pub use ingest::{
    ingest_sharded, ingest_sharded_spilled, IngestOptions, IngestStats, SpilledStreamIngest,
    StreamIngest,
};
pub use oracle::{JudgePanel, JudgePanelConfig};
pub use spec::{ConfigError, CorpusSpec};
pub use stream::{
    shard_ranges, BloggerRecord, CorpusStream, Permutation, PostContent, PostRecord, PostRef,
    StreamOutput,
};
pub use truth::GroundTruth;
