//! Planted ground truth for synthetic corpora.

use mass_types::{BloggerId, DomainId};

/// What the generator planted: the latent quantities every observable signal
/// (post counts, comments, links, sentiment) was derived from.
///
/// The *true* domain-specific influence of blogger `b` in domain `d` is
/// `authority[b] × domain_relevance[b][d]`; the evaluation harness scores
/// rankings against this quantity.
#[derive(Clone, Debug, PartialEq)]
pub struct GroundTruth {
    /// Latent authority per blogger, positive, Zipf-distributed.
    pub authority: Vec<f64>,
    /// Each blogger's main interest domain.
    pub primary_domain: Vec<DomainId>,
    /// `domain_relevance[b][d]` ∈ [0, 1]: how much of `b`'s activity falls
    /// in domain `d`. Rows sum to 1.
    pub domain_relevance: Vec<Vec<f64>>,
    /// Planted *fading* influencers: top-authority bloggers whose activity
    /// was stamped into the earliest fifth of the time span, so decayed
    /// rankings should demote them. Empty for timeless corpora.
    pub fading: Vec<BloggerId>,
    /// Planted *rising* influencers: strong bloggers whose activity was
    /// stamped into the last fifth of the span — the rising-star detector's
    /// targets. Empty for timeless corpora.
    pub rising: Vec<BloggerId>,
}

impl GroundTruth {
    /// True influence of blogger `b` in domain `d`.
    pub fn true_score(&self, b: BloggerId, d: DomainId) -> f64 {
        self.authority[b.index()] * self.domain_relevance[b.index()][d.index()]
    }

    /// True general (domain-agnostic) influence of blogger `b`.
    pub fn true_general_score(&self, b: BloggerId) -> f64 {
        self.authority[b.index()]
    }

    /// Number of bloggers covered.
    pub fn len(&self) -> usize {
        self.authority.len()
    }

    /// Whether the truth table is empty.
    pub fn is_empty(&self) -> bool {
        self.authority.is_empty()
    }

    /// The true top-k bloggers of a domain, best first.
    pub fn top_k(&self, d: DomainId, k: usize) -> Vec<BloggerId> {
        let mut ids: Vec<BloggerId> = (0..self.len()).map(BloggerId::new).collect();
        ids.sort_by(|&a, &b| {
            self.true_score(b, d)
                .partial_cmp(&self.true_score(a, d))
                .expect("scores are finite")
        });
        ids.truncate(k);
        ids
    }

    /// The true top-k bloggers overall, best first.
    pub fn top_k_general(&self, k: usize) -> Vec<BloggerId> {
        let mut ids: Vec<BloggerId> = (0..self.len()).map(BloggerId::new).collect();
        ids.sort_by(|&a, &b| {
            self.authority[b.index()]
                .partial_cmp(&self.authority[a.index()])
                .expect("scores are finite")
        });
        ids.truncate(k);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> GroundTruth {
        GroundTruth {
            authority: vec![1.0, 5.0, 3.0],
            primary_domain: vec![DomainId::new(0), DomainId::new(1), DomainId::new(0)],
            domain_relevance: vec![vec![0.9, 0.1], vec![0.2, 0.8], vec![0.7, 0.3]],
            fading: vec![],
            rising: vec![],
        }
    }

    #[test]
    fn true_scores_multiply() {
        let t = toy();
        assert!((t.true_score(BloggerId::new(1), DomainId::new(1)) - 4.0).abs() < 1e-12);
        assert_eq!(t.true_general_score(BloggerId::new(2)), 3.0);
    }

    #[test]
    fn top_k_orders_by_domain_score() {
        let t = toy();
        // domain 0 scores: b0=0.9, b1=1.0, b2=2.1
        assert_eq!(
            t.top_k(DomainId::new(0), 2),
            vec![BloggerId::new(2), BloggerId::new(1)]
        );
        // domain 1 scores: b0=0.1, b1=4.0, b2=0.9
        assert_eq!(t.top_k(DomainId::new(1), 3)[0], BloggerId::new(1));
    }

    #[test]
    fn top_k_general_orders_by_authority() {
        let t = toy();
        assert_eq!(
            t.top_k_general(3),
            vec![BloggerId::new(1), BloggerId::new(2), BloggerId::new(0)]
        );
        assert_eq!(t.top_k_general(1).len(), 1);
        assert_eq!(t.top_k_general(99).len(), 3);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(toy().len(), 3);
        assert!(!toy().is_empty());
        let empty = GroundTruth {
            authority: vec![],
            primary_domain: vec![],
            domain_relevance: vec![],
            fading: vec![],
            rising: vec![],
        };
        assert!(empty.is_empty());
        assert!(empty.top_k(DomainId::new(0), 5).is_empty());
    }
}
