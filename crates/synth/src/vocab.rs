//! Per-domain vocabularies and text templates.
//!
//! Word lists are aligned with the paper's ten predefined domains
//! ([`mass_types::PAPER_DOMAINS`]); `DOMAIN_VOCAB[i]` is the vocabulary of
//! domain `i` in catalogue order. The lists are disjoint enough that a
//! naive-Bayes classifier can learn them, but posts mix in [`GENERAL_WORDS`]
//! so classification is not trivial.

/// Vocabulary per paper domain, indexed like `PAPER_DOMAINS`.
pub const DOMAIN_VOCAB: [&[&str]; 10] = [
    // Travel
    &[
        "travel",
        "hotel",
        "flight",
        "beach",
        "vacation",
        "resort",
        "passport",
        "airport",
        "tour",
        "luggage",
        "itinerary",
        "destination",
        "island",
        "cruise",
        "backpack",
        "hostel",
        "visa",
        "sightseeing",
        "souvenir",
        "journey",
        "mountain",
        "temple",
        "museum",
        "roadtrip",
        "camping",
    ],
    // Computer
    &[
        "computer",
        "software",
        "programming",
        "code",
        "compiler",
        "algorithm",
        "database",
        "keyboard",
        "laptop",
        "server",
        "linux",
        "windows",
        "debug",
        "network",
        "internet",
        "browser",
        "hardware",
        "processor",
        "memory",
        "opensource",
        "developer",
        "python",
        "java",
        "rust",
        "framework",
    ],
    // Communication
    &[
        "communication",
        "phone",
        "mobile",
        "messenger",
        "email",
        "chat",
        "telecom",
        "wireless",
        "broadband",
        "signal",
        "carrier",
        "sms",
        "voip",
        "antenna",
        "satellite",
        "bandwidth",
        "roaming",
        "handset",
        "dialup",
        "modem",
        "conference",
        "voicemail",
        "bluetooth",
        "nokia",
        "operator",
    ],
    // Education
    &[
        "education",
        "school",
        "teacher",
        "student",
        "classroom",
        "homework",
        "exam",
        "university",
        "college",
        "curriculum",
        "lecture",
        "tuition",
        "scholarship",
        "degree",
        "kindergarten",
        "textbook",
        "professor",
        "campus",
        "semester",
        "graduate",
        "tutoring",
        "literacy",
        "learning",
        "diploma",
        "thesis",
    ],
    // Economics
    &[
        "economics",
        "economy",
        "market",
        "stock",
        "inflation",
        "recession",
        "investment",
        "finance",
        "bank",
        "interest",
        "trade",
        "currency",
        "gdp",
        "unemployment",
        "budget",
        "tax",
        "mortgage",
        "depression",
        "bond",
        "dividend",
        "portfolio",
        "credit",
        "deficit",
        "exchange",
        "monetary",
    ],
    // Military
    &[
        "military",
        "army",
        "navy",
        "soldier",
        "weapon",
        "defense",
        "missile",
        "tank",
        "aircraft",
        "battalion",
        "strategy",
        "war",
        "veteran",
        "submarine",
        "radar",
        "infantry",
        "artillery",
        "commander",
        "fortress",
        "ammunition",
        "brigade",
        "airforce",
        "frigate",
        "recon",
        "deployment",
    ],
    // Sports
    &[
        "sports",
        "football",
        "basketball",
        "match",
        "team",
        "league",
        "goal",
        "score",
        "tournament",
        "athlete",
        "coach",
        "stadium",
        "championship",
        "olympics",
        "tennis",
        "marathon",
        "fitness",
        "training",
        "soccer",
        "baseball",
        "referee",
        "medal",
        "sprint",
        "volleyball",
        "swimming",
    ],
    // Medicine
    &[
        "medicine",
        "doctor",
        "hospital",
        "patient",
        "surgery",
        "vaccine",
        "diagnosis",
        "therapy",
        "pharmacy",
        "nurse",
        "clinic",
        "symptom",
        "treatment",
        "prescription",
        "cardiology",
        "immunity",
        "virus",
        "antibiotic",
        "wellness",
        "nutrition",
        "anatomy",
        "oncology",
        "pediatric",
        "dosage",
        "recovery",
    ],
    // Art
    &[
        "art",
        "painting",
        "gallery",
        "sculpture",
        "artist",
        "canvas",
        "exhibition",
        "portrait",
        "museum",
        "sketch",
        "watercolor",
        "photography",
        "design",
        "poetry",
        "novel",
        "theater",
        "opera",
        "ballet",
        "melody",
        "symphony",
        "palette",
        "calligraphy",
        "ceramics",
        "mural",
        "aesthetic",
    ],
    // Politics
    &[
        "politics",
        "election",
        "government",
        "policy",
        "senator",
        "parliament",
        "campaign",
        "vote",
        "democracy",
        "legislation",
        "congress",
        "diplomat",
        "candidate",
        "reform",
        "constitution",
        "ballot",
        "coalition",
        "referendum",
        "minister",
        "embassy",
        "governance",
        "lobbying",
        "treaty",
        "summit",
        "debate",
    ],
];

/// Domain-neutral filler mixed into every post.
pub const GENERAL_WORDS: &[&str] = &[
    "today",
    "yesterday",
    "week",
    "friend",
    "people",
    "life",
    "time",
    "thing",
    "world",
    "story",
    "share",
    "write",
    "read",
    "blog",
    "post",
    "think",
    "feel",
    "idea",
    "home",
    "work",
    "morning",
    "night",
    "photo",
    "update",
    "news",
];

/// Positive comment templates (`{}` is replaced with a domain word), used
/// so the Comment Analyzer sees realistic lexical sentiment.
pub const POSITIVE_COMMENT_TEMPLATES: &[&str] = &[
    "I agree with your take on {}",
    "great post, I support this view on {}",
    "excellent analysis of {}, thanks",
    "love this, very helpful thoughts about {}",
    "brilliant point about {}, I conform to it",
];

/// Negative comment templates.
pub const NEGATIVE_COMMENT_TEMPLATES: &[&str] = &[
    "I disagree about {}, this seems wrong",
    "poor reasoning on {}, disappointed",
    "this take on {} is misleading and incorrect",
    "terrible advice about {}",
    "I object, the claim about {} is nonsense",
];

/// Neutral comment templates.
pub const NEUTRAL_COMMENT_TEMPLATES: &[&str] = &[
    "what about {} in other regions",
    "does this apply to {} generally",
    "I wrote something related about {}",
    "curious how {} changed since last year",
    "any sources on {}",
];

/// Copy-marker openers for reproduced posts; all contain phrases the
/// novelty lexicon in `mass-text` recognises.
pub const COPY_OPENERS: &[&str] = &[
    "reprinted from another blog:",
    "forwarded from a friend:",
    "source: a magazine article.",
    "originally posted elsewhere.",
    "zhuanzai repost:",
];

#[cfg(test)]
mod tests {
    use super::*;
    use mass_types::PAPER_DOMAINS;
    use std::collections::HashSet;

    #[test]
    fn one_vocabulary_per_paper_domain() {
        assert_eq!(DOMAIN_VOCAB.len(), PAPER_DOMAINS.len());
        for v in DOMAIN_VOCAB {
            assert!(v.len() >= 20, "each domain needs a rich vocabulary");
        }
    }

    #[test]
    fn first_word_names_the_domain() {
        for (i, v) in DOMAIN_VOCAB.iter().enumerate() {
            assert_eq!(
                v[0].to_lowercase(),
                PAPER_DOMAINS[i].to_lowercase(),
                "vocabulary {i} must lead with its domain name"
            );
        }
    }

    #[test]
    fn vocabularies_mostly_disjoint() {
        // "museum" appears in Travel and Art deliberately; tolerate a small
        // overlap but keep the classification problem learnable.
        let mut seen: HashSet<&str> = HashSet::new();
        let mut dups = 0;
        for v in DOMAIN_VOCAB {
            for w in v {
                if !seen.insert(w) {
                    dups += 1;
                }
            }
        }
        assert!(dups <= 3, "too many cross-domain duplicates: {dups}");
    }

    #[test]
    fn templates_have_placeholder() {
        for t in POSITIVE_COMMENT_TEMPLATES
            .iter()
            .chain(NEGATIVE_COMMENT_TEMPLATES)
            .chain(NEUTRAL_COMMENT_TEMPLATES)
        {
            assert!(t.contains("{}"), "{t}");
        }
    }

    #[test]
    fn copy_openers_trigger_novelty_lexicon() {
        for o in COPY_OPENERS {
            assert!(
                mass_text::novelty::novelty_from_markers(o) <= 0.1,
                "opener not recognised: {o}"
            );
        }
    }
}
