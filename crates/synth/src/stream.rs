//! Streaming corpus generation: any blogger record from `(seed, index)`.
//!
//! The legacy generator ([`crate::generate`]) threads one RNG through the
//! whole corpus, so record `i` depends on every record before it and the
//! blogosphere must be materialised in memory. [`CorpusStream`] removes
//! both constraints:
//!
//! * **O(1) generator state.** Every latent quantity of blogger `i` —
//!   authority, domain affinity, friends, post count, each post's words and
//!   comments — is a pure function of `(spec.seed, i)` evaluated through
//!   independent per-record RNG streams. Regenerating blogger 738 412 of a
//!   million-blogger corpus costs the same as blogger 0.
//! * **Stateless heavy tails.** Authority ranks are assigned by a seeded
//!   Feistel [`Permutation`] (a bijection on `0..n` with O(1) `apply` and
//!   `invert`), and authority-weighted choices (friend targets, commenters)
//!   are drawn by inverting the continuous power-law CDF — no cumulative
//!   table over `n` bloggers.
//! * **Self-contained records.** A post may copy one of its *author's* own
//!   earlier posts and may cite another blogger's post symbolically as
//!   [`PostRef`] `{blogger, slot}`; nothing in a record depends on the
//!   realised content of other records.
//!
//! Shards of the index range therefore generate independently and in
//! parallel (see [`crate::ingest`]), and the whole corpus can also be
//! materialised into a classic [`Dataset`] via [`CorpusStream::materialize`]
//! for the differential tests that pin the streamed path to the in-memory
//! path bit for bit.

use crate::spec::{ConfigError, CorpusSpec};
use crate::truth::GroundTruth;
use crate::vocab::{
    COPY_OPENERS, GENERAL_WORDS, NEGATIVE_COMMENT_TEMPLATES, NEUTRAL_COMMENT_TEMPLATES,
    POSITIVE_COMMENT_TEMPLATES,
};
use mass_types::{
    Blogger, BloggerId, Comment, Dataset, DomainId, DomainSet, Post, PostId, Sentiment,
    PAPER_DOMAINS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-record RNG stream tags: one independent stream per latent quantity,
/// so adding draws to one stream never perturbs another.
mod tag {
    pub const AFFINITY: u64 = 0x01;
    pub const FRIENDS: u64 = 0x02;
    pub const VOLUME: u64 = 0x03;
    pub const POST_META: u64 = 0x04;
    pub const POST_BODY: u64 = 0x05;
    pub const COMMENTS: u64 = 0x06;
    /// Timestamps live on their own stream so temporal specs reuse the
    /// exact words, links and sentiments of their timeless counterparts
    /// (streams 0x01–0x06 are never perturbed by timing draws).
    pub const TIMING: u64 = 0x07;
}

/// SplitMix64 finalizer: a strong 64→64 bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `(tag, i, k)` under a corpus seed. Each
/// argument is folded through [`mix64`] with a distinct odd multiplier, so
/// nearby `(i, k)` pairs land on unrelated RNG states.
#[inline]
fn stream_seed(seed: u64, tag: u64, i: u64, k: u64) -> u64 {
    let a = mix64(seed ^ tag.wrapping_mul(0xA076_1D64_78BD_642F));
    let b = mix64(a ^ i.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    mix64(b ^ k.wrapping_mul(0x8EBC_6AF0_9C88_C6E3))
}

#[inline]
fn stream_rng(seed: u64, tag: u64, i: u64, k: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed(seed, tag, i, k))
}

/// A seeded bijection on `0..n` with O(1) forward and inverse evaluation.
///
/// Implemented as a 4-round balanced Feistel network over the smallest
/// even-bit power of two ≥ `n`, with cycle-walking to stay inside `0..n`:
/// out-of-range intermediate values are re-encrypted until they land in
/// range, which preserves bijectivity and terminates in < 4 expected steps
/// (the walk domain is at most 4× `n`).
///
/// The stream generator uses it to scatter authority ranks over blogger
/// indices without storing a shuffled permutation vector: `apply(i)` is the
/// authority rank of blogger `i`, `invert(rank)` recovers the blogger.
#[derive(Clone, Debug)]
pub struct Permutation {
    n: u64,
    half_bits: u32,
    mask: u64,
    keys: [u64; 4],
}

impl Permutation {
    /// A permutation of `0..n` determined by `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Permutation {
        assert!(n > 0, "permutation over empty domain");
        let mut half_bits = 1;
        while (1u64 << (2 * half_bits)) < n {
            half_bits += 1;
        }
        let base = mix64(seed ^ 0x1B87_3F7A_55D8_90E3);
        let keys = [
            mix64(base ^ 1),
            mix64(base ^ 2),
            mix64(base ^ 3),
            mix64(base ^ 4),
        ];
        Permutation {
            n,
            half_bits,
            mask: (1u64 << half_bits) - 1,
            keys,
        }
    }

    #[inline]
    fn round(&self, r: u64, key: u64) -> u64 {
        mix64(r ^ key) & self.mask
    }

    #[inline]
    fn encrypt(&self, x: u64) -> u64 {
        let (mut l, mut r) = (x >> self.half_bits, x & self.mask);
        for &k in &self.keys {
            let f = self.round(r, k);
            let nl = r;
            let nr = l ^ f;
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    #[inline]
    fn decrypt(&self, y: u64) -> u64 {
        let (mut l, mut r) = (y >> self.half_bits, y & self.mask);
        for &k in self.keys.iter().rev() {
            let f = self.round(l, k);
            let nl = r ^ f;
            let nr = l;
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    /// Image of `i` under the permutation (`i < n`).
    #[inline]
    pub fn apply(&self, i: u64) -> u64 {
        debug_assert!(i < self.n);
        let mut x = self.encrypt(i);
        while x >= self.n {
            x = self.encrypt(x);
        }
        x
    }

    /// Preimage: `invert(apply(i)) == i`.
    #[inline]
    pub fn invert(&self, y: u64) -> u64 {
        debug_assert!(y < self.n);
        let mut x = self.decrypt(y);
        while x >= self.n {
            x = self.decrypt(x);
        }
        x
    }

    /// Domain size.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Latent (unobservable) per-blogger quantities, the same facts
/// [`GroundTruth`] tabulates corpus-wide.
#[derive(Clone, Debug, PartialEq)]
pub struct Latent {
    /// Authority in `(0, 1]`, `1.0` for the top-ranked blogger.
    pub authority: f64,
    /// Zipf rank (0 = most authoritative).
    pub rank: usize,
    /// Main interest domain.
    pub primary_domain: DomainId,
    /// Per-domain activity fractions; sums to 1.
    pub relevance: Vec<f64>,
}

/// Symbolic reference to the `slot`-th post of blogger `blogger`, resolved
/// to a global [`PostId`] only at materialisation/ingest time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PostRef {
    /// Author of the cited post.
    pub blogger: usize,
    /// Position of the cited post within that author's posts.
    pub slot: usize,
}

/// A post minus its comments — the unit the posts pass of sharded ingest
/// consumes ([`CorpusStream::post_content`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PostContent {
    /// Ground-truth domain of the body text.
    pub domain: DomainId,
    /// Post title.
    pub title: String,
    /// Post body text.
    pub text: String,
    /// Cited posts of *other* bloggers (symbolic; never self-citations).
    pub links: Vec<PostRef>,
    /// Publication tick (0 for timeless specs).
    pub ts: u64,
}

/// One generated post, self-contained within its author's record.
#[derive(Clone, Debug, PartialEq)]
pub struct PostRecord {
    /// Post title.
    pub title: String,
    /// Post body text.
    pub text: String,
    /// Ground-truth domain of the body text.
    pub domain: DomainId,
    /// Cited posts of *other* bloggers (symbolic; never self-citations).
    pub links: Vec<PostRef>,
    /// Reader comments.
    pub comments: Vec<Comment>,
    /// Publication tick (0 for timeless specs).
    pub ts: u64,
}

/// One blogger's complete generated record.
#[derive(Clone, Debug, PartialEq)]
pub struct BloggerRecord {
    /// Blogger index (= `BloggerId` after materialisation).
    pub index: usize,
    /// Display name.
    pub name: String,
    /// Profile text.
    pub profile: String,
    /// Latent quantities the observables were derived from.
    pub latent: Latent,
    /// Outgoing space links (never self-links).
    pub friends: Vec<BloggerId>,
    /// The blogger's posts, in publication order.
    pub posts: Vec<PostRecord>,
}

/// A materialised stream: the classic in-memory dataset plus ground truth.
#[derive(Clone, Debug)]
pub struct StreamOutput {
    /// The blogosphere snapshot, identical to what shard-by-shard ingest
    /// of the same stream observes.
    pub dataset: Dataset,
    /// Planted latent quantities for evaluation.
    pub truth: GroundTruth,
}

/// Deterministic blogger-record stream over a validated [`CorpusSpec`].
///
/// Construction is O(n) time (two scalar reductions over authority ranks)
/// but O(1) memory beyond the spec's vocabulary; every record access is
/// independent of every other.
#[derive(Clone, Debug)]
pub struct CorpusStream {
    spec: CorpusSpec,
    perm: Permutation,
    vocab: Vec<Vec<String>>,
    /// Σ authority(rank) — mass of the authority component in mixture draws.
    s_auth: f64,
    /// Σ (0.3 + 3·√authority) — post-volume normaliser.
    s_vol: f64,
    /// Raw weight of rank 0 (the normaliser making top authority 1.0).
    w_max: f64,
    /// Continuous CDF mass of the planted (boosted) segment.
    h_planted: f64,
    /// Total continuous CDF mass (boosted head + tail).
    total_mass: f64,
}

impl CorpusStream {
    /// Validates the spec and precomputes the O(1) sampling state.
    pub fn new(spec: CorpusSpec) -> Result<CorpusStream, ConfigError> {
        spec.validate()?;
        let n = spec.bloggers;
        let perm = Permutation::new(n as u64, spec.seed);
        let vocab: Vec<Vec<String>> = (0..spec.domains).map(|d| spec.domain_words(d)).collect();

        let boost = if spec.planted_influencers > 0 {
            spec.influencer_boost
        } else {
            1.0
        };
        let s = spec.zipf_exponent;
        let w_max = boost * 1.0f64; // rank 0: (0+1)^-s == 1, boosted
        let mut s_auth = 0.0;
        let mut s_vol = 0.0;
        for r in 0..n {
            let raw = Self::raw_weight(r, s, spec.planted_influencers, boost);
            let a = raw / w_max;
            s_auth += a;
            s_vol += 0.3 + 3.0 * a.sqrt();
        }
        let p = spec.planted_influencers as f64;
        let h_planted = h_integral(p, s);
        let total_mass = boost * h_planted + (h_integral(n as f64, s) - h_planted);
        Ok(CorpusStream {
            spec,
            perm,
            vocab,
            s_auth,
            s_vol,
            w_max,
            h_planted,
            total_mass,
        })
    }

    /// The validated spec this stream realises.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// Number of bloggers in the stream.
    pub fn len(&self) -> usize {
        self.spec.bloggers
    }

    /// Whether the stream is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.spec.bloggers == 0
    }

    #[inline]
    fn boost(&self) -> f64 {
        if self.spec.planted_influencers > 0 {
            self.spec.influencer_boost
        } else {
            1.0
        }
    }

    #[inline]
    fn raw_weight(rank: usize, s: f64, planted: usize, boost: f64) -> f64 {
        let base = ((rank + 1) as f64).powf(-s);
        if rank < planted {
            base * boost
        } else {
            base
        }
    }

    /// Authority of blogger `i` in `(0, 1]`.
    #[inline]
    pub fn authority(&self, i: usize) -> f64 {
        self.authority_of_rank(self.rank_of(i))
    }

    /// Authority of the blogger at Zipf rank `r`.
    #[inline]
    pub fn authority_of_rank(&self, r: usize) -> f64 {
        Self::raw_weight(
            r,
            self.spec.zipf_exponent,
            self.spec.planted_influencers,
            self.boost(),
        ) / self.w_max
    }

    /// Zipf rank of blogger `i` (0 = most authoritative).
    #[inline]
    pub fn rank_of(&self, i: usize) -> usize {
        self.perm.apply(i as u64) as usize
    }

    /// Blogger occupying Zipf rank `r`.
    #[inline]
    pub fn blogger_at_rank(&self, r: usize) -> usize {
        self.perm.invert(r as u64) as usize
    }

    /// Draws a rank with probability ∝ its (boosted) power-law weight, via
    /// the inverse continuous CDF — O(1), no cumulative table.
    #[inline]
    fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let s = self.spec.zipf_exponent;
        let y = rng.random::<f64>() * self.total_mass;
        let boosted = self.boost() * self.h_planted;
        let x = if y < boosted {
            h_inverse(y / self.boost(), s)
        } else {
            h_inverse(self.h_planted + (y - boosted), s)
        };
        (x as usize).min(self.spec.bloggers - 1)
    }

    #[inline]
    fn sample_blogger<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.blogger_at_rank(self.sample_rank(rng))
    }

    /// Number of posts blogger `i` publishes — O(1).
    pub fn n_posts(&self, i: usize) -> usize {
        let a = self.authority(i);
        let vw = 0.3 + 3.0 * a.sqrt();
        let mut rng = stream_rng(self.spec.seed, tag::VOLUME, i as u64, 0);
        let jitter = 0.7 + 0.6 * rng.random::<f64>();
        let n = self.spec.bloggers as f64;
        (self.spec.mean_posts_per_blogger * n * (vw / self.s_vol) * jitter).round() as usize
    }

    /// Latent quantities of blogger `i` — O(1).
    pub fn latent(&self, i: usize) -> Latent {
        let rank = self.rank_of(i);
        let authority = self.authority_of_rank(rank);
        let nd = self.spec.domains;
        let mut rng = stream_rng(self.spec.seed, tag::AFFINITY, i as u64, 0);
        let primary = rng.random_range(0..nd);
        let mut relevance = vec![0.01; nd];
        relevance[primary] += 0.6 + 0.3 * rng.random::<f64>();
        if nd > 1 {
            let n_sec = if rng.random_bool(0.5) { 2 } else { 1 }.min(nd - 1);
            let mut remaining = 0.05 + 0.25 * rng.random::<f64>();
            for _ in 0..n_sec {
                // Offset draw keeps the secondary distinct from the primary
                // without rejection loops.
                let d = (primary + 1 + rng.random_range(0..nd - 1)) % nd;
                let share = remaining * (0.3 + 0.5 * rng.random::<f64>());
                relevance[d] += share;
                remaining -= share;
            }
        }
        let total: f64 = relevance.iter().sum();
        for r in relevance.iter_mut() {
            *r /= total;
        }
        Latent {
            authority,
            rank,
            primary_domain: DomainId::new(primary),
            relevance,
        }
    }

    /// Outgoing friend links of blogger `i` — preferential attachment by
    /// authority, deduplicated, never self-directed.
    pub fn friends(&self, i: usize) -> Vec<BloggerId> {
        let nb = self.spec.bloggers;
        if nb < 2 {
            return Vec::new();
        }
        let mut rng = stream_rng(self.spec.seed, tag::FRIENDS, i as u64, 0);
        let cap = (nb - 1).min(128);
        let want = crate::sampling::skewed_count(&mut rng, self.spec.mean_friends, cap);
        let mut friends: Vec<BloggerId> = Vec::with_capacity(want);
        let mut attempts = 0;
        while friends.len() < want && attempts < 4 * want + 16 {
            attempts += 1;
            let t = self.sample_blogger(&mut rng);
            if t != i && !friends.iter().any(|f| f.index() == t) {
                friends.push(BloggerId::new(t));
            }
        }
        friends
    }

    /// Domain ∼ the blogger's relevance mixture (≤ a few dozen domains;
    /// linear CDF walk is exact and cheap). Consumes exactly one draw —
    /// the *first* draw of the post-body stream, so
    /// [`CorpusStream::post_domain`] can replay it without generating words.
    fn domain_walk<R: Rng + ?Sized>(&self, rng: &mut R, latent: &Latent) -> usize {
        let mut target = rng.random::<f64>();
        let mut domain = self.spec.domains - 1;
        for (d, &w) in latent.relevance.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                domain = d;
                break;
            }
        }
        domain
    }

    /// The body (domain, title, text) post `(i, t)` would have as an
    /// original composition. Pure in `(seed, i, t)` — copies re-derive the
    /// source body without touching the source's own copy decision, keeping
    /// records O(1) to evaluate.
    fn post_body(&self, i: usize, t: usize, latent: &Latent) -> (DomainId, String, String) {
        let mut rng = stream_rng(self.spec.seed, tag::POST_BODY, i as u64, t as u64);
        let domain = self.domain_walk(&mut rng, latent);
        let words = &self.vocab[domain];
        let a = latent.authority;
        let len_f =
            self.spec.base_post_words as f64 * (0.35 + 1.3 * a.sqrt() + 0.25 * rng.random::<f64>());
        let n_words = (len_f as usize).max(3);
        let mixture = self.spec.word_mixtures[domain];
        let mut text = String::with_capacity(n_words * 8);
        for w in 0..n_words {
            if w > 0 {
                text.push(' ');
            }
            if rng.random_bool(mixture) {
                text.push_str(&words[rng.random_range(0..words.len())]);
            } else {
                text.push_str(GENERAL_WORDS[rng.random_range(0..GENERAL_WORDS.len())]);
            }
        }
        let title = format!(
            "{} {}",
            words[rng.random_range(0..words.len())],
            GENERAL_WORDS[rng.random_range(0..GENERAL_WORDS.len())]
        );
        (DomainId::new(domain), title, text)
    }

    /// Draws post `(i, t)`'s publication tick from an already-positioned
    /// timing RNG. Caller guarantees `time_span > 0`. The author's planted
    /// activity profile decides the era: fading ranks post in the earliest
    /// fifth of the span, rising ranks in the last fifth, everyone else
    /// uniformly.
    fn draw_post_ts<R: Rng + ?Sized>(&self, rng: &mut R, rank: usize) -> u64 {
        let span = self.spec.time_span;
        let early_end = span.div_ceil(5);
        let late_start = (span - span.div_ceil(5)).min(span - 1);
        if rank < self.spec.planted_fading {
            rng.random_range(0..early_end)
        } else if rank < self.spec.planted_fading + self.spec.planted_rising {
            rng.random_range(late_start..span)
        } else {
            rng.random_range(0..span)
        }
    }

    /// Publication tick of post `(i, t)` — 0 for timeless specs. O(1).
    pub fn post_ts(&self, i: usize, t: usize, latent: &Latent) -> u64 {
        if self.spec.time_span == 0 {
            return 0;
        }
        let mut trng = stream_rng(self.spec.seed, tag::TIMING, i as u64, t as u64);
        self.draw_post_ts(&mut trng, latent.rank)
    }

    /// Comments on post `(i, t)`: volume follows the author's authority,
    /// commenters mix uniform readers with authority-weighted peers, and
    /// sentiment correlates with authority per the spec.
    fn comments(&self, i: usize, t: usize, latent: &Latent, domain: DomainId) -> Vec<Comment> {
        let nb = self.spec.bloggers;
        if nb < 2 {
            return Vec::new(); // only possible commenter would be the author
        }
        let a = latent.authority;
        let mut rng = stream_rng(self.spec.seed, tag::COMMENTS, i as u64, t as u64);
        let rate = self.spec.mean_comments_top * (0.02 + 0.98 * a.sqrt());
        let count = crate::sampling::skewed_count(&mut rng, rate, 400);
        let uniform_mass = 0.3 * nb as f64;
        let corr = self.spec.sentiment_authority_corr;
        let p_pos = 0.25 + 0.55 * corr * a;
        let p_neg = (0.35 - 0.30 * corr * a).max(0.05);
        let words = &self.vocab[domain.index()];
        // Comment ticks continue the post's timing stream (first draw = the
        // post's own tick), so the content streams above stay untouched and
        // a temporal spec generates the same words as its timeless twin.
        let span = self.spec.time_span;
        let mut timing = (span > 0).then(|| {
            let mut trng = stream_rng(self.spec.seed, tag::TIMING, i as u64, t as u64);
            let pts = self.draw_post_ts(&mut trng, latent.rank);
            (trng, pts)
        });
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let pick = rng.random::<f64>() * (uniform_mass + self.s_auth);
            let mut commenter = if pick < uniform_mass {
                rng.random_range(0..nb)
            } else {
                self.sample_blogger(&mut rng)
            };
            if commenter == i {
                commenter = (commenter + 1) % nb;
            }
            let u = rng.random::<f64>();
            let (sentiment, templates) = if u < p_pos {
                (Sentiment::Positive, POSITIVE_COMMENT_TEMPLATES)
            } else if u < p_pos + p_neg {
                (Sentiment::Negative, NEGATIVE_COMMENT_TEMPLATES)
            } else {
                (Sentiment::Neutral, NEUTRAL_COMMENT_TEMPLATES)
            };
            let template = templates[rng.random_range(0..templates.len())];
            let word = &words[rng.random_range(0..words.len())];
            let tagged = rng.random_bool(self.spec.tag_sentiment_prob);
            let ts = match timing.as_mut() {
                Some((trng, pts)) => {
                    // Replies trail their post by a short delay, clamped
                    // inside the span.
                    let delay = trng.random_range(0..span.div_ceil(10) + 1);
                    (*pts + delay).min(span - 1)
                }
                None => 0,
            };
            out.push(Comment {
                commenter: BloggerId::new(commenter),
                text: template.replace("{}", word),
                sentiment: if tagged { Some(sentiment) } else { None },
                ts,
            });
        }
        out
    }

    /// Everything about post `(i, t)` except its comments — what the posts
    /// pass of sharded ingest consumes. O(1) in corpus size.
    pub fn post_content(&self, i: usize, t: usize, latent: &Latent) -> PostContent {
        let mut meta = stream_rng(self.spec.seed, tag::POST_META, i as u64, t as u64);
        let is_copy = t > 0 && meta.random_bool(self.spec.copy_rate);
        let (domain, title, text) = if is_copy {
            let src = meta.random_range(0..t);
            let opener = COPY_OPENERS[meta.random_range(0..COPY_OPENERS.len())];
            let (domain, title, body) = self.post_body(i, src, latent);
            (domain, title, format!("{opener} {body}"))
        } else {
            self.post_body(i, t, latent)
        };
        let mut links = Vec::new();
        let want = crate::sampling::skewed_count(&mut meta, self.spec.mean_post_links, 4);
        let mut attempts = 0;
        while links.len() < want && attempts < 4 * want + 8 {
            attempts += 1;
            let j = self.sample_blogger(&mut meta);
            if j == i {
                continue; // a blogger's own posts are handled by copies, not links
            }
            let jp = self.n_posts(j);
            if jp == 0 {
                continue;
            }
            links.push(PostRef {
                blogger: j,
                slot: meta.random_range(0..jp),
            });
        }
        PostContent {
            domain,
            title,
            text,
            links,
            ts: self.post_ts(i, t, latent),
        }
    }

    /// The realised domain of post `(i, t)` without generating its words:
    /// replays the copy decision (first draws of the meta stream) and the
    /// domain draw (first draw of the body stream). Lets the comments pass
    /// of sharded ingest run without re-tokenizing post bodies.
    pub fn post_domain(&self, i: usize, t: usize, latent: &Latent) -> DomainId {
        let mut meta = stream_rng(self.spec.seed, tag::POST_META, i as u64, t as u64);
        let src = if t > 0 && meta.random_bool(self.spec.copy_rate) {
            meta.random_range(0..t)
        } else {
            t
        };
        let mut body = stream_rng(self.spec.seed, tag::POST_BODY, i as u64, src as u64);
        DomainId::new(self.domain_walk(&mut body, latent))
    }

    /// The comments of post `(i, t)` — what the comments pass of sharded
    /// ingest consumes. O(1) in corpus size.
    pub fn post_comments(&self, i: usize, t: usize, latent: &Latent) -> Vec<Comment> {
        self.comments(i, t, latent, self.post_domain(i, t, latent))
    }

    /// Post `(i, t)` in full — O(1) in corpus size.
    fn post(&self, i: usize, t: usize, latent: &Latent) -> PostRecord {
        let content = self.post_content(i, t, latent);
        let comments = self.comments(i, t, latent, content.domain);
        PostRecord {
            title: content.title,
            text: content.text,
            domain: content.domain,
            links: content.links,
            comments,
            ts: content.ts,
        }
    }

    /// The complete record of blogger `i` — independent of all others.
    pub fn record(&self, i: usize) -> BloggerRecord {
        assert!(i < self.spec.bloggers, "blogger {i} out of range");
        let latent = self.latent(i);
        let pd = latent.primary_domain.index();
        let words = &self.vocab[pd];
        let profile = format!(
            "I blog about {} and {} especially {}",
            words[0],
            words[(1 + i) % words.len()],
            words[(2 + i / 7) % words.len()],
        );
        let n_posts = self.n_posts(i);
        let posts: Vec<PostRecord> = (0..n_posts).map(|t| self.post(i, t, &latent)).collect();
        BloggerRecord {
            index: i,
            name: format!("blogger_{i:04}"),
            profile,
            latent: latent.clone(),
            friends: self.friends(i),
            posts,
        }
    }

    /// Ground truth for the whole corpus (O(n) — evaluation scales only).
    pub fn truth(&self) -> GroundTruth {
        let n = self.spec.bloggers;
        let mut authority = Vec::with_capacity(n);
        let mut primary_domain = Vec::with_capacity(n);
        let mut domain_relevance = Vec::with_capacity(n);
        for i in 0..n {
            let l = self.latent(i);
            authority.push(l.authority);
            primary_domain.push(l.primary_domain);
            domain_relevance.push(l.relevance);
        }
        let (mut fading, mut rising) = (Vec::new(), Vec::new());
        if self.spec.time_span > 0 {
            fading = (0..self.spec.planted_fading)
                .map(|r| BloggerId::new(self.blogger_at_rank(r)))
                .collect();
            rising = (self.spec.planted_fading
                ..self.spec.planted_fading + self.spec.planted_rising)
                .map(|r| BloggerId::new(self.blogger_at_rank(r)))
                .collect();
            fading.sort();
            rising.sort();
        }
        GroundTruth {
            authority,
            primary_domain,
            domain_relevance,
            fading,
            rising,
        }
    }

    /// The domain catalogue the stream's posts are labelled against.
    pub fn domain_set(&self) -> DomainSet {
        if self.spec.custom_vocab.is_none() && self.spec.domains <= PAPER_DOMAINS.len() {
            return DomainSet::new(PAPER_DOMAINS[..self.spec.domains].iter().copied());
        }
        DomainSet::new((0..self.spec.domains).map(|d| {
            self.vocab[d]
                .iter()
                .find(|w| !w.is_empty())
                .cloned()
                .unwrap_or_else(|| format!("domain{d}"))
        }))
    }

    /// Global [`PostId`] offsets: `prefix[i]` is the id of blogger `i`'s
    /// first post. O(n) time, used by materialisation and sharded ingest to
    /// resolve [`PostRef`]s.
    pub fn post_prefix(&self) -> Vec<usize> {
        let mut prefix = Vec::with_capacity(self.spec.bloggers + 1);
        let mut acc = 0usize;
        prefix.push(0);
        for i in 0..self.spec.bloggers {
            acc += self.n_posts(i);
            prefix.push(acc);
        }
        prefix
    }

    /// Splits `0..bloggers` into `shards` contiguous, balanced ranges.
    /// Empty trailing ranges are produced when `shards > bloggers`.
    pub fn shard_ranges(&self, shards: usize) -> Vec<Range<usize>> {
        shard_ranges(self.spec.bloggers, shards)
    }

    /// Materialises the full stream as a classic validated [`Dataset`] plus
    /// ground truth — the reference the sharded out-of-core path is tested
    /// bit-for-bit against.
    pub fn materialize(&self) -> StreamOutput {
        let n = self.spec.bloggers;
        let prefix = self.post_prefix();
        let mut bloggers = Vec::with_capacity(n);
        let mut posts = Vec::with_capacity(prefix[n]);
        for i in 0..n {
            let rec = self.record(i);
            bloggers.push(Blogger {
                name: rec.name,
                profile: rec.profile,
                friends: rec.friends,
            });
            for p in rec.posts {
                posts.push(Post {
                    author: BloggerId::new(i),
                    title: p.title,
                    text: p.text,
                    links_to: p
                        .links
                        .iter()
                        .map(|r| PostId::new(prefix[r.blogger] + r.slot))
                        .collect(),
                    comments: p.comments,
                    true_domain: Some(p.domain),
                    ts: p.ts,
                });
            }
        }
        let dataset = Dataset {
            bloggers,
            posts,
            domains: self.domain_set(),
        };
        dataset
            .validate()
            .expect("stream generation upholds dataset invariants");
        StreamOutput {
            dataset,
            truth: self.truth(),
        }
    }

    /// Serialises every record as one JSON object per line, with floats as
    /// `f64::to_bits` hex so the encoding is byte-stable across platforms.
    /// This is the golden-snapshot format (`tests/golden/synth_stream_s7.json`)
    /// and the CLI `synth --records-out` format.
    pub fn records_json(&self) -> String {
        let mut out = String::new();
        for i in 0..self.spec.bloggers {
            let rec = self.record(i);
            out.push_str(&record_json_line(&rec));
            out.push('\n');
        }
        out
    }
}

/// ∫₀ˣ (t+1)^(−s) dt — the continuous analogue of the Zipf CDF.
#[inline]
fn h_integral(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        (x + 1.0).ln()
    } else {
        ((x + 1.0).powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`h_integral`] in `x`.
#[inline]
fn h_inverse(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        y.exp() - 1.0
    } else {
        ((1.0 - s) * y + 1.0).powf(1.0 / (1.0 - s)) - 1.0
    }
}

/// Splits `0..n` into `shards` contiguous balanced ranges (first `n % shards`
/// ranges get the extra element).
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[inline]
fn push_bits(out: &mut String, v: f64) {
    out.push('"');
    out.push_str(&format!("{:016x}", v.to_bits()));
    out.push('"');
}

/// One blogger record as a single-line JSON object (see
/// [`CorpusStream::records_json`]).
pub fn record_json_line(rec: &BloggerRecord) -> String {
    let mut s = String::with_capacity(256);
    s.push_str(&format!("{{\"index\":{},\"name\":", rec.index));
    push_json_str(&mut s, &rec.name);
    s.push_str(",\"profile\":");
    push_json_str(&mut s, &rec.profile);
    s.push_str(&format!(
        ",\"rank\":{},\"authority_bits\":",
        rec.latent.rank
    ));
    push_bits(&mut s, rec.latent.authority);
    s.push_str(&format!(
        ",\"primary_domain\":{},\"relevance_bits\":[",
        rec.latent.primary_domain.index()
    ));
    for (k, &r) in rec.latent.relevance.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        push_bits(&mut s, r);
    }
    s.push_str("],\"friends\":[");
    for (k, f) in rec.friends.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        s.push_str(&f.index().to_string());
    }
    s.push_str("],\"posts\":[");
    for (k, p) in rec.posts.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        s.push_str("{\"title\":");
        push_json_str(&mut s, &p.title);
        s.push_str(",\"text\":");
        push_json_str(&mut s, &p.text);
        s.push_str(&format!(",\"domain\":{}", p.domain.index()));
        if p.ts != 0 {
            // Tick 0 is the timeless default; omitting it keeps pre-temporal
            // golden snapshots byte-identical.
            s.push_str(&format!(",\"ts\":{}", p.ts));
        }
        s.push_str(",\"links\":[");
        for (j, l) in p.links.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{},{}]", l.blogger, l.slot));
        }
        s.push_str("],\"comments\":[");
        for (j, c) in p.comments.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"by\":{},\"text\":", c.commenter.index()));
            push_json_str(&mut s, &c.text);
            s.push_str(",\"sentiment\":");
            match c.sentiment {
                Some(Sentiment::Positive) => s.push_str("\"pos\""),
                Some(Sentiment::Negative) => s.push_str("\"neg\""),
                Some(Sentiment::Neutral) => s.push_str("\"neu\""),
                None => s.push_str("null"),
            }
            if c.ts != 0 {
                s.push_str(&format!(",\"ts\":{}", c.ts));
            }
            s.push('}');
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection_with_inverse() {
        for n in [1u64, 2, 3, 7, 64, 100, 1000] {
            let p = Permutation::new(n, 42);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let y = p.apply(i);
                assert!(y < n, "image out of range: {y} >= {n}");
                assert!(!seen[y as usize], "collision at {y}");
                seen[y as usize] = true;
                assert_eq!(p.invert(y), i, "invert(apply({i})) != {i} for n={n}");
            }
            assert_eq!(p.len(), n);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn permutation_depends_on_seed() {
        let a = Permutation::new(1000, 1);
        let b = Permutation::new(1000, 2);
        let differs = (0..1000).filter(|&i| a.apply(i) != b.apply(i)).count();
        assert!(differs > 900, "seeds should decorrelate images: {differs}");
    }

    #[test]
    fn h_inverse_inverts_h() {
        for s in [0.7, 1.0, 1.1, 1.6] {
            for x in [0.0, 0.5, 3.0, 100.0, 9999.0] {
                let y = h_integral(x, s);
                let back = h_inverse(y, s);
                assert!(
                    (back - x).abs() < 1e-6 * (1.0 + x),
                    "s={s} x={x} back={back}"
                );
            }
        }
    }

    #[test]
    fn records_are_reproducible_and_independent() {
        let stream = CorpusStream::new(CorpusSpec::sized(80, 11)).unwrap();
        let r5 = stream.record(5);
        let again = stream.record(5);
        assert_eq!(r5, again);
        // A fresh stream over an equal spec agrees record-by-record.
        let other = CorpusStream::new(CorpusSpec::sized(80, 11)).unwrap();
        assert_eq!(other.record(5), r5);
        assert_eq!(other.record(79), stream.record(79));
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusStream::new(CorpusSpec::sized(40, 1)).unwrap();
        let b = CorpusStream::new(CorpusSpec::sized(40, 2)).unwrap();
        assert_ne!(a.record(0), b.record(0));
    }

    #[test]
    fn authority_is_zipf_over_ranks() {
        let stream = CorpusStream::new(CorpusSpec::sized(100, 3)).unwrap();
        assert_eq!(stream.authority_of_rank(0), 1.0);
        for r in 1..100 {
            assert!(stream.authority_of_rank(r) < stream.authority_of_rank(r - 1));
        }
        let top = stream.blogger_at_rank(0);
        assert_eq!(stream.authority(top), 1.0);
        assert_eq!(stream.rank_of(top), 0);
    }

    #[test]
    fn planted_influencers_are_boosted() {
        let plain = CorpusStream::new(CorpusSpec::sized(100, 3)).unwrap();
        let planted = CorpusStream::new(CorpusSpec {
            planted_influencers: 5,
            influencer_boost: 4.0,
            ..CorpusSpec::sized(100, 3)
        })
        .unwrap();
        // With the head boosted 4x, the relative authority of a tail rank
        // drops by the same factor.
        let ratio = plain.authority_of_rank(50) / planted.authority_of_rank(50);
        assert!((ratio - 4.0).abs() < 1e-12, "ratio {ratio}");
        // Within the planted head the law is unchanged (all boosted alike).
        let r0 = planted.authority_of_rank(0);
        let r4 = planted.authority_of_rank(4);
        let e0 = plain.authority_of_rank(0);
        let e4 = plain.authority_of_rank(4);
        assert!((r4 / r0 - e4 / e0).abs() < 1e-12);
    }

    #[test]
    fn materialized_dataset_is_valid_and_consistent() {
        let stream = CorpusStream::new(CorpusSpec::sized(60, 9)).unwrap();
        let out = stream.materialize();
        let ds = &out.dataset;
        assert_eq!(ds.bloggers.len(), 60);
        assert_eq!(out.truth.len(), 60);
        let prefix = stream.post_prefix();
        assert_eq!(ds.posts.len(), prefix[60]);
        // Posts are grouped by author in blogger order.
        for i in 0..60 {
            for t in prefix[i]..prefix[i + 1] {
                assert_eq!(ds.posts[t].author.index(), i);
            }
            assert_eq!(prefix[i + 1] - prefix[i], stream.n_posts(i));
        }
        assert!(ds.posts.iter().any(|p| !p.comments.is_empty()));
        assert!(ds.bloggers.iter().any(|b| !b.friends.is_empty()));
    }

    #[test]
    fn truth_matches_per_record_latents() {
        let stream = CorpusStream::new(CorpusSpec::sized(50, 5)).unwrap();
        let truth = stream.truth();
        for i in [0usize, 7, 49] {
            let l = stream.latent(i);
            assert_eq!(truth.authority[i].to_bits(), l.authority.to_bits());
            assert_eq!(truth.primary_domain[i], l.primary_domain);
            assert_eq!(truth.domain_relevance[i], l.relevance);
        }
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for (n, k) in [(100, 7), (5, 8), (64, 1), (1000, 16), (3, 3)] {
            let ranges = shard_ranges(n, k);
            assert_eq!(ranges.len(), k);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n);
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            assert!(max - min <= 1, "unbalanced: {min}..{max}");
        }
    }

    #[test]
    fn records_json_is_stable_and_parseable_shape() {
        let stream = CorpusStream::new(CorpusSpec::sized(8, 7)).unwrap();
        let a = stream.records_json();
        let b = stream.records_json();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 8);
        for line in a.lines() {
            assert!(line.starts_with("{\"index\":"));
            assert!(line.ends_with("]}"));
            assert!(line.contains("\"authority_bits\":\""));
        }
    }

    #[test]
    fn tiny_corpora_stream_without_panicking() {
        for n in [1usize, 2, 3] {
            let stream = CorpusStream::new(CorpusSpec::sized(n, 1)).unwrap();
            let out = stream.materialize();
            assert_eq!(out.dataset.bloggers.len(), n);
            // A single blogger can neither befriend nor comment.
            if n == 1 {
                assert!(out.dataset.bloggers[0].friends.is_empty());
                assert!(out.dataset.posts.iter().all(|p| p.comments.is_empty()));
            }
        }
    }

    #[test]
    fn split_accessors_match_full_records() {
        let stream = CorpusStream::new(CorpusSpec::sized(50, 21)).unwrap();
        for i in [0usize, 13, 49] {
            let latent = stream.latent(i);
            let rec = stream.record(i);
            for (t, p) in rec.posts.iter().enumerate() {
                let c = stream.post_content(i, t, &latent);
                assert_eq!(c.title, p.title);
                assert_eq!(c.text, p.text);
                assert_eq!(c.domain, p.domain);
                assert_eq!(c.links, p.links);
                assert_eq!(stream.post_domain(i, t, &latent), p.domain);
                assert_eq!(stream.post_comments(i, t, &latent), p.comments);
            }
        }
    }

    #[test]
    fn temporal_spec_reuses_the_timeless_content_streams() {
        let plain = CorpusStream::new(CorpusSpec::sized(30, 11)).unwrap();
        let timed = CorpusStream::new(CorpusSpec {
            time_span: 400,
            planted_fading: 3,
            planted_rising: 3,
            ..CorpusSpec::sized(30, 11)
        })
        .unwrap();
        for i in [0usize, 7, 29] {
            let a = plain.record(i);
            let b = timed.record(i);
            assert_eq!(a.friends, b.friends);
            assert_eq!(a.posts.len(), b.posts.len());
            for (pa, pb) in a.posts.iter().zip(&b.posts) {
                assert_eq!(pa.text, pb.text, "timing draws must not perturb words");
                assert_eq!(pa.links, pb.links);
                assert_eq!(pa.ts, 0);
                assert!(pb.ts < 400);
                assert_eq!(pa.comments.len(), pb.comments.len());
                for (ca, cb) in pa.comments.iter().zip(&pb.comments) {
                    assert_eq!(ca.text, cb.text);
                    assert_eq!(ca.sentiment, cb.sentiment);
                    assert!(cb.ts >= pb.ts && cb.ts < 400);
                }
            }
        }
    }

    #[test]
    fn planted_eras_and_truth_roles_line_up() {
        let stream = CorpusStream::new(CorpusSpec {
            time_span: 1000,
            planted_fading: 4,
            planted_rising: 4,
            ..CorpusSpec::sized(40, 9)
        })
        .unwrap();
        let truth = stream.truth();
        assert_eq!(truth.fading.len(), 4);
        assert_eq!(truth.rising.len(), 4);
        for r in 0..4 {
            assert!(truth
                .fading
                .contains(&BloggerId::new(stream.blogger_at_rank(r))));
            assert!(truth
                .rising
                .contains(&BloggerId::new(stream.blogger_at_rank(4 + r))));
        }
        let out = stream.materialize();
        for post in &out.dataset.posts {
            if truth.fading.contains(&post.author) {
                assert!(post.ts < 200, "fader posted at {}", post.ts);
            }
            if truth.rising.contains(&post.author) {
                assert!(post.ts >= 800, "riser posted at {}", post.ts);
            }
        }
    }

    #[test]
    fn records_json_emits_ts_only_for_temporal_specs() {
        let plain = CorpusStream::new(CorpusSpec::sized(6, 7)).unwrap();
        assert!(!plain.records_json().contains("\"ts\":"));
        let timed = CorpusStream::new(CorpusSpec {
            time_span: 300,
            ..CorpusSpec::sized(6, 7)
        })
        .unwrap();
        assert!(timed.records_json().contains("\"ts\":"));
    }

    #[test]
    fn no_self_edges_anywhere() {
        let stream = CorpusStream::new(CorpusSpec::sized(40, 13)).unwrap();
        for i in 0..40 {
            let rec = stream.record(i);
            assert!(rec.friends.iter().all(|f| f.index() != i));
            for p in &rec.posts {
                assert!(p.links.iter().all(|l| l.blogger != i));
                assert!(p.comments.iter().all(|c| c.commenter.index() != i));
            }
        }
    }
}
