//! Generator configuration.

/// Parameters of the synthetic blogosphere.
///
/// The defaults are sized for unit tests; [`SynthConfig::paper_scale`]
/// matches the corpus the paper crawled (≈3 000 bloggers, ≈40 000 posts).
#[derive(Clone, Debug, PartialEq)]
pub struct SynthConfig {
    /// Number of bloggers.
    pub bloggers: usize,
    /// Mean posts per blogger (actual counts follow authority, so the
    /// distribution is heavy-tailed around this mean).
    pub mean_posts_per_blogger: f64,
    /// Zipf exponent for the blogger-authority distribution; higher means
    /// fewer, stronger influencers.
    pub authority_exponent: f64,
    /// Mean comments on a top-authority blogger's post; low-authority posts
    /// receive proportionally fewer.
    pub mean_comments_top: f64,
    /// Mean friend links per blogger (targets drawn by authority).
    pub mean_friends: f64,
    /// Mean outgoing post-to-post links per post.
    pub mean_post_links: f64,
    /// Probability a post is a reproduced copy (exercises novelty).
    pub copy_rate: f64,
    /// Probability the generator pre-tags a comment's sentiment; untagged
    /// comments exercise the lexicon analyzer.
    pub tag_sentiment_prob: f64,
    /// Base length (words) of a post; actual length scales with authority.
    pub base_post_words: usize,
    /// Fraction of a post's words drawn from its domain vocabulary (the
    /// rest is general filler) — the classifier's signal-to-noise knob.
    pub domain_word_fraction: f64,
    /// How strongly comment positivity follows author authority (0 = no
    /// correlation, 1 = top authors get only positive comments).
    pub sentiment_authority_corr: f64,
    /// RNG seed; equal configs generate identical corpora.
    pub seed: u64,
    /// Corpus time span in ticks: posts and comments get timestamps in
    /// `[0, time_span)`. `0` (the default) generates a *timeless* corpus —
    /// every timestamp is 0 and the output is byte-identical to builds
    /// that predate the temporal facet (the stamping pass uses its own RNG
    /// stream precisely so it cannot perturb the classic corpus).
    pub time_span: u64,
    /// Plant this many *fading* influencers: the top-authority bloggers,
    /// whose activity is stamped into the earliest fifth of the span.
    /// Requires `time_span > 0`.
    pub planted_fading: usize,
    /// Plant this many *rising* influencers: the next authority tier,
    /// whose activity is stamped into the last fifth of the span.
    /// Requires `time_span > 0`.
    pub planted_rising: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            bloggers: 200,
            mean_posts_per_blogger: 5.0,
            authority_exponent: 1.1,
            mean_comments_top: 30.0,
            mean_friends: 4.0,
            mean_post_links: 1.0,
            copy_rate: 0.08,
            tag_sentiment_prob: 0.5,
            base_post_words: 60,
            domain_word_fraction: 0.55,
            sentiment_authority_corr: 0.6,
            seed: 42,
            time_span: 0,
            planted_fading: 0,
            planted_rising: 0,
        }
    }
}

impl SynthConfig {
    /// The paper's corpus scale: ~3 000 bloggers, ~40 000 posts
    /// (`3000 × 13.3`).
    pub fn paper_scale(seed: u64) -> Self {
        SynthConfig {
            bloggers: 3000,
            mean_posts_per_blogger: 13.3,
            seed,
            ..Default::default()
        }
    }

    /// A small config for fast tests.
    pub fn tiny(seed: u64) -> Self {
        SynthConfig {
            bloggers: 30,
            mean_posts_per_blogger: 2.0,
            mean_comments_top: 8.0,
            seed,
            ..Default::default()
        }
    }

    /// Sanity-checks parameter ranges.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities or empty populations; the
    /// generator calls this first so misconfiguration fails loudly.
    pub fn validate(&self) {
        assert!(self.bloggers > 0, "need at least one blogger");
        assert!(self.mean_posts_per_blogger >= 0.0, "negative post rate");
        assert!(self.authority_exponent >= 0.0, "negative zipf exponent");
        for (name, p) in [
            ("copy_rate", self.copy_rate),
            ("tag_sentiment_prob", self.tag_sentiment_prob),
            ("domain_word_fraction", self.domain_word_fraction),
            ("sentiment_authority_corr", self.sentiment_authority_corr),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability, got {p}"
            );
        }
        assert!(
            self.time_span > 0 || (self.planted_fading == 0 && self.planted_rising == 0),
            "planted fading/rising influencers need a time_span"
        );
        assert!(
            self.planted_fading + self.planted_rising <= self.bloggers,
            "planted temporal actors ({} + {}) exceed the blogger count {}",
            self.planted_fading,
            self.planted_rising,
            self.bloggers
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SynthConfig::default().validate();
        SynthConfig::paper_scale(1).validate();
        SynthConfig::tiny(1).validate();
    }

    #[test]
    fn paper_scale_matches_corpus() {
        let c = SynthConfig::paper_scale(0);
        assert_eq!(c.bloggers, 3000);
        let expected_posts = c.bloggers as f64 * c.mean_posts_per_blogger;
        assert!((39_000.0..41_000.0).contains(&expected_posts));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        SynthConfig {
            copy_rate: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "need a time_span")]
    fn planting_without_a_span_rejected() {
        SynthConfig {
            planted_rising: 3,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "exceed the blogger count")]
    fn overplanting_rejected() {
        SynthConfig {
            bloggers: 4,
            time_span: 100,
            planted_fading: 3,
            planted_rising: 2,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one blogger")]
    fn zero_bloggers_rejected() {
        SynthConfig {
            bloggers: 0,
            ..Default::default()
        }
        .validate();
    }
}
