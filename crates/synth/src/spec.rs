//! Declarative corpus specification for the streaming generator.
//!
//! A [`CorpusSpec`] describes a blogosphere as a set of *distributions* —
//! Zipf authority/activity, preferential-attachment friend links, planted
//! influencers, per-domain vocabulary mixtures — rather than as the
//! materialised corpus itself. The streaming generator
//! ([`crate::stream::CorpusStream`]) evaluates any blogger record directly
//! from `(spec.seed, blogger_index)` with O(1) generator state, so a
//! million-blogger corpus never has to be resident in memory.
//!
//! Validation is `Result`-based: degenerate specs (zero domains, empty
//! vocabulary, non-positive Zipf exponent) are rejected with a typed
//! [`ConfigError`] *before* streaming starts, never by a panic mid-stream.

use crate::vocab::DOMAIN_VOCAB;
use std::fmt;

/// Why a [`CorpusSpec`] was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `bloggers == 0`: an empty blogosphere has no stream.
    NoBloggers,
    /// `domains == 0`: every post needs a domain to draw vocabulary from.
    NoDomains,
    /// More domains requested than vocabularies available (the built-in
    /// catalogue has [`DOMAIN_VOCAB`]`.len()` entries; pass `custom_vocab`
    /// for more).
    TooManyDomains { requested: usize, available: usize },
    /// A domain's vocabulary word list is empty — post text for that
    /// domain would be unsampleable.
    EmptyVocab { domain: usize },
    /// The Zipf authority exponent must be strictly positive; `<= 0`
    /// inverts or flattens the law and breaks rank inversion.
    BadZipfExponent { value: f64 },
    /// A probability-typed field left `[0, 1]`.
    BadProbability { field: &'static str, value: f64 },
    /// A mean-count field was negative or non-finite.
    BadMean { field: &'static str, value: f64 },
    /// The per-domain word-mixture vector length disagrees with `domains`.
    MixtureLengthMismatch { mixtures: usize, domains: usize },
    /// More planted influencers than bloggers.
    PlantedExceedsBloggers { planted: usize, bloggers: usize },
    /// The planted-influencer boost must be `>= 1` and finite.
    BadBoost { value: f64 },
    /// Planted fading/rising influencers require a non-zero `time_span`.
    PlantedWithoutTimeSpan { fading: usize, rising: usize },
    /// More planted temporal actors (fading + rising) than bloggers.
    TemporalPlantExceedsBloggers {
        fading: usize,
        rising: usize,
        bloggers: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoBloggers => write!(f, "spec needs at least one blogger"),
            ConfigError::NoDomains => write!(f, "spec needs at least one domain"),
            ConfigError::TooManyDomains {
                requested,
                available,
            } => write!(
                f,
                "spec requests {requested} domains but only {available} vocabularies are available"
            ),
            ConfigError::EmptyVocab { domain } => {
                write!(f, "domain {domain} has an empty vocabulary")
            }
            ConfigError::BadZipfExponent { value } => {
                write!(f, "zipf exponent must be > 0, got {value}")
            }
            ConfigError::BadProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            ConfigError::BadMean { field, value } => {
                write!(f, "{field} must be a finite non-negative mean, got {value}")
            }
            ConfigError::MixtureLengthMismatch { mixtures, domains } => write!(
                f,
                "word_mixtures has {mixtures} entries but the spec has {domains} domains"
            ),
            ConfigError::PlantedExceedsBloggers { planted, bloggers } => write!(
                f,
                "cannot plant {planted} influencers among {bloggers} bloggers"
            ),
            ConfigError::BadBoost { value } => {
                write!(f, "influencer boost must be finite and >= 1, got {value}")
            }
            ConfigError::PlantedWithoutTimeSpan { fading, rising } => write!(
                f,
                "planting {fading} fading and {rising} rising influencers needs time_span > 0"
            ),
            ConfigError::TemporalPlantExceedsBloggers {
                fading,
                rising,
                bloggers,
            } => write!(
                f,
                "cannot plant {fading} fading + {rising} rising influencers among {bloggers} bloggers"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Declarative description of a synthetic blogosphere.
///
/// Unlike [`crate::SynthConfig`] (which parameterises a sequential
/// generator whose RNG state threads through the whole corpus), every
/// quantity here is defined per-blogger as a pure function of
/// `(seed, blogger_index)` — see [`crate::stream::CorpusStream`].
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusSpec {
    /// Number of bloggers in the corpus.
    pub bloggers: usize,
    /// Number of interest domains (vocabulary mixtures). At most
    /// [`DOMAIN_VOCAB`]`.len()` unless `custom_vocab` supplies more.
    pub domains: usize,
    /// Zipf exponent of the latent authority/activity law: blogger at
    /// authority rank `r` has weight `(r + 1)^-exponent`. Must be `> 0`.
    pub zipf_exponent: f64,
    /// Mean posts per blogger; actual counts follow authority.
    pub mean_posts_per_blogger: f64,
    /// Mean friend links per blogger. Targets are drawn preferentially by
    /// authority (popular spaces collect links).
    pub mean_friends: f64,
    /// Mean outgoing post-to-post citations per post.
    pub mean_post_links: f64,
    /// Mean comments on a top-authority post; lower-authority posts
    /// receive proportionally fewer.
    pub mean_comments_top: f64,
    /// Number of planted influencers: the top `planted` authority ranks
    /// get their weight multiplied by `influencer_boost`, sharpening the
    /// head of the distribution into a known set of ground-truth stars.
    pub planted_influencers: usize,
    /// Authority multiplier for planted influencers (`>= 1`).
    pub influencer_boost: f64,
    /// Per-domain fraction of post words drawn from the domain vocabulary
    /// (the rest is general filler). One entry per domain.
    pub word_mixtures: Vec<f64>,
    /// Probability a post after the author's first reproduces one of their
    /// own earlier posts (exercises the novelty facet without needing
    /// cross-blogger state).
    pub copy_rate: f64,
    /// Probability a comment carries its ground-truth sentiment tag.
    pub tag_sentiment_prob: f64,
    /// How strongly comment positivity tracks author authority.
    pub sentiment_authority_corr: f64,
    /// Base post length in words; actual length scales with authority.
    pub base_post_words: usize,
    /// Replacement vocabularies (one word list per domain). `None` uses the
    /// built-in [`DOMAIN_VOCAB`] catalogue truncated to `domains`.
    pub custom_vocab: Option<Vec<Vec<String>>>,
    /// Corpus time span in ticks: posts and comments get timestamps in
    /// `[0, time_span)` from their own RNG stream. `0` (the default)
    /// streams a *timeless* corpus, byte-identical to pre-temporal builds
    /// (timestamps stay 0 and `records_json` omits the `ts` fields).
    pub time_span: u64,
    /// Planted *fading* influencers: the top authority ranks post only in
    /// the earliest fifth of the span. Requires `time_span > 0`.
    pub planted_fading: usize,
    /// Planted *rising* influencers: the next authority tier posts only in
    /// the last fifth of the span. Requires `time_span > 0`.
    pub planted_rising: usize,
    /// RNG seed. Equal specs stream identical corpora.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            bloggers: 200,
            domains: DOMAIN_VOCAB.len(),
            zipf_exponent: 1.1,
            mean_posts_per_blogger: 5.0,
            mean_friends: 4.0,
            mean_post_links: 1.0,
            mean_comments_top: 30.0,
            planted_influencers: 0,
            influencer_boost: 4.0,
            word_mixtures: vec![0.55; DOMAIN_VOCAB.len()],
            copy_rate: 0.08,
            tag_sentiment_prob: 0.5,
            sentiment_authority_corr: 0.6,
            base_post_words: 60,
            custom_vocab: None,
            time_span: 0,
            planted_fading: 0,
            planted_rising: 0,
            seed: 7,
        }
    }
}

impl CorpusSpec {
    /// A spec sized to `bloggers`, otherwise default-shaped.
    pub fn sized(bloggers: usize, seed: u64) -> Self {
        CorpusSpec {
            bloggers,
            seed,
            ..Default::default()
        }
    }

    /// A lean spec for very large corpora (short posts, few comments) —
    /// what the X16 bench streams at 100k/1M bloggers.
    pub fn lean(bloggers: usize, seed: u64) -> Self {
        CorpusSpec {
            bloggers,
            mean_posts_per_blogger: 1.5,
            mean_friends: 3.0,
            mean_post_links: 0.5,
            mean_comments_top: 3.0,
            base_post_words: 18,
            copy_rate: 0.05,
            seed,
            ..Default::default()
        }
    }

    /// Checks every parameter range, returning the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.bloggers == 0 {
            return Err(ConfigError::NoBloggers);
        }
        if self.domains == 0 {
            return Err(ConfigError::NoDomains);
        }
        match &self.custom_vocab {
            Some(vocab) => {
                if vocab.len() < self.domains {
                    return Err(ConfigError::TooManyDomains {
                        requested: self.domains,
                        available: vocab.len(),
                    });
                }
                for (d, words) in vocab.iter().take(self.domains).enumerate() {
                    if words.is_empty() || words.iter().all(|w| w.is_empty()) {
                        return Err(ConfigError::EmptyVocab { domain: d });
                    }
                }
            }
            None => {
                if self.domains > DOMAIN_VOCAB.len() {
                    return Err(ConfigError::TooManyDomains {
                        requested: self.domains,
                        available: DOMAIN_VOCAB.len(),
                    });
                }
            }
        }
        if !(self.zipf_exponent > 0.0 && self.zipf_exponent.is_finite()) {
            return Err(ConfigError::BadZipfExponent {
                value: self.zipf_exponent,
            });
        }
        for (field, value) in [
            ("mean_posts_per_blogger", self.mean_posts_per_blogger),
            ("mean_friends", self.mean_friends),
            ("mean_post_links", self.mean_post_links),
            ("mean_comments_top", self.mean_comments_top),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(ConfigError::BadMean { field, value });
            }
        }
        for (field, value) in [
            ("copy_rate", self.copy_rate),
            ("tag_sentiment_prob", self.tag_sentiment_prob),
            ("sentiment_authority_corr", self.sentiment_authority_corr),
        ] {
            if !((0.0..=1.0).contains(&value) && value.is_finite()) {
                return Err(ConfigError::BadProbability { field, value });
            }
        }
        if self.word_mixtures.len() != self.domains {
            return Err(ConfigError::MixtureLengthMismatch {
                mixtures: self.word_mixtures.len(),
                domains: self.domains,
            });
        }
        for &m in &self.word_mixtures {
            if !((0.0..=1.0).contains(&m) && m.is_finite()) {
                return Err(ConfigError::BadProbability {
                    field: "word_mixtures",
                    value: m,
                });
            }
        }
        if self.planted_influencers > self.bloggers {
            return Err(ConfigError::PlantedExceedsBloggers {
                planted: self.planted_influencers,
                bloggers: self.bloggers,
            });
        }
        if !(self.influencer_boost >= 1.0 && self.influencer_boost.is_finite()) {
            return Err(ConfigError::BadBoost {
                value: self.influencer_boost,
            });
        }
        if self.time_span == 0 && (self.planted_fading > 0 || self.planted_rising > 0) {
            return Err(ConfigError::PlantedWithoutTimeSpan {
                fading: self.planted_fading,
                rising: self.planted_rising,
            });
        }
        if self.planted_fading + self.planted_rising > self.bloggers {
            return Err(ConfigError::TemporalPlantExceedsBloggers {
                fading: self.planted_fading,
                rising: self.planted_rising,
                bloggers: self.bloggers,
            });
        }
        Ok(())
    }

    /// The effective vocabulary of domain `d` (custom or built-in).
    pub(crate) fn domain_words(&self, d: usize) -> Vec<String> {
        match &self.custom_vocab {
            Some(vocab) => vocab[d].clone(),
            None => DOMAIN_VOCAB[d].iter().map(|w| w.to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CorpusSpec::default().validate().unwrap();
        CorpusSpec::sized(600, 7).validate().unwrap();
        CorpusSpec::lean(1000, 7).validate().unwrap();
    }

    #[test]
    fn degenerate_specs_yield_typed_errors() {
        let base = CorpusSpec::default();
        assert_eq!(
            CorpusSpec {
                bloggers: 0,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::NoBloggers)
        );
        assert_eq!(
            CorpusSpec {
                domains: 0,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::NoDomains)
        );
        assert_eq!(
            CorpusSpec {
                zipf_exponent: 0.0,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::BadZipfExponent { value: 0.0 })
        );
        assert_eq!(
            CorpusSpec {
                zipf_exponent: -1.5,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::BadZipfExponent { value: -1.5 })
        );
        assert!(matches!(
            CorpusSpec {
                custom_vocab: Some(vec![Vec::new(); 10]),
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::EmptyVocab { domain: 0 })
        ));
        assert!(matches!(
            CorpusSpec {
                domains: 99,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::TooManyDomains { requested: 99, .. })
        ));
        assert!(matches!(
            CorpusSpec {
                copy_rate: 1.5,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::BadProbability {
                field: "copy_rate",
                ..
            })
        ));
        assert!(matches!(
            CorpusSpec {
                word_mixtures: vec![0.5; 3],
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::MixtureLengthMismatch { mixtures: 3, .. })
        ));
        assert!(matches!(
            CorpusSpec {
                planted_influencers: 1000,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::PlantedExceedsBloggers { .. })
        ));
        assert!(matches!(
            CorpusSpec {
                planted_fading: 2,
                planted_rising: 1,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::PlantedWithoutTimeSpan {
                fading: 2,
                rising: 1
            })
        ));
        assert!(matches!(
            CorpusSpec {
                bloggers: 3,
                time_span: 100,
                planted_fading: 2,
                planted_rising: 2,
                ..base.clone()
            }
            .validate(),
            Err(ConfigError::TemporalPlantExceedsBloggers { .. })
        ));
        assert!(matches!(
            CorpusSpec {
                influencer_boost: 0.5,
                ..base
            }
            .validate(),
            Err(ConfigError::BadBoost { .. })
        ));
    }

    #[test]
    fn errors_display_the_offending_value() {
        let e = CorpusSpec {
            zipf_exponent: -2.0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(e.to_string().contains("-2"));
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::NoDomains);
        assert!(e.to_string().contains("domain"));
    }
}
