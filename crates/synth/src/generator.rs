//! The synthetic blogosphere generator.

use crate::config::SynthConfig;
use crate::sampling::{skewed_count, zipf_weights, WeightedSampler};
use crate::truth::GroundTruth;
use crate::vocab::{
    COPY_OPENERS, DOMAIN_VOCAB, GENERAL_WORDS, NEGATIVE_COMMENT_TEMPLATES,
    NEUTRAL_COMMENT_TEMPLATES, POSITIVE_COMMENT_TEMPLATES,
};
use mass_types::{
    Blogger, BloggerId, Comment, Dataset, DomainId, DomainSet, Post, PostId, Sentiment,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A generated corpus plus the latent quantities it was derived from.
#[derive(Clone, Debug)]
pub struct SynthOutput {
    /// The observable blogosphere (what a crawler would see).
    pub dataset: Dataset,
    /// The planted truth (what the evaluation scores against).
    pub truth: GroundTruth,
}

/// Generates a blogosphere according to `cfg`. Deterministic in `cfg.seed`.
pub fn generate(cfg: &SynthConfig) -> SynthOutput {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let domains = DomainSet::paper();
    let nd = domains.len();
    let nb = cfg.bloggers;

    // ---- Latent state -----------------------------------------------------
    // Authority: Zipf weights over a shuffled rank assignment, rescaled so
    // the strongest blogger has authority 1.0.
    let mut ranks: Vec<usize> = (0..nb).collect();
    ranks.shuffle(&mut rng);
    let weights = zipf_weights(nb, cfg.authority_exponent);
    let w_max = weights[0];
    let authority: Vec<f64> = (0..nb).map(|i| weights[ranks[i]] / w_max).collect();

    // Domain affinity: one primary domain (60–90% of activity), one or two
    // secondary domains, epsilon elsewhere.
    let mut primary_domain = Vec::with_capacity(nb);
    let mut domain_relevance: Vec<Vec<f64>> = Vec::with_capacity(nb);
    for _ in 0..nb {
        let primary = rng.random_range(0..nd);
        primary_domain.push(DomainId::new(primary));
        let primary_share = 0.6 + 0.3 * rng.random::<f64>();
        let mut rel = vec![0.01; nd];
        rel[primary] = primary_share;
        let secondaries = 1 + rng.random_range(0..2usize);
        for _ in 0..secondaries {
            let s = rng.random_range(0..nd);
            if s != primary {
                rel[s] += (1.0 - primary_share) / secondaries as f64;
            }
        }
        let total: f64 = rel.iter().sum();
        rel.iter_mut().for_each(|r| *r /= total);
        domain_relevance.push(rel);
    }

    // ---- Bloggers ---------------------------------------------------------
    let mut bloggers = Vec::with_capacity(nb);
    for i in 0..nb {
        let pd = primary_domain[i].index();
        let vocab = DOMAIN_VOCAB[pd];
        let profile = format!(
            "I blog about {} and {} especially {}",
            vocab[0],
            vocab[1 + (i % (vocab.len() - 2))],
            vocab[2 + (i % (vocab.len() - 3))],
        );
        bloggers.push(Blogger::with_profile(format!("blogger_{i:04}"), profile));
    }

    // Friend links: targets drawn by authority (popular spaces collect links).
    let authority_sampler = WeightedSampler::new(&authority);
    for (i, blogger) in bloggers.iter_mut().enumerate() {
        let n_links = skewed_count(&mut rng, cfg.mean_friends, nb.saturating_sub(1));
        let mut targets = Vec::new();
        for _ in 0..n_links {
            let t = authority_sampler.sample(&mut rng);
            if t != i && !targets.contains(&BloggerId::new(t)) {
                targets.push(BloggerId::new(t));
            }
        }
        blogger.friends = targets;
    }

    // ---- Posts ------------------------------------------------------------
    // Post volume tracks authority (influencers blog more) with mild
    // multiplicative jitter. Low variance here is deliberate: the planted
    // construct "domain influence = authority × relevance" must be
    // recoverable from observable volume, as it is in a real crawl where
    // prolific domain posters are the domain influencers.
    let mut posts: Vec<Post> = Vec::new();
    // √authority: Zipf packs most bloggers into a narrow low-authority band;
    // the square root keeps the observable gradient steep there, so mid-tier
    // influence differences survive into post volume.
    let volume_weights: Vec<f64> = authority.iter().map(|&a| 0.3 + 3.0 * a.sqrt()).collect();
    let wsum: f64 = volume_weights.iter().sum();
    let total_posts = nb as f64 * cfg.mean_posts_per_blogger;
    for i in 0..nb {
        let jitter = 0.7 + 0.6 * rng.random::<f64>();
        let n_posts = (total_posts * volume_weights[i] / wsum * jitter).round() as usize;
        for _ in 0..n_posts {
            let post = generate_post(cfg, &mut rng, i, &authority, &domain_relevance[i], &posts);
            posts.push(post);
        }
    }

    // Post-to-post links: each post cites earlier posts, preferring posts by
    // high-authority bloggers.
    if posts.len() > 1 && cfg.mean_post_links > 0.0 {
        let post_weights: Vec<f64> = posts
            .iter()
            .map(|p| 0.05 + authority[p.author.index()])
            .collect();
        for k in (1..posts.len()).rev() {
            let n_links = skewed_count(&mut rng, cfg.mean_post_links, 8);
            if n_links == 0 {
                continue;
            }
            let earlier = WeightedSampler::new(&post_weights[..k]);
            let mut targets = Vec::new();
            for _ in 0..n_links {
                let t = PostId::new(earlier.sample(&mut rng));
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            posts[k].links_to = targets;
        }
    }

    // ---- Comments ---------------------------------------------------------
    // Commenter activity: everyone comments a little, influencers a bit more.
    let commenter_weights: Vec<f64> = authority.iter().map(|a| 0.3 + a).collect();
    let commenter_sampler = WeightedSampler::new(&commenter_weights);
    for post in posts.iter_mut() {
        let author = post.author;
        if nb < 2 {
            break;
        }
        let q = authority[author.index()].sqrt();
        let rate = cfg.mean_comments_top * (0.02 + 0.98 * q);
        let n_comments = skewed_count(&mut rng, rate, 400);
        let domain_word = {
            let d = post.true_domain.expect("generator tags domains").index();
            DOMAIN_VOCAB[d][rng.random_range(0..DOMAIN_VOCAB[d].len())]
        };
        for _ in 0..n_comments {
            let mut commenter = commenter_sampler.sample(&mut rng);
            if commenter == author.index() {
                commenter = (commenter + 1) % nb;
            }
            let sentiment = draw_sentiment(cfg, &mut rng, q);
            let template = match sentiment {
                Sentiment::Positive => {
                    POSITIVE_COMMENT_TEMPLATES
                        [rng.random_range(0..POSITIVE_COMMENT_TEMPLATES.len())]
                }
                Sentiment::Negative => {
                    NEGATIVE_COMMENT_TEMPLATES
                        [rng.random_range(0..NEGATIVE_COMMENT_TEMPLATES.len())]
                }
                Sentiment::Neutral => {
                    NEUTRAL_COMMENT_TEMPLATES[rng.random_range(0..NEUTRAL_COMMENT_TEMPLATES.len())]
                }
            };
            let text = template.replace("{}", domain_word);
            let tag = rng.random_bool(cfg.tag_sentiment_prob);
            post.comments.push(Comment {
                commenter: BloggerId::new(commenter),
                text,
                sentiment: tag.then_some(sentiment),
                ts: 0,
            });
        }
    }

    // ---- Timestamps (temporal facet, DESIGN.md §15) -----------------------
    // A separate RNG stream keeps the classic corpus untouched: with
    // `time_span == 0` this whole pass is skipped and the output is
    // byte-identical to pre-temporal builds, and with a span the text,
    // graph and sentiment above still come out of the main stream
    // unperturbed.
    let mut fading = Vec::new();
    let mut rising = Vec::new();
    if cfg.time_span > 0 {
        let mut trng = StdRng::seed_from_u64(cfg.seed ^ 0x5449_4d45_5354_414d); // "TIMESTAM"
        let span = cfg.time_span;
        let early_end = span.div_ceil(5);
        let late_start = span - span.div_ceil(5);
        for post in posts.iter_mut() {
            // Authority rank decides the activity profile: the strongest
            // bloggers are planted as faders (all activity early), the next
            // tier as risers (all activity late), everyone else is uniform.
            let rank = ranks[post.author.index()];
            post.ts = if rank < cfg.planted_fading {
                trng.random_range(0..early_end)
            } else if rank < cfg.planted_fading + cfg.planted_rising {
                trng.random_range(late_start.min(span - 1)..span)
            } else {
                trng.random_range(0..span)
            };
            for c in post.comments.iter_mut() {
                // Comments trail their post by a short reply delay, clamped
                // inside the span so every item is visible at `span − 1`.
                let delay = trng.random_range(0..span.div_ceil(10) + 1);
                c.ts = (post.ts + delay).min(span - 1);
            }
        }
        fading = (0..nb)
            .filter(|&i| ranks[i] < cfg.planted_fading)
            .map(BloggerId::new)
            .collect();
        rising = (0..nb)
            .filter(|&i| {
                ranks[i] >= cfg.planted_fading && ranks[i] < cfg.planted_fading + cfg.planted_rising
            })
            .map(BloggerId::new)
            .collect();
    }

    let dataset = Dataset {
        bloggers,
        posts,
        domains,
    };
    debug_assert!(dataset.validate().is_ok());
    SynthOutput {
        dataset,
        truth: GroundTruth {
            authority,
            primary_domain,
            domain_relevance,
            fading,
            rising,
        },
    }
}

fn generate_post(
    cfg: &SynthConfig,
    rng: &mut StdRng,
    author: usize,
    authority: &[f64],
    relevance: &[f64],
    earlier_posts: &[Post],
) -> Post {
    // Pick the post's domain from the author's affinity distribution.
    let domain = WeightedSampler::new(relevance).sample(rng);
    let vocab = DOMAIN_VOCAB[domain];

    let is_copy = rng.random_bool(cfg.copy_rate) && !earlier_posts.is_empty();
    let length = (cfg.base_post_words as f64
        * (0.35 + 1.3 * authority[author].sqrt() + 0.25 * rng.random::<f64>()))
        as usize;

    let mut text = String::new();
    if is_copy {
        let opener = COPY_OPENERS[rng.random_range(0..COPY_OPENERS.len())];
        let source = &earlier_posts[rng.random_range(0..earlier_posts.len())];
        text.push_str(opener);
        text.push(' ');
        text.push_str(&source.text);
    } else {
        for w in 0..length.max(5) {
            if w > 0 {
                text.push(' ');
            }
            let word = if rng.random_bool(cfg.domain_word_fraction) {
                vocab[rng.random_range(0..vocab.len())]
            } else {
                GENERAL_WORDS[rng.random_range(0..GENERAL_WORDS.len())]
            };
            text.push_str(word);
        }
    }

    let title = format!(
        "{} {}",
        vocab[rng.random_range(0..vocab.len())],
        GENERAL_WORDS[rng.random_range(0..GENERAL_WORDS.len())]
    );
    let mut post = Post::new(BloggerId::new(author), title, text);
    post.true_domain = Some(DomainId::new(domain));
    post
}

/// Draws a comment attitude whose positivity tracks the post author's
/// latent quality — the construct behind the paper's sentiment facet.
fn draw_sentiment(cfg: &SynthConfig, rng: &mut StdRng, author_quality: f64) -> Sentiment {
    let c = cfg.sentiment_authority_corr;
    let p_pos = 0.25 + 0.55 * c * author_quality;
    let p_neg = (0.35 - 0.30 * c * author_quality).max(0.05);
    let u: f64 = rng.random();
    if u < p_pos {
        Sentiment::Positive
    } else if u < p_pos + p_neg {
        Sentiment::Negative
    } else {
        Sentiment::Neutral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_dataset_is_consistent() {
        let out = generate(&SynthConfig::default());
        out.dataset
            .validate()
            .expect("generator must produce consistent data");
        assert_eq!(out.dataset.bloggers.len(), 200);
        assert_eq!(out.truth.len(), 200);
        assert!(
            out.dataset.posts.len() > 200,
            "posts: {}",
            out.dataset.posts.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&SynthConfig::tiny(9));
        let b = generate(&SynthConfig::tiny(9));
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.truth, b.truth);
        let c = generate(&SynthConfig::tiny(10));
        assert_ne!(a.dataset, c.dataset);
    }

    #[test]
    fn authority_is_normalised_and_heavy_tailed() {
        let out = generate(&SynthConfig::default());
        let max = out.truth.authority.iter().cloned().fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        let above_half = out.truth.authority.iter().filter(|&&a| a > 0.5).count();
        assert!(
            above_half < out.truth.len() / 10,
            "too many strong bloggers: {above_half}"
        );
    }

    #[test]
    fn relevance_rows_are_distributions_peaked_on_primary() {
        let out = generate(&SynthConfig::tiny(3));
        for (i, rel) in out.truth.domain_relevance.iter().enumerate() {
            assert!((rel.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let primary = out.truth.primary_domain[i].index();
            let max_idx = rel
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(max_idx, primary);
        }
    }

    #[test]
    fn posts_are_domain_tagged_and_worded() {
        let out = generate(&SynthConfig::default());
        for post in &out.dataset.posts {
            let d = post.true_domain.expect("every synthetic post is tagged");
            assert!(d.index() < 10);
            assert!(!post.text.is_empty());
            assert!(!post.title.is_empty());
        }
    }

    #[test]
    fn influencers_get_more_comments() {
        let out = generate(&SynthConfig::default());
        let ix = out.dataset.index();
        let top = out.truth.top_k_general(10);
        let top_comments: u32 = top.iter().map(|&b| ix.comments_received(b)).sum();
        let bottom: Vec<_> = {
            let mut ids: Vec<BloggerId> = (0..out.truth.len()).map(BloggerId::new).collect();
            ids.sort_by(|&a, &b| {
                out.truth.authority[a.index()]
                    .partial_cmp(&out.truth.authority[b.index()])
                    .unwrap()
            });
            ids.truncate(10);
            ids
        };
        let bottom_comments: u32 = bottom.iter().map(|&b| ix.comments_received(b)).sum();
        assert!(
            top_comments > bottom_comments.saturating_mul(3),
            "top {top_comments} vs bottom {bottom_comments}"
        );
    }

    #[test]
    fn copies_exist_at_configured_rate() {
        let out = generate(&SynthConfig {
            copy_rate: 0.3,
            ..Default::default()
        });
        let copies = out
            .dataset
            .posts
            .iter()
            .filter(|p| mass_text::novelty::novelty_from_markers(&p.text) <= 0.1)
            .count();
        let frac = copies as f64 / out.dataset.posts.len() as f64;
        assert!((0.15..0.45).contains(&frac), "copy fraction {frac}");
    }

    #[test]
    fn zero_copy_rate_produces_no_marked_copies() {
        let out = generate(&SynthConfig {
            copy_rate: 0.0,
            ..Default::default()
        });
        for p in &out.dataset.posts {
            assert_eq!(mass_text::novelty::novelty_from_markers(&p.text), 1.0);
        }
    }

    #[test]
    fn sentiment_tags_follow_probability() {
        let all = generate(&SynthConfig {
            tag_sentiment_prob: 1.0,
            ..SynthConfig::tiny(5)
        });
        for p in &all.dataset.posts {
            for c in &p.comments {
                assert!(c.sentiment.is_some());
            }
        }
        let none = generate(&SynthConfig {
            tag_sentiment_prob: 0.0,
            ..SynthConfig::tiny(5)
        });
        for p in &none.dataset.posts {
            for c in &p.comments {
                assert!(c.sentiment.is_none());
            }
        }
    }

    #[test]
    fn comment_texts_carry_their_sentiment() {
        // The lexicon analyzer should agree with the generated tag far more
        // often than chance — the texts are built from sentiment templates.
        let out = generate(&SynthConfig {
            tag_sentiment_prob: 1.0,
            ..Default::default()
        });
        let lex = mass_text::sentiment::SentimentLexicon::default();
        let mut agree = 0usize;
        let mut total = 0usize;
        for p in &out.dataset.posts {
            for c in &p.comments {
                total += 1;
                if lex.classify(&c.text) == c.sentiment.unwrap() {
                    agree += 1;
                }
            }
        }
        assert!(
            total > 100,
            "expected a real comment population, got {total}"
        );
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.9, "lexicon agreement only {rate:.2}");
    }

    #[test]
    fn single_blogger_corpus_has_no_comments() {
        let out = generate(&SynthConfig {
            bloggers: 1,
            ..SynthConfig::tiny(1)
        });
        out.dataset.validate().unwrap();
        for p in &out.dataset.posts {
            assert!(p.comments.is_empty());
        }
    }

    #[test]
    fn timeless_corpus_has_zero_timestamps_and_no_planted_roles() {
        let out = generate(&SynthConfig::tiny(4));
        assert!(out.truth.fading.is_empty());
        assert!(out.truth.rising.is_empty());
        for p in &out.dataset.posts {
            assert_eq!(p.ts, 0);
            for c in &p.comments {
                assert_eq!(c.ts, 0);
            }
        }
    }

    #[test]
    fn temporal_planting_stamps_roles_into_their_eras() {
        let cfg = SynthConfig {
            time_span: 1000,
            planted_fading: 3,
            planted_rising: 3,
            ..SynthConfig::tiny(4)
        };
        let out = generate(&cfg);
        assert_eq!(out.truth.fading.len(), 3);
        assert_eq!(out.truth.rising.len(), 3);
        for post in &out.dataset.posts {
            assert!(post.ts < 1000);
            for c in &post.comments {
                assert!(c.ts >= post.ts && c.ts < 1000);
            }
            if out.truth.fading.contains(&post.author) {
                assert!(post.ts < 200, "fader posted at {}", post.ts);
            }
            if out.truth.rising.contains(&post.author) {
                assert!(post.ts >= 800, "riser posted at {}", post.ts);
            }
        }
        // Faders occupy the top authority ranks, risers the next tier.
        let min_fader = out
            .truth
            .fading
            .iter()
            .map(|b| out.truth.authority[b.index()])
            .fold(f64::INFINITY, f64::min);
        let max_riser = out
            .truth
            .rising
            .iter()
            .map(|b| out.truth.authority[b.index()])
            .fold(0.0, f64::max);
        assert!(min_fader >= max_riser);
    }

    #[test]
    fn stamping_leaves_the_classic_corpus_untouched() {
        // Same seed, with and without a span: everything except timestamps
        // must be identical — the stamping pass has its own RNG stream.
        let plain = generate(&SynthConfig::tiny(6));
        let stamped = generate(&SynthConfig {
            time_span: 500,
            planted_fading: 2,
            planted_rising: 2,
            ..SynthConfig::tiny(6)
        });
        assert_eq!(plain.dataset.bloggers, stamped.dataset.bloggers);
        assert_eq!(plain.dataset.posts.len(), stamped.dataset.posts.len());
        for (a, b) in plain.dataset.posts.iter().zip(&stamped.dataset.posts) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.author, b.author);
            assert_eq!(a.comments.len(), b.comments.len());
            for (ca, cb) in a.comments.iter().zip(&b.comments) {
                assert_eq!(ca.text, cb.text);
                assert_eq!(ca.sentiment, cb.sentiment);
            }
        }
        assert_eq!(plain.truth.authority, stamped.truth.authority);
    }

    #[test]
    fn paper_scale_post_count_in_range() {
        let out = generate(&SynthConfig::paper_scale(11));
        let n = out.dataset.posts.len();
        // Mean of the skewed counter is ≈ rate − 0.5; accept a broad band
        // around the 40 000-post corpus the paper reports.
        assert!((25_000..60_000).contains(&n), "posts: {n}");
    }
}
