//! Sharded, out-of-core ingest of a [`CorpusStream`].
//!
//! The XML round-trip (`generate → Dataset → archive → parse → Dataset →
//! PreparedCorpus`) is pointless for synthetic runs: the stream already
//! knows every document. [`ingest_sharded`] turns a stream directly into
//! the analysis substrate — a [`PreparedCorpus`] plus the friend-link
//! [`LinkCsr`] — shard by shard:
//!
//! * Shards are contiguous blogger ranges ([`crate::stream::shard_ranges`]),
//!   generated **in parallel** via `mass-par` (order-preserving, exactly
//!   once). Each shard makes a posts pass (tokenize + intern locally,
//!   dropping each body as soon as it is tokenized) and a comments pass
//!   (regenerating comment texts from their own RNG streams — nothing is
//!   buffered between passes).
//! * Segments merge through [`ShardedCorpusBuilder`], whose result is
//!   **bit-identical** to `PreparedCorpus::build` over the materialised
//!   dataset — the differential suite in `mass-core` pins this at 600 and
//!   3000 bloggers across thread and shard counts.
//! * Past [`IngestOptions::spill_budget`] bytes, segment arrays spill to
//!   temp files; [`ingest_sharded_spilled`] keeps even the *merged* corpus
//!   on disk, so peak RSS is bounded by one shard regardless of corpus
//!   size (the X16 bench gates this at 1M bloggers).

use crate::spec::ConfigError;
use crate::stream::CorpusStream;
use mass_graph::{CsrBuilder, LinkCsr};
use mass_text::shard::{SegmentBuilder, ShardedCorpusBuilder, SpillStats, SpilledCorpus};
use mass_text::PreparedCorpus;

/// Knobs for sharded ingest.
#[derive(Clone, Copy, Debug)]
pub struct IngestOptions {
    /// Number of contiguous blogger shards (≥ 1; more shards = smaller
    /// per-shard working set and more parallelism).
    pub shards: usize,
    /// Resident-byte budget for segment arrays before spilling to temp
    /// files (`usize::MAX` = never spill).
    pub spill_budget: usize,
    /// Worker threads for shard generation (0 = auto).
    pub threads: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            shards: 4,
            spill_budget: usize::MAX,
            threads: 0,
        }
    }
}

/// Per-shard accounting — the exactly-once evidence the `mass-par`
/// differential tests assert over.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Bloggers generated per shard (sums to the spec's blogger count).
    pub shard_bloggers: Vec<usize>,
    /// Posts tokenized per shard.
    pub shard_posts: Vec<usize>,
    /// Comments tokenized per shard.
    pub shard_comments: Vec<usize>,
    /// Friend edges emitted per shard.
    pub shard_friend_edges: Vec<usize>,
    /// Spill accounting from the merge.
    pub spill: SpillStats,
}

impl IngestStats {
    /// Total posts across shards.
    pub fn posts(&self) -> usize {
        self.shard_posts.iter().sum()
    }

    /// Total comments across shards.
    pub fn comments(&self) -> usize {
        self.shard_comments.iter().sum()
    }

    /// Total friend edges across shards.
    pub fn friend_edges(&self) -> usize {
        self.shard_friend_edges.iter().sum()
    }
}

/// A stream ingested into the analysis substrate, corpus resident.
#[derive(Debug)]
pub struct StreamIngest {
    /// The interned corpus — equal to `PreparedCorpus::build` over the
    /// materialised dataset.
    pub corpus: PreparedCorpus,
    /// Both views of the friend-link graph — equal to
    /// `LinkCsr::from_digraph` over the materialised friend lists.
    pub friends: LinkCsr,
    /// Per-shard accounting.
    pub stats: IngestStats,
}

/// A stream ingested out-of-core: the merged corpus stays on disk.
#[derive(Debug)]
pub struct SpilledStreamIngest {
    /// The merged corpus handle (arrays on disk, vocabulary resident).
    pub corpus: SpilledCorpus,
    /// Both views of the friend-link graph (resident — O(edges), small).
    pub friends: LinkCsr,
    /// Per-shard accounting.
    pub stats: IngestStats,
}

/// One shard's outputs before merging.
struct ShardOutput {
    segment: mass_text::shard::CorpusSegment,
    friend_rows: mass_graph::Csr,
    bloggers: usize,
    posts: usize,
    comments: usize,
    friend_edges: usize,
}

fn build_shard(stream: &CorpusStream, range: std::ops::Range<usize>) -> ShardOutput {
    let mut seg = SegmentBuilder::new();
    let mut friends = CsrBuilder::new();
    let mut posts = 0usize;
    let mut comments = 0usize;
    let mut friend_edges = 0usize;
    let bloggers = range.len();
    // Posts pass: each body is tokenized into the segment and dropped
    // immediately — the shard's working set is its interned arrays.
    for i in range.clone() {
        let latent = stream.latent(i);
        for t in 0..stream.n_posts(i) {
            let content = stream.post_content(i, t, &latent);
            seg.add_post(&content.title, &content.text);
            posts += 1;
        }
        let row: Vec<u32> = stream.friends(i).iter().map(|f| f.index() as u32).collect();
        friend_edges += row.len();
        friends.push_row(&row);
    }
    seg.seal_posts();
    // Comments pass: texts are regenerated from their own RNG streams, so
    // nothing was buffered across the passes.
    for i in range {
        let latent = stream.latent(i);
        for t in 0..stream.n_posts(i) {
            let cs = stream.post_comments(i, t, &latent);
            comments += cs.len();
            seg.add_post_comments(cs.iter().map(|c| c.text.as_str()));
        }
    }
    ShardOutput {
        segment: seg.finish(),
        friend_rows: friends.finish(),
        bloggers,
        posts,
        comments,
        friend_edges,
    }
}

fn ingest_to_builder(
    stream: &CorpusStream,
    opts: &IngestOptions,
) -> Result<(ShardedCorpusBuilder, LinkCsr, IngestStats), ConfigError> {
    let shards = opts.shards.max(1);
    let ranges = stream.shard_ranges(shards);
    let ex = mass_par::executor(opts.threads);
    // Shards are generated in waves of executor width: collecting every
    // segment before merging would make peak memory linear in corpus size,
    // while a wave keeps at most `width` segments resident (the budget then
    // spills them as each wave lands). Wave boundaries cannot affect the
    // result — segments are merged strictly in shard-index order either way.
    let width = mass_par::resolve_threads(opts.threads).max(1);
    let mut builder = ShardedCorpusBuilder::new(opts.spill_budget);
    let mut friend_builder = CsrBuilder::new();
    let mut stats = IngestStats::default();
    let mut next = 0usize;
    while next < shards {
        let wave = width.min(shards - next);
        let base = next;
        let outputs: Vec<ShardOutput> =
            ex.par_map_collect(wave, |k| build_shard(stream, ranges[base + k].clone()));
        for (k, out) in outputs.into_iter().enumerate() {
            stats.shard_bloggers.push(out.bloggers);
            stats.shard_posts.push(out.posts);
            stats.shard_comments.push(out.comments);
            stats.shard_friend_edges.push(out.friend_edges);
            friend_builder.append(&out.friend_rows);
            builder.add_shard(base + k, out.segment);
        }
        next += wave;
    }
    debug_assert_eq!(friend_builder.rows(), stream.len());
    let friends = LinkCsr::from_successors(friend_builder.finish());
    Ok((builder, friends, stats))
}

/// Ingests `stream` shard-by-shard into a resident [`StreamIngest`].
pub fn ingest_sharded(
    stream: &CorpusStream,
    opts: &IngestOptions,
) -> Result<StreamIngest, ConfigError> {
    let (builder, friends, mut stats) = ingest_to_builder(stream, opts)?;
    stats.spill = builder.stats();
    let corpus = builder.finish();
    Ok(StreamIngest {
        corpus,
        friends,
        stats,
    })
}

/// Ingests `stream` fully out-of-core: the merged corpus lands on disk and
/// peak memory stays bounded by one shard plus the vocabulary.
pub fn ingest_sharded_spilled(
    stream: &CorpusStream,
    opts: &IngestOptions,
) -> Result<SpilledStreamIngest, ConfigError> {
    let (builder, friends, mut stats) = ingest_to_builder(stream, opts)?;
    let corpus = builder
        .finish_spilled()
        .expect("out-of-core merge writes to the temp dir");
    stats.spill = corpus.stats();
    Ok(SpilledStreamIngest {
        corpus,
        friends,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusSpec;
    use mass_graph::DiGraph;
    use mass_text::PreparedCorpus;

    fn stream(n: usize, seed: u64) -> CorpusStream {
        CorpusStream::new(CorpusSpec::sized(n, seed)).unwrap()
    }

    #[test]
    fn sharded_ingest_matches_materialized_build() {
        let s = stream(120, 17);
        let out = s.materialize();
        let want = PreparedCorpus::build(&out.dataset, 1);
        for shards in [1usize, 3, 8] {
            let opts = IngestOptions {
                shards,
                ..Default::default()
            };
            let got = ingest_sharded(&s, &opts).unwrap();
            assert!(got.corpus == want, "corpus mismatch at {shards} shards");
            // Friend CSR equals the graph built from materialised lists.
            let mut g = DiGraph::new(120);
            for (i, b) in out.dataset.bloggers.iter().enumerate() {
                for f in &b.friends {
                    g.add_edge(i, f.index());
                }
            }
            assert_eq!(got.friends, LinkCsr::from_digraph(&g));
            assert_eq!(got.stats.shard_bloggers.iter().sum::<usize>(), 120);
            assert_eq!(got.stats.posts(), out.dataset.posts.len());
            assert_eq!(
                got.stats.comments(),
                out.dataset
                    .posts
                    .iter()
                    .map(|p| p.comments.len())
                    .sum::<usize>()
            );
        }
    }

    #[test]
    fn spill_budget_zero_is_still_bit_identical() {
        let s = stream(80, 23);
        let free = ingest_sharded(
            &s,
            &IngestOptions {
                shards: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = ingest_sharded(
            &s,
            &IngestOptions {
                shards: 4,
                spill_budget: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tight.stats.spill.segments_spilled > 0);
        assert!(free.corpus == tight.corpus);
        assert_eq!(free.friends, tight.friends);
    }

    #[test]
    fn spilled_ingest_loads_back_identically() {
        let s = stream(80, 29);
        let resident = ingest_sharded(
            &s,
            &IngestOptions {
                shards: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let spilled = ingest_sharded_spilled(
            &s,
            &IngestOptions {
                shards: 4,
                spill_budget: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(spilled.corpus.posts(), resident.corpus.posts());
        assert_eq!(spilled.corpus.vocab_len(), resident.corpus.vocab_len());
        assert!(spilled.corpus.load().unwrap() == resident.corpus);
        assert_eq!(spilled.friends, resident.friends);
    }

    #[test]
    fn more_shards_than_bloggers() {
        let s = stream(5, 3);
        let got = ingest_sharded(
            &s,
            &IngestOptions {
                shards: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let want = PreparedCorpus::build(&s.materialize().dataset, 1);
        assert!(got.corpus == want);
        assert_eq!(got.stats.shard_bloggers.len(), 16);
    }
}
