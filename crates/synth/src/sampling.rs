//! Small sampling utilities over `rand`.
//!
//! The generator needs Zipf-like heavy tails and weighted choice; rather
//! than pull in `rand_distr`, the two distributions MASS needs are
//! implemented here and unit-tested.

use rand::Rng;

/// Draws an index in `0..n` with probability proportional to
/// `1 / (index + 1)^exponent` — a Zipf law over ranks.
///
/// # Panics
/// Panics if `n == 0`.
pub fn zipf_index<R: Rng + ?Sized>(rng: &mut R, n: usize, exponent: f64) -> usize {
    assert!(n > 0, "zipf over empty support");
    // n is small (thousands); linear CDF walk is fine and exact.
    let total: f64 = (1..=n).map(|r| (r as f64).powf(-exponent)).sum();
    let mut target = rng.random::<f64>() * total;
    for r in 1..=n {
        target -= (r as f64).powf(-exponent);
        if target <= 0.0 {
            return r - 1;
        }
    }
    n - 1
}

/// Zipf-like weights for ranks `0..n`, normalised to sum to 1.
pub fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-exponent)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Weighted index sampler with precomputed cumulative sums (O(log n) draws).
#[derive(Clone, Debug)]
pub struct WeightedSampler {
    cumulative: Vec<f64>,
}

impl WeightedSampler {
    /// Builds a sampler over non-negative weights.
    ///
    /// # Panics
    /// Panics if weights are empty, contain negatives/NaN, or all zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "no weights");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weight must be finite and non-negative: {w}"
            );
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all weights are zero");
        WeightedSampler { cumulative }
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.random::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Draws from a geometric-ish count distribution with the given mean:
/// `floor(-mean * ln(U))` clamped to `max` — a cheap heavy-ish tail for
/// per-post comment counts.
pub fn skewed_count<R: Rng + ?Sized>(rng: &mut R, mean: f64, max: usize) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let u: f64 = rng.random::<f64>().max(1e-12);
    ((-mean * u.ln()) as usize).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[zipf_index(&mut rng, 10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        assert!(
            counts.iter().all(|&c| c > 0),
            "all ranks should appear: {counts:?}"
        );
    }

    #[test]
    fn zipf_weights_normalised_and_decreasing() {
        let w = zipf_weights(100, 1.2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let w = zipf_weights(4, 0.0);
        for x in w {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zipf_empty_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = zipf_index(&mut rng, 0, 1.0);
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        let s = WeightedSampler::new(&[0.0, 3.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "zero-weight outcome drawn");
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn all_zero_weights_panic() {
        let _ = WeightedSampler::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = WeightedSampler::new(&[1.0, -0.5]);
    }

    #[test]
    fn skewed_count_mean_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let total: usize = (0..n).map(|_| skewed_count(&mut rng, 4.0, 1000)).sum();
        let mean = total as f64 / n as f64;
        // E[floor(-m ln U)] ≈ m - 0.5 for exponential with mean m.
        assert!((mean - 3.5).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn skewed_count_edge_cases() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(skewed_count(&mut rng, 0.0, 10), 0);
        for _ in 0..1000 {
            assert!(skewed_count(&mut rng, 100.0, 5) <= 5);
        }
    }
}
