//! Golden snapshot of the streaming generator.
//!
//! `tests/golden/synth_stream_s7.json` is the committed JSON-lines dump of
//! the 64-blogger, seed-7 corpus (floats as `f64::to_bits` hex, so the file
//! is byte-stable across platforms and build profiles). Any change to the
//! generator's draw order, the vocabulary catalogue, or the JSON shape
//! shows up here as a byte diff — regenerate deliberately with
//! `scripts/regen_golden.sh` and review it.

use mass_synth::{CorpusSpec, CorpusStream};

const GOLDEN: &str = include_str!("../../../tests/golden/synth_stream_s7.json");

fn golden_stream() -> CorpusStream {
    CorpusStream::new(CorpusSpec::sized(64, 7)).unwrap()
}

#[test]
fn stream_matches_committed_golden_byte_for_byte() {
    assert_eq!(
        golden_stream().records_json(),
        GOLDEN,
        "streaming generator drifted from tests/golden/synth_stream_s7.json; \
         if the change is intentional, run scripts/regen_golden.sh and review the diff"
    );
}

#[test]
fn golden_has_one_record_per_blogger() {
    assert_eq!(GOLDEN.lines().count(), 64);
    for (i, line) in GOLDEN.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"index\":{i},")),
            "line {i} out of order"
        );
        assert!(line.ends_with('}'), "line {i} truncated");
    }
}

#[test]
fn single_record_lines_match_the_full_dump() {
    // record_json_line over an isolated record equals the corresponding
    // golden line — the snapshot also pins O(1)-state random access.
    let stream = golden_stream();
    for i in [0usize, 31, 63] {
        let line = mass_synth::stream::record_json_line(&stream.record(i));
        assert_eq!(Some(line.as_str()), GOLDEN.lines().nth(i));
    }
}
