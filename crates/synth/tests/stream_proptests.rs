//! Property tests for the streaming generator and sharded ingest.
//!
//! The contracts under test (DESIGN.md §13):
//!
//! * **(seed, index) determinism** — a blogger record is a pure function of
//!   the spec and its index: independently constructed streams agree, and
//!   evaluating one record in isolation equals evaluating it inside a full
//!   sweep (no hidden cross-record state).
//! * **Shard invariance** — the ingested corpus is identical at every shard
//!   count, and spilling to disk never changes a byte.
//! * **Typed validation** — degenerate specs come back as [`ConfigError`]s,
//!   never as panics, for *any* parameter junk in the strategy envelope.

use mass_synth::{
    ingest_sharded, shard_ranges, ConfigError, CorpusSpec, CorpusStream, IngestOptions,
};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = CorpusSpec> {
    (
        (
            1usize..80,  // bloggers
            1usize..10,  // domains
            0.4f64..2.2, // zipf exponent
            0.0f64..4.0, // mean posts per blogger
        ),
        (
            0.0f64..5.0, // mean friends
            0.0f64..1.0, // copy rate
            0.0f64..1.0, // tag prob
            0.0f64..1.0, // sentiment corr
        ),
        (
            0usize..6,    // planted influencers (clamped to bloggers)
            1.0f64..6.0,  // boost
            any::<u64>(), // seed
        ),
    )
        .prop_map(
            |(
                (bloggers, domains, zipf, ppb),
                (friends, copy, tag, corr),
                (planted, boost, seed),
            )| {
                CorpusSpec {
                    bloggers,
                    domains,
                    zipf_exponent: zipf,
                    mean_posts_per_blogger: ppb,
                    mean_friends: friends,
                    copy_rate: copy,
                    tag_sentiment_prob: tag,
                    sentiment_authority_corr: corr,
                    planted_influencers: planted.min(bloggers),
                    influencer_boost: boost,
                    word_mixtures: vec![0.55; domains],
                    seed,
                    ..Default::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn records_are_a_pure_function_of_seed_and_index(spec in arb_spec()) {
        let a = CorpusStream::new(spec.clone()).unwrap();
        let b = CorpusStream::new(spec.clone()).unwrap();
        // Isolated evaluation (stream `b` touches only blogger j) matches a
        // full left-to-right sweep of stream `a` — O(1) state means no
        // record can depend on any other having been generated.
        let sweep: Vec<_> = (0..spec.bloggers).map(|i| a.record(i)).collect();
        for j in [0, spec.bloggers / 2, spec.bloggers - 1] {
            prop_assert_eq!(&b.record(j), &sweep[j], "record {}", j);
        }
    }

    #[test]
    fn different_seeds_differ(spec in arb_spec()) {
        prop_assume!(spec.mean_posts_per_blogger > 1.0 && spec.bloggers > 4);
        let a = CorpusStream::new(spec.clone()).unwrap();
        let b = CorpusStream::new(CorpusSpec { seed: spec.seed ^ 0x5DEECE66D, ..spec.clone() }).unwrap();
        let differs = (0..spec.bloggers).any(|i| a.record(i) != b.record(i));
        prop_assert!(differs, "two seeds produced an identical corpus");
    }

    #[test]
    fn ingest_is_shard_count_invariant(spec in arb_spec(), shards_a in 1usize..9, shards_b in 1usize..9) {
        let stream = CorpusStream::new(spec).unwrap();
        let run = |shards| {
            ingest_sharded(&stream, &IngestOptions { shards, ..Default::default() }).unwrap()
        };
        let a = run(shards_a);
        let b = run(shards_b);
        prop_assert!(a.corpus == b.corpus, "{} vs {} shards", shards_a, shards_b);
        prop_assert_eq!(&a.friends, &b.friends);
        prop_assert_eq!(a.stats.posts(), b.stats.posts());
        prop_assert_eq!(a.stats.comments(), b.stats.comments());
    }

    #[test]
    fn spilling_never_changes_a_byte(spec in arb_spec(), shards in 1usize..7) {
        let stream = CorpusStream::new(spec).unwrap();
        let resident = ingest_sharded(
            &stream,
            &IngestOptions { shards, ..Default::default() },
        ).unwrap();
        let spilled = ingest_sharded(
            &stream,
            &IngestOptions { shards, spill_budget: 0, ..Default::default() },
        ).unwrap();
        prop_assert!(spilled.stats.spill.segments_spilled > 0);
        prop_assert!(resident.corpus == spilled.corpus);
        prop_assert_eq!(&resident.friends, &spilled.friends);
    }

    #[test]
    fn shard_ranges_partition_exactly(n in 0usize..5000, shards in 1usize..40) {
        let ranges = shard_ranges(n, shards);
        prop_assert_eq!(ranges.len(), shards);
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next, "ranges must be contiguous");
            prop_assert!(r.end >= r.start);
            next = r.end;
        }
        prop_assert_eq!(next, n, "ranges must cover 0..n");
        let (lo, hi) = ranges.iter().fold((usize::MAX, 0), |(lo, hi), r| {
            (lo.min(r.len()), hi.max(r.len()))
        });
        prop_assert!(hi - lo <= 1, "balanced: sizes {} and {}", lo, hi);
    }

    // ---- typed validation: degenerate specs error, never panic ----

    #[test]
    fn zero_bloggers_is_a_typed_error(spec in arb_spec()) {
        let spec = CorpusSpec { bloggers: 0, ..spec };
        prop_assert_eq!(spec.validate(), Err(ConfigError::NoBloggers));
        prop_assert!(CorpusStream::new(spec).is_err());
    }

    #[test]
    fn zero_domains_is_a_typed_error(spec in arb_spec()) {
        let spec = CorpusSpec { domains: 0, word_mixtures: Vec::new(), ..spec };
        prop_assert_eq!(spec.validate(), Err(ConfigError::NoDomains));
        prop_assert!(CorpusStream::new(spec).is_err());
    }

    #[test]
    fn non_positive_zipf_is_a_typed_error(spec in arb_spec(), bad in -3.0f64..0.0) {
        let spec = CorpusSpec { zipf_exponent: bad, ..spec };
        prop_assert_eq!(spec.validate(), Err(ConfigError::BadZipfExponent { value: bad }));
        prop_assert!(CorpusStream::new(spec).is_err());
    }

    #[test]
    fn empty_vocab_is_a_typed_error(spec in arb_spec()) {
        let spec = CorpusSpec {
            custom_vocab: Some(vec![Vec::new(); spec.domains]),
            ..spec
        };
        prop_assert!(matches!(spec.validate(), Err(ConfigError::EmptyVocab { domain: 0 })));
        prop_assert!(CorpusStream::new(spec).is_err());
    }

    #[test]
    fn out_of_range_probabilities_are_typed_errors(spec in arb_spec(), bad in 1.0001f64..9.0) {
        let spec = CorpusSpec { copy_rate: bad, ..spec };
        prop_assert!(matches!(
            spec.validate(),
            Err(ConfigError::BadProbability { field: "copy_rate", .. })
        ));
        let nan = CorpusSpec { tag_sentiment_prob: f64::NAN, copy_rate: 0.1, ..spec };
        prop_assert!(matches!(
            nan.validate(),
            Err(ConfigError::BadProbability { field: "tag_sentiment_prob", .. })
        ));
    }

    #[test]
    fn validation_never_panics_on_junk(
        bloggers in 0usize..50,
        domains in 0usize..20,
        zipf in -5.0f64..5.0,
        ppb in -5.0f64..5.0,
        copy in -2.0f64..2.0,
        boost in -2.0f64..8.0,
        mixtures in 0usize..20,
        weird in 0usize..4,
    ) {
        // Mix in the non-finite values a range strategy can't produce.
        let zipf = [zipf, f64::NAN, f64::INFINITY, f64::NEG_INFINITY][weird];
        let spec = CorpusSpec {
            bloggers,
            domains,
            zipf_exponent: zipf,
            mean_posts_per_blogger: ppb,
            copy_rate: copy,
            influencer_boost: boost,
            word_mixtures: vec![0.5; mixtures],
            ..Default::default()
        };
        // Either it validates (and then streaming a record must work) or it
        // reports a typed error — a panic fails the test either way.
        match spec.validate() {
            Ok(()) => {
                let stream = CorpusStream::new(spec).unwrap();
                let _ = stream.record(0);
            }
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
                prop_assert!(CorpusStream::new(spec).is_err());
            }
        }
    }
}
