//! Property-based tests: the generator must produce consistent corpora for
//! any configuration in the supported envelope.

use mass_synth::{generate, SynthConfig};
use mass_types::BloggerId;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        1usize..60,   // bloggers
        0.0f64..6.0,  // mean posts per blogger
        0.5f64..1.5,  // authority exponent
        0.0f64..1.0,  // copy rate
        0.0f64..1.0,  // tag prob
        0.3f64..0.9,  // domain word fraction
        0.0f64..1.0,  // sentiment correlation
        any::<u64>(), // seed
    )
        .prop_map(
            |(bloggers, ppb, exp, copy, tag, dwf, corr, seed)| SynthConfig {
                bloggers,
                mean_posts_per_blogger: ppb,
                authority_exponent: exp,
                copy_rate: copy,
                tag_sentiment_prob: tag,
                domain_word_fraction: dwf,
                sentiment_authority_corr: corr,
                seed,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_config_generates_a_valid_corpus(cfg in arb_config()) {
        let out = generate(&cfg);
        prop_assert!(out.dataset.validate().is_ok());
        prop_assert_eq!(out.dataset.bloggers.len(), cfg.bloggers);
        prop_assert_eq!(out.truth.len(), cfg.bloggers);
    }

    #[test]
    fn truth_is_well_formed(cfg in arb_config()) {
        let out = generate(&cfg);
        let max = out.truth.authority.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!((max - 1.0).abs() < 1e-9, "authority max {max}");
        for (i, rel) in out.truth.domain_relevance.iter().enumerate() {
            let sum: f64 = rel.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "relevance row {i} sums to {sum}");
            prop_assert!(rel.iter().all(|&r| r >= 0.0));
            prop_assert!(out.truth.primary_domain[i].index() < 10);
        }
    }

    #[test]
    fn generation_is_deterministic(cfg in arb_config()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.dataset, b.dataset);
        prop_assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn no_self_comments_or_dangling_refs(cfg in arb_config()) {
        let out = generate(&cfg);
        for post in &out.dataset.posts {
            for c in &post.comments {
                prop_assert!(c.commenter != post.author);
                prop_assert!(c.commenter.index() < cfg.bloggers);
            }
        }
    }

    #[test]
    fn truth_top_k_is_a_valid_ranking(cfg in arb_config(), k in 1usize..10) {
        let out = generate(&cfg);
        let top = out.truth.top_k_general(k);
        prop_assert_eq!(top.len(), k.min(cfg.bloggers));
        for w in top.windows(2) {
            prop_assert!(
                out.truth.true_general_score(w[0]) >= out.truth.true_general_score(w[1])
            );
        }
        // The #1 has the max authority.
        if let Some(&first) = top.first() {
            let max = (0..cfg.bloggers)
                .map(|i| out.truth.authority[i])
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((out.truth.true_general_score(first) - max).abs() < 1e-12);
        }
        let _ = BloggerId::new(0);
    }
}
