//! Keyword search: an inverted index with BM25 ranking.
//!
//! The demo UI lets a business partner type free text; beyond classifying
//! it into domains (Scenario 1), a production blogger-mining system also
//! needs plain *retrieval* — which posts talk about this? The index here is
//! the standard IR workhorse: per-term postings with term frequencies and
//! BM25 scoring (k₁ = 1.2, b = 0.75).

use crate::tokenize::tokenize;
use std::collections::HashMap;

/// BM25 parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (classic 1.2).
    pub k1: f64,
    /// Length normalisation strength (classic 0.75).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// An inverted index over a document collection.
#[derive(Clone, Debug, Default)]
pub struct InvertedIndex {
    /// term → `(doc id, term frequency)` postings, doc ids ascending.
    postings: HashMap<String, Vec<(u32, u32)>>,
    /// Token count per document.
    doc_len: Vec<u32>,
    /// Mean document length.
    avg_len: f64,
}

impl InvertedIndex {
    /// Builds an index over documents in id order.
    pub fn build<I, S>(docs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut index = InvertedIndex::default();
        for doc in docs {
            index.push(doc.as_ref());
        }
        index
    }

    /// Appends one document, returning its id. Ids are dense and stable, so
    /// the index can mirror a growing post list.
    pub fn push(&mut self, text: &str) -> usize {
        let id = self.doc_len.len();
        let tokens = tokenize(text);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0) += 1;
        }
        let len: u32 = tf.values().sum();
        for (term, count) in tf {
            self.postings
                .entry(term)
                .or_default()
                .push((id as u32, count));
        }
        let n = self.doc_len.len() as f64;
        self.avg_len = (self.avg_len * n + f64::from(len)) / (n + 1.0);
        self.doc_len.push(len);
        id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_len.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// Distinct terms indexed.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// BM25 search: the top-k documents for a free-text query, best first.
    /// Ties break toward the lower document id.
    pub fn search(&self, query: &str, k: usize, params: &Bm25Params) -> Vec<(usize, f64)> {
        let n = self.doc_len.len() as f64;
        if n == 0.0 || k == 0 {
            return Vec::new();
        }
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for term in tokenize(query) {
            let Some(postings) = self.postings.get(&term) else {
                continue;
            };
            let df = postings.len() as f64;
            // BM25 idf, floored at a small positive value so ubiquitous
            // terms cannot produce negative scores.
            let idf = (((n - df + 0.5) / (df + 0.5)) + 1.0).ln().max(1e-6);
            for &(doc, tf) in postings {
                let tf = f64::from(tf);
                let len_norm = 1.0 - params.b
                    + params.b * f64::from(self.doc_len[doc as usize]) / self.avg_len.max(1.0);
                let score = idf * (tf * (params.k1 + 1.0)) / (tf + params.k1 * len_norm);
                *scores.entry(doc).or_insert(0.0) += score;
            }
        }
        let mut ranked: Vec<(usize, f64)> =
            scores.into_iter().map(|(d, s)| (d as usize, s)).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        InvertedIndex::build([
            "travel hotel flight booking for the summer beach vacation",
            "football match result and the league table",
            "hotel review: the beach hotel was wonderful",
            "compiler internals and code generation",
        ])
    }

    #[test]
    fn finds_matching_documents() {
        let ix = index();
        let hits = ix.search("beach hotel", 10, &Bm25Params::default());
        let ids: Vec<usize> = hits.iter().map(|(d, _)| *d).collect();
        assert!(ids.contains(&0) && ids.contains(&2), "{ids:?}");
        assert!(!ids.contains(&1));
        assert!(!ids.contains(&3));
    }

    #[test]
    fn repeated_term_ranks_higher() {
        let ix = index();
        let hits = ix.search("hotel", 10, &Bm25Params::default());
        // Doc 2 mentions "hotel" twice (and is shorter) → first.
        assert_eq!(hits[0].0, 2, "{hits:?}");
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let ix = InvertedIndex::build([
            "common word soup with compiler inside",
            "common word soup",
            "common word soup",
            "common word soup",
        ]);
        let hits = ix.search("common compiler", 4, &Bm25Params::default());
        assert_eq!(hits[0].0, 0, "doc with the rare term must lead: {hits:?}");
    }

    #[test]
    fn no_match_returns_empty() {
        let ix = index();
        assert!(ix.search("zeppelin", 5, &Bm25Params::default()).is_empty());
        assert!(ix.search("", 5, &Bm25Params::default()).is_empty());
        assert!(ix.search("hotel", 0, &Bm25Params::default()).is_empty());
    }

    #[test]
    fn empty_index() {
        let ix = InvertedIndex::default();
        assert!(ix.is_empty());
        assert!(ix.search("anything", 3, &Bm25Params::default()).is_empty());
    }

    #[test]
    fn incremental_push_matches_batch_build() {
        let docs = ["alpha beta", "beta gamma", "gamma alpha beta"];
        let batch = InvertedIndex::build(docs);
        let mut inc = InvertedIndex::default();
        for d in docs {
            inc.push(d);
        }
        assert_eq!(inc.len(), batch.len());
        assert_eq!(inc.vocabulary_size(), batch.vocabulary_size());
        let q = "beta alpha";
        let a = batch.search(q, 3, &Bm25Params::default());
        let b = inc.search(q, 3, &Bm25Params::default());
        assert_eq!(a, b);
    }

    #[test]
    fn scores_are_positive_and_sorted() {
        let ix = index();
        let hits = ix.search("the hotel beach travel league", 10, &Bm25Params::default());
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for (_, s) in &hits {
            assert!(*s > 0.0);
        }
    }

    #[test]
    fn ties_break_by_doc_id() {
        let ix = InvertedIndex::build(["same text here", "same text here"]);
        let hits = ix.search("same text", 2, &Bm25Params::default());
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }
}
