//! Comment-attitude analysis (the paper's sentiment factor `SF`).
//!
//! Section II: comments are positive ("agree", "support", "conform"),
//! negative, or neutral, mapped to factors 1.0 / 0.1 / 0.5. The analyzer is
//! a lexicon vote with a two-token negation window, which is the level of
//! technique contemporary with the paper (2010 blog mining used lexicons,
//! not learned models).

use crate::intern::{Interner, TermId};
use crate::tokenize::tokenize_keep_stopwords;
use mass_types::Sentiment;
use std::collections::HashSet;

/// Positive seed words; the first three are the paper's own examples.
const POSITIVE_WORDS: &[&str] = &[
    "agree",
    "support",
    "conform",
    "amazing",
    "awesome",
    "beautiful",
    "best",
    "brilliant",
    "congrats",
    "congratulations",
    "cool",
    "enjoy",
    "enjoyed",
    "excellent",
    "fantastic",
    "favorite",
    "glad",
    "good",
    "great",
    "helpful",
    "impressive",
    "informative",
    "inspiring",
    "interesting",
    "like",
    "liked",
    "love",
    "loved",
    "nice",
    "perfect",
    "recommend",
    "right",
    "thank",
    "thanks",
    "true",
    "useful",
    "well",
    "wonderful",
    "wow",
    "yes",
];

/// Negative seed words.
const NEGATIVE_WORDS: &[&str] = &[
    "awful",
    "bad",
    "boring",
    "disagree",
    "disappointed",
    "disappointing",
    "dislike",
    "doubt",
    "fail",
    "failed",
    "false",
    "hate",
    "horrible",
    "incorrect",
    "misleading",
    "mistake",
    "nonsense",
    "object",
    "oppose",
    "poor",
    "reject",
    "sad",
    "stupid",
    "terrible",
    "ugly",
    "useless",
    "waste",
    "worst",
    "wrong",
];

/// Negation words that flip the polarity of the next few tokens.
const NEGATIONS: &[&str] = &[
    "not", "no", "never", "cannot", "cant", "dont", "doesnt", "isnt", "wont", "didnt",
];

/// How many tokens after a negation have their polarity flipped.
const NEGATION_WINDOW: usize = 2;

/// Lexicon-based sentiment classifier.
///
/// Classification is a vote: each positive word counts +1, each negative
/// word −1, and a word within `NEGATION_WINDOW` (2) tokens of a negation has
/// its sign flipped ("not good" → −1, "never disappointed" → +1). Ties and
/// zero scores are [`Sentiment::Neutral`].
#[derive(Clone, Debug)]
pub struct SentimentLexicon {
    positive: HashSet<String>,
    negative: HashSet<String>,
    negations: HashSet<String>,
}

impl Default for SentimentLexicon {
    fn default() -> Self {
        SentimentLexicon {
            positive: POSITIVE_WORDS.iter().map(|s| s.to_string()).collect(),
            negative: NEGATIVE_WORDS.iter().map(|s| s.to_string()).collect(),
            negations: NEGATIONS.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl SentimentLexicon {
    /// A lexicon with extra domain-specific polarity words on top of the
    /// defaults (e.g. emoticon transliterations a crawler produces).
    pub fn with_extra<I, J>(positive: I, negative: J) -> Self
    where
        I: IntoIterator<Item = String>,
        J: IntoIterator<Item = String>,
    {
        let mut lex = Self::default();
        lex.positive.extend(positive);
        lex.negative.extend(negative);
        lex
    }

    /// The signed vote for a text: > 0 positive, < 0 negative, 0 neutral.
    pub fn score(&self, text: &str) -> i32 {
        let tokens = tokenize_keep_stopwords(text);
        let mut score = 0i32;
        let mut negate_until: Option<usize> = None;
        for (i, tok) in tokens.iter().enumerate() {
            if self.negations.contains(tok) {
                negate_until = Some(i + NEGATION_WINDOW);
                continue;
            }
            let negated = negate_until.is_some_and(|until| i <= until);
            let polarity = if self.positive.contains(tok) {
                1
            } else if self.negative.contains(tok) {
                -1
            } else {
                0
            };
            score += if negated { -polarity } else { polarity };
        }
        score
    }

    /// Classifies a comment into the paper's three attitude classes.
    pub fn classify(&self, text: &str) -> Sentiment {
        match self.score(text) {
            s if s > 0 => Sentiment::Positive,
            s if s < 0 => Sentiment::Negative,
            _ => Sentiment::Neutral,
        }
    }

    /// The sentiment factor `SF` for a comment text
    /// (1.0 / 0.5 / 0.1 per the paper).
    pub fn factor(&self, text: &str) -> f64 {
        self.classify(text).factor()
    }

    /// Compiles the lexicon against an interner's vocabulary: one table
    /// probe per distinct term, then scoring interned token sequences is a
    /// plain array walk with no hashing. Same vote, same window, same
    /// precedence (negation > positive > negative) as [`Self::score`].
    pub fn compile(&self, interner: &Interner) -> CompiledSentiment {
        let polarity = (0..interner.len() as u32)
            .map(|id| {
                let t = interner.resolve(id);
                if self.negations.contains(t) {
                    NEGATION_MARK
                } else if self.positive.contains(t) {
                    1
                } else if self.negative.contains(t) {
                    -1
                } else {
                    0
                }
            })
            .collect();
        CompiledSentiment { polarity }
    }
}

/// Per-[`TermId`] marker for negation words in [`CompiledSentiment`].
const NEGATION_MARK: i8 = 2;

/// A [`SentimentLexicon`] flattened to a per-term polarity table over an
/// interner's vocabulary. Scores interned token sequences with results
/// identical to the string lexicon on the equivalent raw text.
#[derive(Clone, Debug)]
pub struct CompiledSentiment {
    /// Interner id → +1 (positive), −1 (negative), [`NEGATION_MARK`], or 0.
    polarity: Vec<i8>,
}

impl CompiledSentiment {
    /// The signed vote for a stopword-keeping interned token sequence —
    /// exactly [`SentimentLexicon::score`] on the text those tokens came
    /// from.
    pub fn score_ids(&self, ids: &[TermId]) -> i32 {
        let mut score = 0i32;
        let mut negate_until: Option<usize> = None;
        for (i, &t) in ids.iter().enumerate() {
            let p = self.polarity[t as usize];
            if p == NEGATION_MARK {
                negate_until = Some(i + NEGATION_WINDOW);
                continue;
            }
            let negated = negate_until.is_some_and(|until| i <= until);
            let polarity = p as i32;
            score += if negated { -polarity } else { polarity };
        }
        score
    }

    /// The attitude class for an interned token sequence.
    pub fn classify_ids(&self, ids: &[TermId]) -> Sentiment {
        match self.score_ids(ids) {
            s if s > 0 => Sentiment::Positive,
            s if s < 0 => Sentiment::Negative,
            _ => Sentiment::Neutral,
        }
    }

    /// The sentiment factor `SF` for an interned token sequence.
    pub fn factor_ids(&self, ids: &[TermId]) -> f64 {
        self.classify_ids(ids).factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_seed_words_are_positive() {
        let lex = SentimentLexicon::default();
        for w in ["agree", "support", "conform"] {
            assert_eq!(lex.classify(w), Sentiment::Positive, "{w}");
        }
    }

    #[test]
    fn clear_negative() {
        let lex = SentimentLexicon::default();
        assert_eq!(
            lex.classify("this is terrible and wrong"),
            Sentiment::Negative
        );
        assert_eq!(lex.classify("I disagree completely"), Sentiment::Negative);
    }

    #[test]
    fn neutral_when_no_signal_or_tied() {
        let lex = SentimentLexicon::default();
        assert_eq!(
            lex.classify("the post discusses databases"),
            Sentiment::Neutral
        );
        assert_eq!(lex.classify("good but wrong"), Sentiment::Neutral);
        assert_eq!(lex.classify(""), Sentiment::Neutral);
    }

    #[test]
    fn negation_flips_polarity() {
        let lex = SentimentLexicon::default();
        assert_eq!(lex.classify("not good"), Sentiment::Negative);
        assert_eq!(lex.classify("never disappointed"), Sentiment::Positive);
        assert_eq!(lex.classify("i don't agree"), Sentiment::Negative);
    }

    #[test]
    fn negation_window_is_bounded() {
        let lex = SentimentLexicon::default();
        // "good" is 4 tokens after "not": outside the window, stays positive.
        assert_eq!(
            lex.classify("not that it matters really good"),
            Sentiment::Positive
        );
    }

    #[test]
    fn factors_match_paper_values() {
        let lex = SentimentLexicon::default();
        assert_eq!(lex.factor("I agree and support this"), 1.0);
        assert_eq!(lex.factor("meh whatever"), 0.5);
        assert_eq!(lex.factor("utter nonsense, wrong"), 0.1);
    }

    #[test]
    fn votes_accumulate() {
        let lex = SentimentLexicon::default();
        assert!(lex.score("great great terrible") > 0);
        assert!(lex.score("terrible terrible great") < 0);
    }

    #[test]
    fn extra_words_extend_lexicon() {
        let lex =
            SentimentLexicon::with_extra(vec!["stonks".to_string()], vec!["cringe".to_string()]);
        assert_eq!(lex.classify("stonks"), Sentiment::Positive);
        assert_eq!(lex.classify("cringe"), Sentiment::Negative);
        // defaults still present
        assert_eq!(lex.classify("agree"), Sentiment::Positive);
    }

    #[test]
    fn case_insensitive_via_tokenizer() {
        let lex = SentimentLexicon::default();
        assert_eq!(lex.classify("AGREE!"), Sentiment::Positive);
    }

    #[test]
    fn compiled_matches_string_lexicon() {
        let lex = SentimentLexicon::default();
        let texts = [
            "not good",
            "never disappointed",
            "i don't agree",
            "not that it matters really good",
            "great great terrible",
            "good but wrong",
            "no no never good bad",
            "",
            "AGREE!",
        ];
        let mut interner = Interner::new();
        let ids: Vec<Vec<u32>> = texts
            .iter()
            .map(|t| {
                tokenize_keep_stopwords(t)
                    .iter()
                    .map(|w| interner.intern(w))
                    .collect()
            })
            .collect();
        let compiled = lex.compile(&interner);
        for (text, ids) in texts.iter().zip(&ids) {
            assert_eq!(
                lex.score(text),
                compiled.score_ids(ids),
                "score diverged on {text:?}"
            );
            assert_eq!(lex.classify(text), compiled.classify_ids(ids));
            assert_eq!(
                lex.factor(text).to_bits(),
                compiled.factor_ids(ids).to_bits()
            );
        }
    }
}
