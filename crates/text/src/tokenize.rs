//! Word tokenization and term counting.

use crate::stopwords::is_stopword;
use std::collections::HashMap;

/// Lowercased word tokens with stopwords removed — the classifier's input.
///
/// A token is a maximal run of alphanumeric characters; apostrophes inside
/// words are dropped ("it's" → "its" → filtered as a stopword). Tokens of a
/// single character are kept only if they are digits (so "C" the language
/// vanishes but "3" in "web 3" survives); this matches how sparse blog text
/// is usually cleaned.
pub fn tokenize(text: &str) -> Vec<String> {
    raw_tokens(text).filter(|t| !is_stopword(t)).collect()
}

/// Like [`tokenize`] but keeps stopwords — the sentiment analyzer needs
/// negation words ("not", "never") in place.
pub fn tokenize_keep_stopwords(text: &str) -> Vec<String> {
    raw_tokens(text).collect()
}

fn raw_tokens(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !(c.is_alphanumeric() || c == '\''))
        .map(|w| w.replace('\'', "").to_lowercase())
        .filter(|w| w.len() > 1 || w.chars().all(|c| c.is_ascii_digit() && !w.is_empty()))
        .filter(|w| !w.is_empty())
}

/// A bag-of-words: term → occurrence count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TermCounts {
    counts: HashMap<String, u32>,
    total: u32,
}

impl TermCounts {
    /// Counts the (stopword-filtered) tokens of `text`.
    pub fn from_text(text: &str) -> Self {
        let mut tc = TermCounts::default();
        for t in tokenize(text) {
            tc.add(t);
        }
        tc
    }

    /// Counts an explicit token stream.
    pub fn from_tokens<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut tc = TermCounts::default();
        for t in tokens {
            tc.add(t);
        }
        tc
    }

    /// Adds one occurrence of `term`.
    pub fn add(&mut self, term: String) {
        *self.counts.entry(term).or_insert(0) += 1;
        self.total += 1;
    }

    /// Occurrences of `term`.
    pub fn get(&self, term: &str) -> u32 {
        self.counts.get(term).copied().unwrap_or(0)
    }

    /// Total token count.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of distinct terms.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates `(term, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Cosine similarity between two bags — used by interest matching.
    pub fn cosine(&self, other: &TermCounts) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let (small, large) = if self.distinct() <= other.distinct() {
            (self, other)
        } else {
            (other, self)
        };
        let dot: f64 = small
            .iter()
            .map(|(t, c)| c as f64 * large.get(t) as f64)
            .sum();
        let norm = |tc: &TermCounts| {
            tc.iter()
                .map(|(_, c)| (c as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let denom = norm(self) * norm(other);
        if denom == 0.0 {
            0.0
        } else {
            dot / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_filters() {
        let tokens = tokenize("The Quick BROWN fox, and the lazy dog!");
        assert_eq!(tokens, vec!["quick", "brown", "fox", "lazy", "dog"]);
    }

    #[test]
    fn apostrophes_folded() {
        let tokens = tokenize("it's Amery's blog");
        assert_eq!(tokens, vec!["amerys", "blog"]);
    }

    #[test]
    fn digits_survive_single_char_filter() {
        let tokens = tokenize("web 3 rocks x");
        assert_eq!(tokens, vec!["web", "3", "rocks"]);
    }

    #[test]
    fn unicode_words_kept() {
        let tokens = tokenize("旅行 blog über café");
        assert_eq!(tokens, vec!["旅行", "blog", "über", "café"]);
    }

    #[test]
    fn keep_stopwords_variant() {
        let tokens = tokenize_keep_stopwords("this is not good");
        assert_eq!(tokens, vec!["this", "is", "not", "good"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn term_counts_basics() {
        let tc = TermCounts::from_text("travel travel hotel");
        assert_eq!(tc.get("travel"), 2);
        assert_eq!(tc.get("hotel"), 1);
        assert_eq!(tc.get("absent"), 0);
        assert_eq!(tc.total(), 3);
        assert_eq!(tc.distinct(), 2);
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = TermCounts::from_text("sports football match");
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let a = TermCounts::from_text("sports football");
        let b = TermCounts::from_text("medicine doctor");
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded() {
        let a = TermCounts::from_text("travel hotel flight hotel");
        let b = TermCounts::from_text("hotel resort travel");
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab < 1.0);
    }

    #[test]
    fn cosine_with_empty_is_zero() {
        let a = TermCounts::from_text("x y");
        let empty = TermCounts::default();
        assert_eq!(a.cosine(&empty), 0.0);
        assert_eq!(empty.cosine(&a), 0.0);
    }
}
