//! Word tokenization and term counting.

use crate::stopwords::is_stopword;
use std::collections::HashMap;

/// Lowercased word tokens with stopwords removed — the classifier's input.
///
/// A token is a maximal run of alphanumeric characters; apostrophes inside
/// words are dropped ("it's" → "its" → filtered as a stopword). Tokens of a
/// single character are kept only if they are digits (so "C" the language
/// vanishes but "3" in "web 3" survives); this matches how sparse blog text
/// is usually cleaned.
pub fn tokenize(text: &str) -> Vec<String> {
    raw_tokens(text).filter(|t| !is_stopword(t)).collect()
}

/// Like [`tokenize`] but keeps stopwords — the sentiment analyzer needs
/// negation words ("not", "never") in place.
pub fn tokenize_keep_stopwords(text: &str) -> Vec<String> {
    raw_tokens(text).collect()
}

fn raw_tokens(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !(c.is_alphanumeric() || c == '\''))
        .map(|w| w.replace('\'', "").to_lowercase())
        .filter(|w| keep_token(w))
}

/// The single-char filter: a normalized word survives iff it is longer than
/// one byte, or its one byte is an ASCII digit ("3" stays, "c" and "" go).
/// A one-byte token is necessarily one ASCII char, so checking the first
/// byte is exact; multi-byte single chars ("旅") pass the length test.
fn keep_token(w: &str) -> bool {
    w.len() > 1 || w.as_bytes().first().is_some_and(|b| b.is_ascii_digit())
}

/// Normalizes one raw word in place: strip apostrophes, lowercase, apply the
/// single-char filter. Returns `None` for filtered words. ASCII words that
/// are already clean are returned as-is (zero copies); others are built in
/// `scratch`. Byte-for-byte equal to `w.replace('\'', "").to_lowercase()` —
/// including `str::to_lowercase`'s context-sensitive cases (final sigma),
/// which is why the non-ASCII path falls back to it.
fn normalize_word<'a>(word: &'a str, scratch: &'a mut String) -> Option<&'a str> {
    let tok: &str = if word.is_ascii() {
        if word.bytes().all(|b| !b.is_ascii_uppercase() && b != b'\'') {
            word
        } else {
            scratch.clear();
            scratch.extend(
                word.bytes()
                    .filter(|&b| b != b'\'')
                    .map(|b| b.to_ascii_lowercase() as char),
            );
            scratch
        }
    } else {
        scratch.clear();
        if word.contains('\'') {
            let stripped: String = word.chars().filter(|&c| c != '\'').collect();
            scratch.push_str(&stripped.to_lowercase());
        } else {
            scratch.push_str(&word.to_lowercase());
        }
        scratch
    };
    keep_token(tok).then_some(tok)
}

/// Zero-copy tokenization: calls `visit` once per token of `text`, in
/// order, producing the exact token stream of [`tokenize`] (or
/// [`tokenize_keep_stopwords`] when `keep_stopwords`) without allocating a
/// `String` per token. `scratch` is a caller-owned reuse buffer; tokens are
/// only valid for the duration of each `visit` call. This is the hot path
/// the corpus interner feeds on.
pub fn for_each_token(
    text: &str,
    keep_stopwords: bool,
    scratch: &mut String,
    mut visit: impl FnMut(&str),
) {
    for word in text.split(|c: char| !(c.is_alphanumeric() || c == '\'')) {
        if let Some(tok) = normalize_word(word, scratch) {
            if keep_stopwords || !is_stopword(tok) {
                visit(tok);
            }
        }
    }
}

/// A bag-of-words: term → occurrence count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TermCounts {
    counts: HashMap<String, u32>,
    total: u32,
}

impl TermCounts {
    /// Counts the (stopword-filtered) tokens of `text`.
    pub fn from_text(text: &str) -> Self {
        let mut tc = TermCounts::default();
        for t in tokenize(text) {
            tc.add(t);
        }
        tc
    }

    /// Counts an explicit token stream.
    pub fn from_tokens<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut tc = TermCounts::default();
        for t in tokens {
            tc.add(t);
        }
        tc
    }

    /// Adds one occurrence of `term`.
    pub fn add(&mut self, term: String) {
        *self.counts.entry(term).or_insert(0) += 1;
        self.total += 1;
    }

    /// Occurrences of `term`.
    pub fn get(&self, term: &str) -> u32 {
        self.counts.get(term).copied().unwrap_or(0)
    }

    /// Total token count.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of distinct terms.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates `(term, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Cosine similarity between two bags — used by interest matching.
    pub fn cosine(&self, other: &TermCounts) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let (small, large) = if self.distinct() <= other.distinct() {
            (self, other)
        } else {
            (other, self)
        };
        let dot: f64 = small
            .iter()
            .map(|(t, c)| c as f64 * large.get(t) as f64)
            .sum();
        let norm = |tc: &TermCounts| {
            tc.iter()
                .map(|(_, c)| (c as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let denom = norm(self) * norm(other);
        if denom == 0.0 {
            0.0
        } else {
            dot / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_filters() {
        let tokens = tokenize("The Quick BROWN fox, and the lazy dog!");
        assert_eq!(tokens, vec!["quick", "brown", "fox", "lazy", "dog"]);
    }

    #[test]
    fn apostrophes_folded() {
        let tokens = tokenize("it's Amery's blog");
        assert_eq!(tokens, vec!["amerys", "blog"]);
    }

    #[test]
    fn digits_survive_single_char_filter() {
        let tokens = tokenize("web 3 rocks x");
        assert_eq!(tokens, vec!["web", "3", "rocks"]);
    }

    #[test]
    fn unicode_words_kept() {
        let tokens = tokenize("旅行 blog über café");
        assert_eq!(tokens, vec!["旅行", "blog", "über", "café"]);
    }

    #[test]
    fn keep_stopwords_variant() {
        let tokens = tokenize_keep_stopwords("this is not good");
        assert_eq!(tokens, vec!["this", "is", "not", "good"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn term_counts_basics() {
        let tc = TermCounts::from_text("travel travel hotel");
        assert_eq!(tc.get("travel"), 2);
        assert_eq!(tc.get("hotel"), 1);
        assert_eq!(tc.get("absent"), 0);
        assert_eq!(tc.total(), 3);
        assert_eq!(tc.distinct(), 2);
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = TermCounts::from_text("sports football match");
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let a = TermCounts::from_text("sports football");
        let b = TermCounts::from_text("medicine doctor");
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded() {
        let a = TermCounts::from_text("travel hotel flight hotel");
        let b = TermCounts::from_text("hotel resort travel");
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab < 1.0);
    }

    /// Golden snapshot: a fixed corpus must produce exactly this token list,
    /// forever. Locks tokenizer behavior (splitting, apostrophe folding,
    /// lowercasing incl. final sigma, single-char and stopword filters)
    /// across the zero-copy rewrite.
    #[test]
    fn golden_snapshot_fixed_corpus() {
        let corpus = "The Quick BROWN fox's den, at web 3.0 — it's NOT \
                      O'Brien's café!  ΣΊΣΥΦΟΣ & ΟΔΥΣΣΕΎΣ wrote 42 blogs; \
                      x y 7 'quoted' STRASSE-straße 旅行日記 über__alles";
        assert_eq!(
            tokenize(corpus),
            vec![
                "quick",
                "brown",
                "foxs",
                "den",
                "web",
                "3",
                "0",
                "not",
                "obriens",
                "café",
                "σίσυφος",
                "οδυσσεύς",
                "wrote",
                "42",
                "blogs",
                "7",
                "quoted",
                "strasse",
                "straße",
                "旅行日記",
                "über",
                "alles",
            ]
        );
        assert_eq!(
            tokenize_keep_stopwords("It's NOT the Best"),
            vec!["its", "not", "the", "best"]
        );
    }

    /// The zero-copy visitor emits the exact stream of the allocating path,
    /// including the borrow-as-is, ASCII-scratch, and unicode fallbacks.
    #[test]
    fn for_each_token_matches_tokenize() {
        for text in [
            "The Quick BROWN fox, and the lazy dog!",
            "it's Amery's blog",
            "web 3 rocks x",
            "旅行 blog über café",
            "ΣΊΣΥΦΟΣ ΟΔΥΣΣΕΎΣ İstanbul",
            "don't can't won't O'Brien's café's",
            "",
            "!!! ... ???",
            "mixed 'ΣΣ' CASE ß ẞ 42 a 7",
        ] {
            let mut scratch = String::new();
            for keep in [false, true] {
                let mut got = Vec::new();
                for_each_token(text, keep, &mut scratch, |t| got.push(t.to_string()));
                let want = if keep {
                    tokenize_keep_stopwords(text)
                } else {
                    tokenize(text)
                };
                assert_eq!(got, want, "diverged on {text:?} keep_stopwords={keep}");
            }
        }
    }

    #[test]
    fn cosine_with_empty_is_zero() {
        let a = TermCounts::from_text("x y");
        let empty = TermCounts::default();
        assert_eq!(a.cosine(&empty), 0.0);
        assert_eq!(empty.cosine(&a), 0.0);
    }
}
