//! The prepared corpus: every post and comment tokenized **exactly once**.
//!
//! [`PreparedCorpus::build`] makes a single pass over a [`Dataset`] and
//! stores, per post, the interned token sequence of its classifier document
//! (`"{title} {text}"`), the token sequence of the body alone (what novelty
//! shingling sees), a CSR document-term count row, and, per comment, the
//! stopword-keeping token sequence the sentiment analyzer consumes. Every
//! downstream stage — NB training and classification, novelty, sentiment,
//! topic discovery — then works on dense `u32` [`TermId`]s instead of
//! re-tokenizing raw text and hashing `String`s (DESIGN.md §10).
//!
//! Determinism: tokenization (the expensive part) fans out over `mass-par`
//! into per-document flat buffers; interning — which assigns ids by first
//! appearance — is a serial second pass in dataset order, so the id mapping
//! and every downstream bit are identical at any thread count.

use crate::intern::{Interner, TermId};
use crate::tokenize::for_each_token;
use mass_obs::field;
use mass_types::Dataset;

/// One document's tokens, flattened into a private buffer before interning.
/// Crate-visible so the sharded builder (`shard` module) reuses the exact
/// tokenization path of the in-memory build.
pub(crate) struct FlatDoc {
    /// All token bytes back to back.
    buf: String,
    /// `ends[j]` = byte offset one past token `j` in `buf`.
    ends: Vec<u32>,
    /// How many leading tokens came from the title.
    pub(crate) title_count: u32,
}

pub(crate) fn flatten(parts: &[&str], keep_stopwords: bool) -> FlatDoc {
    let mut buf = String::with_capacity(parts.iter().map(|p| p.len()).sum());
    let mut ends = Vec::new();
    let mut scratch = String::new();
    let mut title_count = 0;
    for (i, part) in parts.iter().enumerate() {
        for_each_token(part, keep_stopwords, &mut scratch, |t| {
            buf.push_str(t);
            ends.push(buf.len() as u32);
        });
        if i == 0 {
            title_count = ends.len() as u32;
        }
    }
    FlatDoc {
        buf,
        ends,
        title_count,
    }
}

impl FlatDoc {
    pub(crate) fn tokens(&self) -> impl Iterator<Item = &str> {
        let mut start = 0usize;
        self.ends.iter().map(move |&end| {
            let tok = &self.buf[start..end as usize];
            start = end as usize;
            tok
        })
    }
}

/// A dataset's text, interned and indexed for the analysis hot paths.
#[derive(Clone, Debug)]
pub struct PreparedCorpus {
    interner: Interner,
    /// Post classifier documents (title then body tokens), flattened.
    doc_tokens: Vec<TermId>,
    /// `doc_offsets[k]..doc_offsets[k + 1]` = post `k`'s slice of
    /// `doc_tokens`. Length `posts + 1`.
    doc_offsets: Vec<u32>,
    /// Absolute index into `doc_tokens` where post `k`'s body tokens start
    /// (title tokens precede it).
    text_starts: Vec<u32>,
    /// CSR document-term count matrix over post documents: term ids
    /// (ascending within a row) and their counts.
    dt_terms: Vec<TermId>,
    dt_counts: Vec<u32>,
    /// Row offsets, length `posts + 1`.
    dt_offsets: Vec<u32>,
    /// Comment tokens (stopwords kept), flattened in `(post, comment)` order.
    comment_tokens: Vec<TermId>,
    /// Per-comment slice offsets, length `total comments + 1`.
    comment_offsets: Vec<u32>,
    /// `comment_starts[k]` = index of post `k`'s first comment in the
    /// flattened comment space. Length `posts + 1`.
    comment_starts: Vec<u32>,
}

/// Field-by-field equality. Because ids are assigned by first appearance,
/// two corpora are equal iff they observed the same document stream — this
/// is the relation the streamed-ingest differential tests assert.
impl PartialEq for PreparedCorpus {
    fn eq(&self, other: &Self) -> bool {
        self.interner == other.interner
            && self.doc_tokens == other.doc_tokens
            && self.doc_offsets == other.doc_offsets
            && self.text_starts == other.text_starts
            && self.dt_terms == other.dt_terms
            && self.dt_counts == other.dt_counts
            && self.dt_offsets == other.dt_offsets
            && self.comment_tokens == other.comment_tokens
            && self.comment_offsets == other.comment_offsets
            && self.comment_starts == other.comment_starts
    }
}

impl Eq for PreparedCorpus {}

impl PreparedCorpus {
    /// Assembles a corpus from already-interned arrays — the sharded
    /// builder's merge output. Callers (crate-internal only) guarantee the
    /// arrays satisfy the layout invariants documented on the fields.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        interner: Interner,
        doc_tokens: Vec<TermId>,
        doc_offsets: Vec<u32>,
        text_starts: Vec<u32>,
        dt_terms: Vec<TermId>,
        dt_counts: Vec<u32>,
        dt_offsets: Vec<u32>,
        comment_tokens: Vec<TermId>,
        comment_offsets: Vec<u32>,
        comment_starts: Vec<u32>,
    ) -> PreparedCorpus {
        PreparedCorpus {
            interner,
            doc_tokens,
            doc_offsets,
            text_starts,
            dt_terms,
            dt_counts,
            dt_offsets,
            comment_tokens,
            comment_offsets,
            comment_starts,
        }
    }

    /// Tokenizes and interns every post and comment of `ds` once.
    ///
    /// Records the `text.prepare` span and the `text.tokens_interned` /
    /// `text.vocab_size` counters. The result is a pure function of `ds` —
    /// `threads` only fans out the tokenization.
    pub fn build(ds: &Dataset, threads: usize) -> PreparedCorpus {
        let comment_count: usize = ds.posts.iter().map(|p| p.comments.len()).sum();
        let _span = mass_obs::span_with(
            "text.prepare",
            vec![
                field("posts", ds.posts.len() as i64),
                field("comments", comment_count as i64),
            ],
        );
        let ex = mass_par::executor(threads);

        // Phase 1 (parallel): normalize every document into a flat private
        // buffer. No interner access — nothing here is order-sensitive.
        let post_docs: Vec<FlatDoc> =
            ex.par_map(&ds.posts, |p| flatten(&[&p.title, &p.text], false));
        let comment_texts: Vec<&str> = ds
            .posts
            .iter()
            .flat_map(|p| p.comments.iter().map(|c| c.text.as_str()))
            .collect();
        let comment_docs: Vec<FlatDoc> = ex.par_map(&comment_texts, |t| flatten(&[t], true));

        // Phase 2 (serial): intern in dataset order so ids are deterministic.
        let mut interner = Interner::with_capacity(1024);
        let mut doc_tokens = Vec::new();
        let mut doc_offsets = Vec::with_capacity(ds.posts.len() + 1);
        let mut text_starts = Vec::with_capacity(ds.posts.len());
        let mut dt_terms = Vec::new();
        let mut dt_counts = Vec::new();
        let mut dt_offsets = Vec::with_capacity(ds.posts.len() + 1);
        doc_offsets.push(0);
        dt_offsets.push(0);
        let mut row: Vec<TermId> = Vec::new();
        for d in &post_docs {
            let start = doc_tokens.len();
            for tok in d.tokens() {
                doc_tokens.push(interner.intern(tok));
            }
            text_starts.push((start + d.title_count as usize) as u32);
            doc_offsets.push(doc_tokens.len() as u32);
            // Run-length encode the sorted row into the CSR count matrix.
            row.clear();
            row.extend_from_slice(&doc_tokens[start..]);
            row.sort_unstable();
            let mut i = 0;
            while i < row.len() {
                let term = row[i];
                let mut j = i + 1;
                while j < row.len() && row[j] == term {
                    j += 1;
                }
                dt_terms.push(term);
                dt_counts.push((j - i) as u32);
                i = j;
            }
            dt_offsets.push(dt_terms.len() as u32);
        }
        let mut comment_tokens = Vec::new();
        let mut comment_offsets = Vec::with_capacity(comment_docs.len() + 1);
        comment_offsets.push(0);
        for d in &comment_docs {
            for tok in d.tokens() {
                comment_tokens.push(interner.intern(tok));
            }
            comment_offsets.push(comment_tokens.len() as u32);
        }
        let mut comment_starts = Vec::with_capacity(ds.posts.len() + 1);
        comment_starts.push(0);
        for p in &ds.posts {
            comment_starts.push(comment_starts.last().unwrap() + p.comments.len() as u32);
        }

        mass_obs::counter("text.tokens_interned")
            .add((doc_tokens.len() + comment_tokens.len()) as u64);
        mass_obs::counter("text.vocab_size").add(interner.len() as u64);
        PreparedCorpus {
            interner,
            doc_tokens,
            doc_offsets,
            text_starts,
            dt_terms,
            dt_counts,
            dt_offsets,
            comment_tokens,
            comment_offsets,
            comment_starts,
        }
    }

    /// Number of post documents.
    pub fn posts(&self) -> usize {
        self.text_starts.len()
    }

    /// The vocabulary arena.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The term behind `id`.
    pub fn resolve(&self, id: TermId) -> &str {
        self.interner.resolve(id)
    }

    /// Distinct terms across the corpus.
    pub fn vocab_len(&self) -> usize {
        self.interner.len()
    }

    /// Total token occurrences (posts + comments).
    pub fn total_tokens(&self) -> usize {
        self.doc_tokens.len() + self.comment_tokens.len()
    }

    /// Post `k`'s classifier document: title tokens then body tokens,
    /// stopwords removed — the token stream of
    /// `tokenize(&format!("{title} {text}"))`.
    pub fn doc_tokens(&self, k: usize) -> &[TermId] {
        &self.doc_tokens[self.doc_offsets[k] as usize..self.doc_offsets[k + 1] as usize]
    }

    /// Post `k`'s body tokens only — the token stream of `tokenize(text)`,
    /// what novelty shingling consumes.
    pub fn text_tokens(&self, k: usize) -> &[TermId] {
        &self.doc_tokens[self.text_starts[k] as usize..self.doc_offsets[k + 1] as usize]
    }

    /// Post `k`'s CSR document-term row: `(terms, counts)`, term ids
    /// ascending.
    pub fn doc_terms(&self, k: usize) -> (&[TermId], &[u32]) {
        let r = self.dt_offsets[k] as usize..self.dt_offsets[k + 1] as usize;
        (&self.dt_terms[r.clone()], &self.dt_counts[r])
    }

    /// Tokens of comment `j` of post `k`, stopwords kept — the token stream
    /// of `tokenize_keep_stopwords(&comment.text)`.
    pub fn comment_tokens(&self, k: usize, j: usize) -> &[TermId] {
        let c = (self.comment_starts[k] + j as u32) as usize;
        &self.comment_tokens[self.comment_offsets[c] as usize..self.comment_offsets[c + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::{tokenize, tokenize_keep_stopwords};
    use mass_types::{DatasetBuilder, DomainId};

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        let alice = b.blogger("alice");
        let bob = b.blogger("bob");
        let p0 = b.post(
            alice,
            "Hotel Review — Kyoto 旅行",
            "The hotel was great; I'd stay again. Hotel staff spoke café French.",
        );
        b.comment(p0, bob, "I do NOT agree, not great at all", None);
        b.comment(p0, bob, "lovely write-up!", None);
        let p1 = b.post(bob, "", "rust compilers and 3 web frameworks");
        b.comment(p1, alice, "nice", None);
        b.post_in_domain(alice, "Σ test", "", DomainId::new(0));
        b.build().expect("sample dataset is valid")
    }

    #[test]
    fn tokens_match_string_tokenizer_exactly() {
        let ds = sample();
        let c = PreparedCorpus::build(&ds, 1);
        assert_eq!(c.posts(), ds.posts.len());
        for (k, p) in ds.posts.iter().enumerate() {
            let doc: Vec<&str> = c.doc_tokens(k).iter().map(|&t| c.resolve(t)).collect();
            assert_eq!(
                doc,
                tokenize(&format!("{} {}", p.title, p.text)),
                "doc tokens of post {k}"
            );
            let body: Vec<&str> = c.text_tokens(k).iter().map(|&t| c.resolve(t)).collect();
            assert_eq!(body, tokenize(&p.text), "body tokens of post {k}");
            for (j, cm) in p.comments.iter().enumerate() {
                let toks: Vec<&str> = c
                    .comment_tokens(k, j)
                    .iter()
                    .map(|&t| c.resolve(t))
                    .collect();
                assert_eq!(
                    toks,
                    tokenize_keep_stopwords(&cm.text),
                    "comment {j} of post {k}"
                );
            }
        }
    }

    #[test]
    fn doc_term_rows_are_sorted_counts() {
        let ds = sample();
        let c = PreparedCorpus::build(&ds, 1);
        for k in 0..c.posts() {
            let (terms, counts) = c.doc_terms(k);
            assert_eq!(terms.len(), counts.len());
            assert!(terms.windows(2).all(|w| w[0] < w[1]), "row {k} not sorted");
            let total: u32 = counts.iter().sum();
            assert_eq!(total as usize, c.doc_tokens(k).len(), "row {k} counts");
            // Spot-check one term against a naive count.
            if let Some((&t, &n)) = terms.iter().zip(counts).next() {
                let naive = c.doc_tokens(k).iter().filter(|&&x| x == t).count();
                assert_eq!(naive as u32, n);
            }
        }
        // "hotel" appears 3 times in post 0's doc (title + twice in body).
        let hotel = c.interner().get("hotel").unwrap();
        let (terms, counts) = c.doc_terms(0);
        let i = terms.iter().position(|&t| t == hotel).unwrap();
        assert_eq!(counts[i], 3);
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let ds = sample();
        let base = PreparedCorpus::build(&ds, 1);
        for threads in [2, 3, 8] {
            let par = PreparedCorpus::build(&ds, threads);
            assert_eq!(base.doc_tokens, par.doc_tokens, "threads={threads}");
            assert_eq!(base.comment_tokens, par.comment_tokens);
            assert_eq!(base.dt_terms, par.dt_terms);
            assert_eq!(base.dt_counts, par.dt_counts);
            assert_eq!(base.vocab_len(), par.vocab_len());
            for id in 0..base.vocab_len() as u32 {
                assert_eq!(base.resolve(id), par.resolve(id));
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = DatasetBuilder::new().build().unwrap();
        let c = PreparedCorpus::build(&ds, 1);
        assert_eq!(c.posts(), 0);
        assert_eq!(c.total_tokens(), 0);
        assert_eq!(c.vocab_len(), 0);
    }
}
