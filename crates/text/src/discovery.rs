//! Automatic topic discovery (the paper's ref \[6\] integration point).
//!
//! Section II: "The domains can be predefined by the business applications
//! or automatically discovered using existing topic discovery techniques
//! \[6\]." This module implements a 2008-era tag/interest-discovery scheme in
//! the spirit of Li et al.'s tag-based social interest discovery: frequent
//! terms are clustered by document co-occurrence into topics, each topic is
//! labelled by its most frequent term, and documents are assigned topic
//! distributions by cluster overlap. The discovered catalogue can then be
//! fed back into MASS as a [`mass_types::DomainSet`], with a naive-Bayes
//! classifier bootstrapped from the topic assignments.

use crate::intern::{Interner, TermId};
use crate::nb::{NaiveBayes, NaiveBayesTrainer};
use crate::prepared::PreparedCorpus;
use crate::tokenize::tokenize;
use mass_types::DomainSet;
use std::collections::{HashMap, HashSet};

/// One discovered topic: a labelled cluster of co-occurring terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topic {
    /// The cluster's most document-frequent term, used as the domain label.
    pub label: String,
    /// Member terms, most frequent first (includes the label).
    pub terms: Vec<String>,
}

/// Tuning for [`discover_topics`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiscoveryParams {
    /// Number of topics to discover.
    pub topics: usize,
    /// How many of the most document-frequent terms participate in
    /// clustering.
    pub vocabulary: usize,
    /// Seeds must have pairwise co-occurrence *lift* (observed/expected
    /// under independence) below this to count as distinct topics. Lift ≈ 1
    /// means independent; within-topic pairs typically score ≥ 2.
    pub seed_separation: f64,
    /// Minimum lift for a term to join a cluster; weaker terms stay
    /// unassigned.
    pub join_threshold: f64,
    /// A term qualifies as a seed only if at least this many vocabulary
    /// terms clear `join_threshold` against it. Filler words co-occur with
    /// everything at lift ≈ 1, so they have no neighbourhood and are never
    /// seeded.
    pub min_neighbourhood: usize,
}

impl Default for DiscoveryParams {
    fn default() -> Self {
        DiscoveryParams {
            topics: 10,
            vocabulary: 400,
            seed_separation: 1.5,
            join_threshold: 2.0,
            min_neighbourhood: 3,
        }
    }
}

/// A discovered topic model over a corpus.
#[derive(Clone, Debug)]
pub struct TopicModel {
    topics: Vec<Topic>,
    /// term → topic index, for assignment.
    membership: HashMap<String, usize>,
}

impl TopicModel {
    /// The discovered topics.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// Number of topics actually discovered (≤ requested if the corpus is
    /// too homogeneous).
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Whether no topics were discovered (empty corpus).
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// A domain catalogue named after the topic labels, pluggable into the
    /// rest of MASS.
    pub fn domain_set(&self) -> DomainSet {
        DomainSet::new(self.topics.iter().map(|t| t.label.clone()))
    }

    /// A document's topic distribution: normalised count of its tokens that
    /// belong to each cluster. Uniform when nothing matches.
    pub fn assign(&self, text: &str) -> Vec<f64> {
        let n = self.topics.len();
        if n == 0 {
            return Vec::new();
        }
        let mut counts = vec![0.0f64; n];
        let mut total = 0.0;
        for token in tokenize(text) {
            if let Some(&t) = self.membership.get(&token) {
                counts[t] += 1.0;
                total += 1.0;
            }
        }
        if total == 0.0 {
            return vec![1.0 / n as f64; n];
        }
        counts.iter_mut().for_each(|c| *c /= total);
        counts
    }

    /// The dominant topic of a document.
    pub fn classify(&self, text: &str) -> Option<usize> {
        let dist = self.assign(text);
        dist.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
    }

    /// Bootstraps a naive-Bayes classifier by pseudo-labelling the corpus
    /// with the topic assignments and training on it — the hand-off from
    /// discovery to the Post Analyzer's usual classification flow.
    pub fn bootstrap_classifier(&self, docs: &[&str]) -> Option<NaiveBayes> {
        if self.topics.is_empty() || docs.is_empty() {
            return None;
        }
        let mut trainer = NaiveBayesTrainer::new(self.topics.len());
        let mut any = false;
        for doc in docs {
            if let Some(topic) = self.classify(doc) {
                trainer.add_document(topic, doc);
                any = true;
            }
        }
        any.then(|| trainer.build(2))
    }

    /// Maps every id of an interner's vocabulary to its topic index, or
    /// `u32::MAX` for terms outside every cluster — one membership probe per
    /// distinct term instead of one per token.
    pub fn membership_ids(&self, interner: &Interner) -> Vec<u32> {
        (0..interner.len() as u32)
            .map(|id| {
                self.membership
                    .get(interner.resolve(id))
                    .map_or(u32::MAX, |&t| t as u32)
            })
            .collect()
    }

    /// [`Self::assign`] over a prepared document-term row (`topic_of` from
    /// [`Self::membership_ids`]). Counts are whole numbers, so grouping the
    /// per-token 1.0-adds by term is exact and the distribution is
    /// bit-identical to the string path.
    pub fn assign_counts(&self, terms: &[TermId], counts: &[u32], topic_of: &[u32]) -> Vec<f64> {
        let n = self.topics.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out = vec![0.0f64; n];
        let mut total = 0.0;
        for (&t, &c) in terms.iter().zip(counts) {
            let topic = topic_of[t as usize];
            if topic != u32::MAX {
                out[topic as usize] += c as f64;
                total += c as f64;
            }
        }
        if total == 0.0 {
            return vec![1.0 / n as f64; n];
        }
        out.iter_mut().for_each(|c| *c /= total);
        out
    }

    /// [`Self::classify`] over a prepared document-term row.
    pub fn classify_counts(
        &self,
        terms: &[TermId],
        counts: &[u32],
        topic_of: &[u32],
    ) -> Option<usize> {
        let dist = self.assign_counts(terms, counts, topic_of);
        dist.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
    }

    /// [`Self::bootstrap_classifier`] over a prepared corpus — trains the
    /// identical model from the CSR document-term rows without re-tokenizing
    /// a single document.
    pub fn bootstrap_classifier_prepared(&self, corpus: &PreparedCorpus) -> Option<NaiveBayes> {
        if self.topics.is_empty() || corpus.posts() == 0 {
            return None;
        }
        let topic_of = self.membership_ids(corpus.interner());
        let mut trainer = NaiveBayesTrainer::new(self.topics.len());
        let mut any = false;
        for k in 0..corpus.posts() {
            let (terms, counts) = corpus.doc_terms(k);
            if let Some(topic) = self.classify_counts(terms, counts, &topic_of) {
                trainer.add_term_counts(
                    topic,
                    terms
                        .iter()
                        .zip(counts)
                        .map(|(&t, &n)| (corpus.resolve(t), n)),
                );
                any = true;
            }
        }
        any.then(|| trainer.build(2))
    }
}

/// Discovers topics in an untagged corpus by co-occurrence clustering of
/// frequent terms.
pub fn discover_topics(docs: &[&str], params: &DiscoveryParams) -> TopicModel {
    let _span = mass_obs::span_with(
        "text.discover_topics",
        vec![
            mass_obs::field("docs", docs.len()),
            mass_obs::field("topics", params.topics),
        ],
    );
    assert!(params.topics > 0, "must request at least one topic");
    assert!(
        params.vocabulary >= params.topics,
        "vocabulary smaller than topic count"
    );

    // 1. Document frequency over tokenized docs.
    let token_sets: Vec<HashSet<String>> = docs
        .iter()
        .map(|d| tokenize(d).into_iter().collect())
        .collect();
    let mut df: HashMap<&str, u32> = HashMap::new();
    for set in &token_sets {
        for t in set {
            *df.entry(t.as_str()).or_insert(0) += 1;
        }
    }
    // Keep the top-V terms (ties broken lexicographically for determinism),
    // excluding terms that appear in almost every document (no signal).
    let cap = (docs.len() as u32).max(1);
    let mut vocab: Vec<(&str, u32)> = df
        .iter()
        .map(|(&t, &c)| (t, c))
        .filter(|&(_, c)| c >= 2 && c * 10 <= cap * 8) // df < 80%
        .collect();
    vocab.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    vocab.truncate(params.vocabulary);
    if vocab.is_empty() {
        return TopicModel {
            topics: Vec::new(),
            membership: HashMap::new(),
        };
    }

    // 2. Pairwise co-occurrence lift over the kept vocabulary:
    //    lift(a, b) = N·docs(a ∧ b) / (df(a)·df(b)) — 1 under independence,
    //    ≫ 1 for terms of the same topic. Lift (unlike overlap ratios) is
    //    immune to ubiquitous filler terms that co-occur with everything.
    let term_index: HashMap<&str, usize> = vocab
        .iter()
        .enumerate()
        .map(|(i, &(t, _))| (t, i))
        .collect();
    let v = vocab.len();
    let mut cooc = vec![0u32; v * v];
    for set in &token_sets {
        let present: Vec<usize> = set
            .iter()
            .filter_map(|t| term_index.get(t.as_str()).copied())
            .collect();
        for (pos, &a) in present.iter().enumerate() {
            for &b in &present[pos + 1..] {
                cooc[a * v + b] += 1;
                cooc[b * v + a] += 1;
            }
        }
    }
    let terms: Vec<&str> = vocab.iter().map(|&(t, _)| t).collect();
    let dfs: Vec<u32> = vocab.iter().map(|&(_, c)| c).collect();
    cluster_vocab(&terms, &dfs, &cooc, docs.len(), params)
}

/// Discovers topics over a [`PreparedCorpus`] — the same clustering, fed by
/// the CSR document-term rows instead of re-tokenized strings. Produces a
/// model identical to [`discover_topics`] on the equivalent raw documents:
/// document frequencies and co-occurrence counts are integer sums (order
/// independent), the candidate order is fixed by the (df desc, term asc)
/// sort, and the lift arithmetic is shared.
pub fn discover_topics_prepared(corpus: &PreparedCorpus, params: &DiscoveryParams) -> TopicModel {
    let _span = mass_obs::span_with(
        "text.discover_topics",
        vec![
            mass_obs::field("docs", corpus.posts()),
            mass_obs::field("topics", params.topics),
        ],
    );
    assert!(params.topics > 0, "must request at least one topic");
    assert!(
        params.vocabulary >= params.topics,
        "vocabulary smaller than topic count"
    );

    // 1. Document frequency, dense over the interned vocabulary.
    let n = corpus.posts();
    let mut df = vec![0u32; corpus.vocab_len()];
    for k in 0..n {
        for &t in corpus.doc_terms(k).0 {
            df[t as usize] += 1;
        }
    }
    let cap = (n as u32).max(1);
    let mut vocab: Vec<(TermId, u32)> = df
        .iter()
        .enumerate()
        .map(|(id, &c)| (id as TermId, c))
        .filter(|&(_, c)| c >= 2 && c * 10 <= cap * 8) // df < 80%
        .collect();
    vocab.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| corpus.resolve(a.0).cmp(corpus.resolve(b.0)))
    });
    vocab.truncate(params.vocabulary);
    if vocab.is_empty() {
        return TopicModel {
            topics: Vec::new(),
            membership: HashMap::new(),
        };
    }

    // 2. Co-occurrence over kept terms, via a dense id → position map.
    let v = vocab.len();
    let mut pos = vec![u32::MAX; corpus.vocab_len()];
    for (i, &(id, _)) in vocab.iter().enumerate() {
        pos[id as usize] = i as u32;
    }
    let mut cooc = vec![0u32; v * v];
    let mut present: Vec<usize> = Vec::new();
    for k in 0..n {
        present.clear();
        present.extend(corpus.doc_terms(k).0.iter().filter_map(|&t| {
            let p = pos[t as usize];
            (p != u32::MAX).then_some(p as usize)
        }));
        for (i, &a) in present.iter().enumerate() {
            for &b in &present[i + 1..] {
                cooc[a * v + b] += 1;
                cooc[b * v + a] += 1;
            }
        }
    }
    let terms: Vec<&str> = vocab.iter().map(|&(id, _)| corpus.resolve(id)).collect();
    let dfs: Vec<u32> = vocab.iter().map(|&(_, c)| c).collect();
    cluster_vocab(&terms, &dfs, &cooc, n, params)
}

/// Steps 3–4 of discovery, shared by the string and prepared front ends:
/// seed selection and cluster assignment over a kept vocabulary (`terms[i]`
/// with document frequency `df[i]` and co-occurrence row `cooc[i * v ..]`).
fn cluster_vocab(
    terms: &[&str],
    df: &[u32],
    cooc: &[u32],
    docs: usize,
    params: &DiscoveryParams,
) -> TopicModel {
    let v = terms.len();
    let n_docs = docs.max(1) as f64;
    let sim = |a: usize, b: usize| -> f64 {
        let expected = df[a] as f64 * df[b] as f64 / n_docs;
        cooc[a * v + b] as f64 / expected.max(1e-12)
    };

    // 3. Seed selection: frequent terms with a real co-occurrence
    //    neighbourhood, mutually independent of every already-chosen seed.
    let support: Vec<usize> = (0..v)
        .map(|i| {
            (0..v)
                .filter(|&j| j != i && sim(i, j) >= params.join_threshold)
                .count()
        })
        .collect();
    let mut seeds: Vec<usize> = Vec::new();
    for (i, &sup) in support.iter().enumerate() {
        if seeds.len() == params.topics {
            break;
        }
        if sup >= params.min_neighbourhood
            && seeds.iter().all(|&s| sim(i, s) < params.seed_separation)
        {
            seeds.push(i);
        }
    }

    // 4. Assignment: every other vocabulary term joins its most similar
    //    seed's cluster if the similarity clears the join threshold.
    let mut clusters: Vec<Vec<usize>> = seeds.iter().map(|&s| vec![s]).collect();
    for i in 0..v {
        if seeds.contains(&i) {
            continue;
        }
        let best = seeds
            .iter()
            .enumerate()
            .map(|(c, &s)| (c, sim(i, s)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        if let Some((c, s)) = best {
            if s >= params.join_threshold {
                clusters[c].push(i);
            }
        }
    }

    let topics: Vec<Topic> = clusters
        .into_iter()
        .map(|members| Topic {
            label: terms[members[0]].to_string(),
            terms: members.iter().map(|&i| terms[i].to_string()).collect(),
        })
        .collect();
    let membership: HashMap<String, usize> = topics
        .iter()
        .enumerate()
        .flat_map(|(c, t)| t.terms.iter().map(move |term| (term.clone(), c)))
        .collect();
    TopicModel { topics, membership }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three synthetic "domains" with disjoint vocabularies.
    fn corpus() -> Vec<String> {
        let themes: [&[&str]; 3] = [
            &["travel", "hotel", "flight", "beach", "resort"],
            &["football", "match", "team", "goal", "league"],
            &["code", "compiler", "software", "debug", "program"],
        ];
        let mut docs = Vec::new();
        for round in 0..12 {
            for theme in themes {
                let mut doc = String::new();
                for k in 0..4 {
                    doc.push_str(theme[(round + k) % theme.len()]);
                    doc.push(' ');
                }
                doc.push_str("today blog post"); // shared filler
                docs.push(doc);
            }
        }
        docs
    }

    fn model() -> TopicModel {
        let docs = corpus();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        discover_topics(
            &refs,
            &DiscoveryParams {
                topics: 3,
                vocabulary: 50,
                ..Default::default()
            },
        )
    }

    #[test]
    fn discovers_the_planted_topics() {
        let m = model();
        assert_eq!(m.len(), 3);
        // Each theme's vocabulary should live in a single cluster.
        for theme in [
            ["travel", "hotel", "flight"],
            ["football", "match", "team"],
            ["code", "compiler", "software"],
        ] {
            let homes: Vec<Option<usize>> = theme
                .iter()
                .map(|t| {
                    m.topics()
                        .iter()
                        .position(|topic| topic.terms.iter().any(|x| x == t))
                })
                .collect();
            assert!(homes[0].is_some(), "{theme:?} not clustered");
            assert!(
                homes.windows(2).all(|w| w[0] == w[1]),
                "{theme:?} split: {homes:?}"
            );
        }
    }

    #[test]
    fn assignment_peaks_on_the_right_topic() {
        let m = model();
        let dist = m.assign("booked a hotel and a flight to the beach");
        let best = m
            .classify("booked a hotel and a flight to the beach")
            .unwrap();
        assert!(m.topics()[best]
            .terms
            .iter()
            .any(|t| t == "hotel" || t == "travel"));
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unmatched_text_gets_uniform_distribution() {
        let m = model();
        let dist = m.assign("zzz qqq completely unrelated");
        for d in &dist {
            assert!((d - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn domain_set_uses_labels() {
        let m = model();
        let ds = m.domain_set();
        assert_eq!(ds.len(), 3);
        for t in m.topics() {
            assert!(ds.id_of(&t.label).is_some());
        }
    }

    #[test]
    fn bootstrap_classifier_agrees_with_assignments() {
        let docs = corpus();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let m = discover_topics(
            &refs,
            &DiscoveryParams {
                topics: 3,
                vocabulary: 50,
                ..Default::default()
            },
        );
        let nb = m.bootstrap_classifier(&refs).expect("classifier trains");
        let mut agree = 0;
        for doc in &refs {
            if Some(nb.classify(doc)) == m.classify(doc) {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / refs.len() as f64 > 0.9,
            "agreement {agree}/{}",
            refs.len()
        );
    }

    #[test]
    fn empty_corpus_yields_empty_model() {
        let m = discover_topics(&[], &DiscoveryParams::default());
        assert!(m.is_empty());
        assert!(m.assign("anything").is_empty());
        assert!(m.bootstrap_classifier(&[]).is_none());
    }

    #[test]
    fn homogeneous_corpus_collapses_topics() {
        let docs = vec!["same words every time"; 20];
        let m = discover_topics(
            &docs,
            &DiscoveryParams {
                topics: 5,
                ..Default::default()
            },
        );
        assert!(
            m.len() <= 1,
            "found {} topics in a one-theme corpus",
            m.len()
        );
    }

    #[test]
    fn deterministic() {
        let a = model();
        let b = model();
        assert_eq!(a.topics(), b.topics());
    }

    #[test]
    fn prepared_discovery_matches_string_discovery() {
        let docs = corpus();
        let mut b = mass_types::DatasetBuilder::new();
        let blogger = b.blogger("author");
        for d in &docs {
            b.post(blogger, "", d.clone());
        }
        let ds = b.build().unwrap();
        let prepared = PreparedCorpus::build(&ds, 1);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let params = DiscoveryParams {
            topics: 3,
            vocabulary: 50,
            ..Default::default()
        };
        let by_string = discover_topics(&refs, &params);
        let by_corpus = discover_topics_prepared(&prepared, &params);
        assert_eq!(by_string.topics(), by_corpus.topics());

        // Assignment and the bootstrapped classifier agree bit for bit.
        let topic_of = by_string.membership_ids(prepared.interner());
        for (k, doc) in refs.iter().enumerate() {
            let (terms, counts) = prepared.doc_terms(k);
            let a = by_string.assign(doc);
            let b = by_string.assign_counts(terms, counts, &topic_of);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "assignment diverged on doc {k}"
            );
            assert_eq!(
                by_string.classify(doc),
                by_string.classify_counts(terms, counts, &topic_of)
            );
        }
        let nb_string = by_string.bootstrap_classifier(&refs).unwrap();
        let nb_prepared = by_string.bootstrap_classifier_prepared(&prepared).unwrap();
        for doc in &refs {
            assert_eq!(
                nb_string
                    .posterior(doc)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                nb_prepared
                    .posterior(doc)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "bootstrapped models diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn zero_topics_rejected() {
        let _ = discover_topics(
            &["x"],
            &DiscoveryParams {
                topics: 0,
                ..Default::default()
            },
        );
    }
}
