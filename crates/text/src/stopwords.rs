//! English stopword list.
//!
//! A compact list tuned for blog text: frequent function words that carry no
//! domain signal for the classifier. Sentiment-bearing words ("not", "no",
//! "never") are deliberately *excluded* so the sentiment analyzer sees them.

/// Words removed by [`crate::tokenize::tokenize`].
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "s",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "t",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Binary-search membership test; the list above is kept sorted.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted and unique");
    }

    #[test]
    fn membership() {
        assert!(is_stopword("the"));
        assert!(is_stopword("yourselves"));
        assert!(!is_stopword("database"));
        assert!(!is_stopword(""));
    }

    #[test]
    fn negations_are_not_stopwords() {
        for w in ["not", "no", "never", "nothing"] {
            assert!(
                !is_stopword(w),
                "{w} must survive for the sentiment analyzer"
            );
        }
    }
}
