//! Interest-vector mining for the two application scenarios.
//!
//! * **Scenario 1 (business advertisement)**: "We first mine the interest
//!   vector from a user-input advertisement `a_l`, denoted as `iv(a_l)`",
//!   then dot it with each blogger's domain-influence vector.
//! * **Scenario 2 (personalised recommendation)**: "MASS will extract the
//!   domain interest information from the profile" of a new user.
//!
//! Both are the same operation — map free text to a distribution over the
//! domain catalogue — so [`InterestMiner`] wraps the trained naive-Bayes
//! domain classifier and adds thresholding utilities (the Fig. 3 flow needs
//! "the domains mined from the advertisement", i.e. the salient subset, not
//! the full posterior).

use crate::nb::NaiveBayes;
use mass_types::DomainId;

/// Mines interest vectors over a domain catalogue from free text.
#[derive(Clone, Debug)]
pub struct InterestMiner {
    classifier: NaiveBayes,
}

impl InterestMiner {
    /// Wraps a trained domain classifier (same model the Post Analyzer uses,
    /// so advertisements and posts share one vocabulary).
    pub fn new(classifier: NaiveBayes) -> Self {
        InterestMiner { classifier }
    }

    /// Number of domains in the underlying catalogue.
    pub fn domain_count(&self) -> usize {
        self.classifier.classes()
    }

    /// The full interest vector `iv(text)`: a probability distribution over
    /// domains (sums to 1).
    pub fn interest_vector(&self, text: &str) -> Vec<f64> {
        self.classifier.posterior(text)
    }

    /// The salient domains of a text: those whose posterior exceeds
    /// `uniform × lift` (e.g. `lift = 2.0` means "at least twice as likely
    /// as chance"), sorted by decreasing weight.
    pub fn salient_domains(&self, text: &str, lift: f64) -> Vec<(DomainId, f64)> {
        let iv = self.interest_vector(text);
        let threshold = lift / iv.len() as f64;
        let mut out: Vec<(DomainId, f64)> = iv
            .into_iter()
            .enumerate()
            .filter(|&(_, w)| w >= threshold)
            .map(|(i, w)| (DomainId::new(i), w))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("posteriors are finite"));
        out
    }

    /// The single most likely domain of a text.
    pub fn dominant_domain(&self, text: &str) -> DomainId {
        DomainId::new(self.classifier.classify(text))
    }
}

/// Dot product of an interest vector and a blogger's domain-influence vector
/// — `Inf(b_i, a_l) = Inf(b_i, IV) · iv(a_l)` from Scenario 1.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot(interest: &[f64], influence: &[f64]) -> f64 {
    assert_eq!(interest.len(), influence.len(), "vector length mismatch");
    interest.iter().zip(influence).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nb::NaiveBayesTrainer;

    fn miner() -> InterestMiner {
        let mut t = NaiveBayesTrainer::new(3);
        t.add_document(0, "travel hotel flight beach vacation tour airport");
        t.add_document(1, "football basketball match team league goal sports shoes");
        t.add_document(2, "computer code software programming compiler");
        InterestMiner::new(t.build(1))
    }

    #[test]
    fn interest_vector_is_distribution() {
        let m = miner();
        let iv = m.interest_vector("new running shoes for the football team");
        assert_eq!(iv.len(), 3);
        assert!((iv.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(iv[1] > iv[0] && iv[1] > iv[2]);
    }

    #[test]
    fn nike_ad_maps_to_sports() {
        // The paper's running example: Nike would pick Sports.
        let m = miner();
        assert_eq!(
            m.dominant_domain("premium shoes for football and basketball"),
            DomainId::new(1)
        );
    }

    #[test]
    fn salient_domains_thresholded_and_sorted() {
        let m = miner();
        let sal = m.salient_domains("football match at the beach hotel", 1.0);
        assert!(!sal.is_empty());
        for w in sal.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Very high lift keeps only the dominant domain (or none).
        let strict = m.salient_domains("football football football", 2.0);
        assert_eq!(strict.first().map(|p| p.0), Some(DomainId::new(1)));
    }

    #[test]
    fn empty_text_yields_prior_distribution() {
        let m = miner();
        let iv = m.interest_vector("");
        assert!((iv.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[0.5, 0.5], &[2.0, 4.0]), 3.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn domain_count_matches_catalogue() {
        assert_eq!(miner().domain_count(), 3);
    }
}
