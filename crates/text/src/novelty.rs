//! Novelty scoring for the quality facet (`Novelty(b_i, d_k)`).
//!
//! The paper: "We collect a set of words indicating that an article is a
//! copy of other sources, and set Novelty to a value between 0 and 0.1 if
//! the article contains such words, and otherwise we consider the article
//! original and set its Novelty to 1" (Section II, following ref \[2\]'s
//! observation that reproduced content brings little influence).
//!
//! Two signals feed the score:
//!
//! 1. **Copy-indicator words** — "reprinted", "forwarded", "source:", … The
//!    more indicators, the closer the score drops toward 0 (within the
//!    paper's (0, 0.1] band).
//! 2. **Shingle overlap** (optional, corpus-level) — a [`NoveltyDetector`]
//!    indexes 4-token shingles of every post; a post whose shingles mostly
//!    appeared in *earlier* posts is treated as a copy even without marker
//!    words. This catches verbatim reposts the lexicon misses.

use crate::tokenize::tokenize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Phrases that mark a post as reproduced content. Checked against the
/// lowercased text, so multi-word markers work.
const COPY_MARKERS: &[&str] = &[
    "reprinted",
    "repost",
    "reposted",
    "forwarded from",
    "copied from",
    "via ",
    "source:",
    "originally posted",
    "originally published",
    "courtesy of",
    "all rights reserved by the original",
    "zhuanzai", // transliteration of 转载, ubiquitous on 2000s Chinese blogs like MSN Spaces
];

/// Tuning for [`NoveltyDetector`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoveltyParams {
    /// Shingle width in tokens.
    pub shingle_len: usize,
    /// Fraction of shingles that must be previously seen before a post is
    /// treated as a near-duplicate.
    pub duplicate_threshold: f64,
}

impl Default for NoveltyParams {
    fn default() -> Self {
        NoveltyParams {
            shingle_len: 4,
            duplicate_threshold: 0.8,
        }
    }
}

/// Scores the novelty of one post from its text alone (marker words only).
///
/// Returns 1.0 for original posts; for posts with `n ≥ 1` markers returns
/// `0.1 / n`, inside the paper's (0, 0.1] band and decreasing with stronger
/// copy evidence.
pub fn novelty_from_markers(text: &str) -> f64 {
    let lower = text.to_lowercase();
    let hits = COPY_MARKERS.iter().filter(|m| lower.contains(*m)).count();
    if hits == 0 {
        1.0
    } else {
        0.1 / hits as f64
    }
}

/// Corpus-level novelty detector combining marker words with shingle overlap.
///
/// Feed posts in (chronological) order with [`NoveltyDetector::score_and_add`];
/// each call returns the post's novelty given everything seen *before* it,
/// then indexes it. The first copy of a text scores 1.0, later near-verbatim
/// copies fall into the (0, 0.1] band.
#[derive(Debug)]
pub struct NoveltyDetector {
    params: NoveltyParams,
    seen_shingles: HashSet<u64>,
}

impl NoveltyDetector {
    /// Creates a detector.
    ///
    /// # Panics
    /// Panics if `shingle_len == 0` or the threshold is outside (0, 1].
    pub fn new(params: NoveltyParams) -> Self {
        assert!(params.shingle_len > 0, "shingle_len must be positive");
        assert!(
            params.duplicate_threshold > 0.0 && params.duplicate_threshold <= 1.0,
            "duplicate_threshold must be in (0, 1]"
        );
        NoveltyDetector {
            params,
            seen_shingles: HashSet::new(),
        }
    }

    /// Scores `text` against the corpus so far, then adds it to the corpus.
    pub fn score_and_add(&mut self, text: &str) -> f64 {
        let tokens = tokenize(text);
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        self.score_and_add_tokens(text, &refs)
    }

    /// [`Self::score_and_add`] with the tokenization already done — the
    /// prepared-corpus path. `tokens` must be the (stopword-filtered) tokens
    /// of `text`; the raw text is still needed for the marker scan, which is
    /// a substring search, not a token match. Hashing a resolved `&str`
    /// produces the same shingle hash as the owned-`String` path, so mixing
    /// both against one detector is exact.
    pub fn score_and_add_tokens(&mut self, text: &str, tokens: &[&str]) -> f64 {
        let marker_score = novelty_from_markers(text);
        let shingles = self.shingles(tokens);
        let overlap = if shingles.is_empty() {
            0.0
        } else {
            let seen = shingles
                .iter()
                .filter(|s| self.seen_shingles.contains(s))
                .count();
            seen as f64 / shingles.len() as f64
        };
        self.seen_shingles.extend(shingles);

        if overlap >= self.params.duplicate_threshold {
            // Near-duplicate: squeeze into (0, 0.1], lower for higher overlap.
            let dup_score =
                0.1 * (1.0 - overlap).max(0.01) / (1.0 - self.params.duplicate_threshold).max(0.01);
            marker_score.min(dup_score.clamp(0.001, 0.1))
        } else {
            marker_score
        }
    }

    /// Distinct shingles indexed so far.
    pub fn indexed_shingles(&self) -> usize {
        self.seen_shingles.len()
    }

    fn shingles(&self, tokens: &[&str]) -> Vec<u64> {
        if tokens.len() < self.params.shingle_len {
            // Short posts hash as a single whole-text shingle.
            if tokens.is_empty() {
                return Vec::new();
            }
            return vec![hash_tokens(tokens)];
        }
        tokens
            .windows(self.params.shingle_len)
            .map(hash_tokens)
            .collect()
    }
}

impl Default for NoveltyDetector {
    fn default() -> Self {
        Self::new(NoveltyParams::default())
    }
}

// `&str` hashes exactly like the `String` it was resolved from (bytes plus
// the 0xff length terminator), so interned and owned token streams index
// into the same shingle space.
fn hash_tokens(tokens: &[&str]) -> u64 {
    let mut h = DefaultHasher::new();
    for t in tokens {
        t.hash(&mut h);
        0xffu8.hash(&mut h); // separator so ["ab","c"] != ["a","bc"]
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_text_scores_one() {
        assert_eq!(
            novelty_from_markers("my own thoughts on rust databases"),
            1.0
        );
    }

    #[test]
    fn marker_words_drop_into_paper_band() {
        let s = novelty_from_markers("Reprinted with permission");
        assert!(s > 0.0 && s <= 0.1);
        let s2 = novelty_from_markers("reprinted, forwarded from a friend, source: somewhere");
        assert!(s2 < s);
        assert!(s2 > 0.0);
    }

    #[test]
    fn markers_case_insensitive() {
        assert!(novelty_from_markers("REPOSTED from elsewhere") <= 0.1);
    }

    #[test]
    fn detector_first_copy_is_novel_second_is_not() {
        let mut d = NoveltyDetector::default();
        let text = "a long enough post about travel plans in summer with many details \
                    covering hotels flights and local food recommendations for everyone";
        assert_eq!(d.score_and_add(text), 1.0);
        let dup = d.score_and_add(text);
        assert!(dup > 0.0 && dup <= 0.1, "duplicate scored {dup}");
    }

    #[test]
    fn partial_overlap_below_threshold_is_original() {
        let mut d = NoveltyDetector::default();
        d.score_and_add("alpha beta gamma delta epsilon zeta");
        let s = d.score_and_add("alpha beta gamma delta totally different ending here now");
        assert_eq!(s, 1.0);
    }

    #[test]
    fn short_posts_handled() {
        let mut d = NoveltyDetector::default();
        assert_eq!(d.score_and_add("hi"), 1.0);
        let s = d.score_and_add("hi");
        assert!(s <= 0.1);
        assert_eq!(d.score_and_add(""), 1.0); // empty: no shingles, no markers
    }

    #[test]
    fn indexed_shingles_grow() {
        let mut d = NoveltyDetector::default();
        assert_eq!(d.indexed_shingles(), 0);
        d.score_and_add("one two three four five six");
        assert!(d.indexed_shingles() >= 3);
    }

    #[test]
    fn marker_beats_shingle_when_lower() {
        let mut d = NoveltyDetector::default();
        let s =
            d.score_and_add("reprinted reprinted something fresh entirely new words here today");
        assert!(s <= 0.1);
    }

    #[test]
    fn token_path_matches_text_path_even_interleaved() {
        let texts = [
            "a long enough post about travel plans in summer with many details",
            "a long enough post about travel plans in summer with many details",
            "reprinted, forwarded from a friend, source: somewhere",
            "hi",
            "hi",
            "",
            "alpha beta gamma delta totally different ending here now",
        ];
        let mut by_text = NoveltyDetector::default();
        let mut mixed = NoveltyDetector::default();
        for (i, text) in texts.iter().enumerate() {
            let a = by_text.score_and_add(text);
            let b = if i % 2 == 0 {
                let tokens = tokenize(text);
                let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
                mixed.score_and_add_tokens(text, &refs)
            } else {
                mixed.score_and_add(text)
            };
            assert_eq!(a.to_bits(), b.to_bits(), "diverged on post {i}");
        }
        assert_eq!(by_text.indexed_shingles(), mixed.indexed_shingles());
    }

    #[test]
    #[should_panic(expected = "shingle_len")]
    fn zero_shingle_len_rejected() {
        let _ = NoveltyDetector::new(NoveltyParams {
            shingle_len: 0,
            duplicate_threshold: 0.5,
        });
    }

    #[test]
    #[should_panic(expected = "duplicate_threshold")]
    fn bad_threshold_rejected() {
        let _ = NoveltyDetector::new(NoveltyParams {
            shingle_len: 4,
            duplicate_threshold: 1.5,
        });
    }
}
