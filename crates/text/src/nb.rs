//! Multinomial naive Bayes text classification (ref \[7\] of the paper).
//!
//! MASS "automatically analyzes the posts and generates a `iv(b_i,d_k,C_t)`
//! using naive Bayesian method" (Section II). [`NaiveBayes::posterior`]
//! returns exactly that: a probability vector over the domain catalogue for
//! one post, which Eq. 5 multiplies into the post's influence score.

use crate::intern::{Interner, TermId};
use crate::prepared::PreparedCorpus;
use crate::tokenize::tokenize;
use std::collections::HashMap;

/// Incremental trainer; call [`NaiveBayesTrainer::add_document`] per labelled
/// document, then [`NaiveBayesTrainer::build`].
#[derive(Clone, Debug)]
pub struct NaiveBayesTrainer {
    classes: usize,
    /// term → per-class occurrence counts.
    term_counts: HashMap<String, Vec<u32>>,
    /// total token count per class.
    class_tokens: Vec<u64>,
    /// number of documents per class (for the prior).
    class_docs: Vec<u64>,
}

impl NaiveBayesTrainer {
    /// Creates a trainer for `classes` classes (domains).
    ///
    /// # Panics
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        NaiveBayesTrainer {
            classes,
            term_counts: HashMap::new(),
            class_tokens: vec![0; classes],
            class_docs: vec![0; classes],
        }
    }

    /// Adds a labelled document given raw text (tokenized internally).
    ///
    /// # Panics
    /// Panics if `class` is out of range.
    pub fn add_document(&mut self, class: usize, text: &str) {
        self.add_tokens(class, tokenize(text).iter().map(String::as_str));
    }

    /// Adds a labelled document given pre-tokenized terms.
    pub fn add_tokens<'a, I: IntoIterator<Item = &'a str>>(&mut self, class: usize, tokens: I) {
        assert!(class < self.classes, "class {class} out of range");
        self.class_docs[class] += 1;
        for t in tokens {
            let entry = self
                .term_counts
                .entry(t.to_string())
                .or_insert_with(|| vec![0; self.classes]);
            entry[class] += 1;
            self.class_tokens[class] += 1;
        }
    }

    /// Adds a labelled document given its `(term, count)` bag — the prepared
    /// corpus's CSR row. Produces exactly the trainer state of feeding the
    /// same token multiset through [`NaiveBayesTrainer::add_tokens`].
    pub fn add_term_counts<'a, I: IntoIterator<Item = (&'a str, u32)>>(
        &mut self,
        class: usize,
        terms: I,
    ) {
        assert!(class < self.classes, "class {class} out of range");
        self.class_docs[class] += 1;
        for (t, n) in terms {
            let entry = self
                .term_counts
                .entry(t.to_string())
                .or_insert_with(|| vec![0; self.classes]);
            entry[class] += n;
            self.class_tokens[class] += n as u64;
        }
    }

    /// Documents seen so far.
    pub fn document_count(&self) -> u64 {
        self.class_docs.iter().sum()
    }

    /// Freezes the model. `min_term_count` prunes terms seen fewer times in
    /// total (0 or 1 keeps everything).
    pub fn build(self, min_term_count: u32) -> NaiveBayes {
        let _span = mass_obs::span_with(
            "text.nb_build",
            vec![
                mass_obs::field("classes", self.classes),
                mass_obs::field("docs", self.document_count()),
            ],
        );
        let mut vocab: Vec<(String, Vec<u32>)> = self
            .term_counts
            .into_iter()
            .filter(|(_, counts)| counts.iter().sum::<u32>() >= min_term_count.max(1))
            .collect();
        vocab.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic model
                                             // Recompute per-class token totals over the surviving vocabulary so
                                             // the multinomial distributions stay properly normalised.
        let mut class_tokens = vec![0u64; self.classes];
        for (_, counts) in &vocab {
            for (c, &n) in counts.iter().enumerate() {
                class_tokens[c] += n as u64;
            }
        }
        let term_index: HashMap<String, usize> = vocab
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (t.clone(), i))
            .collect();
        let term_class_counts = vocab.into_iter().map(|(_, c)| c).collect();
        NaiveBayes {
            classes: self.classes,
            term_index,
            term_class_counts,
            class_tokens,
            class_docs: self.class_docs,
        }
    }
}

/// A trained multinomial naive Bayes model with Laplace (add-one) smoothing.
#[derive(Clone, Debug)]
pub struct NaiveBayes {
    classes: usize,
    term_index: HashMap<String, usize>,
    term_class_counts: Vec<Vec<u32>>,
    class_tokens: Vec<u64>,
    class_docs: Vec<u64>,
}

impl NaiveBayes {
    /// Number of classes the model was trained with.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Vocabulary size after pruning.
    pub fn vocabulary_size(&self) -> usize {
        self.term_index.len()
    }

    /// Unnormalised log-posterior per class for raw text.
    pub fn log_scores(&self, text: &str) -> Vec<f64> {
        self.log_scores_tokens(tokenize(text).iter().map(String::as_str))
    }

    /// Unnormalised log-posterior per class for pre-tokenized terms.
    /// Out-of-vocabulary terms are ignored (their smoothed likelihood is
    /// class-independent up to the denominator, and dropping them keeps
    /// short comments from being dominated by noise).
    pub fn log_scores_tokens<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Vec<f64> {
        let total_docs: u64 = self.class_docs.iter().sum();
        let v = self.term_index.len() as f64;
        let mut scores: Vec<f64> = (0..self.classes)
            .map(|c| {
                // Laplace-smoothed prior so empty classes stay representable.
                let prior =
                    (self.class_docs[c] as f64 + 1.0) / (total_docs as f64 + self.classes as f64);
                prior.ln()
            })
            .collect();
        for t in tokens {
            if let Some(&idx) = self.term_index.get(t) {
                let counts = &self.term_class_counts[idx];
                for (c, score) in scores.iter_mut().enumerate() {
                    let likelihood = (counts[c] as f64 + 1.0) / (self.class_tokens[c] as f64 + v);
                    *score += likelihood.ln();
                }
            }
        }
        scores
    }

    /// The posterior distribution `P(C_t | text)` — the paper's
    /// `iv(b_i, d_k, C_t)`. Sums to 1.
    pub fn posterior(&self, text: &str) -> Vec<f64> {
        softmax(&self.log_scores(text))
    }

    /// Posteriors for a batch of documents, computed through the `mass-par`
    /// executor. Each document's vector is independent of the others, so the
    /// result is element-for-element bit-identical to calling
    /// [`NaiveBayes::posterior`] serially, at every thread count. Accepts
    /// any string-ish slice (`&[String]`, `&[&str]`, …) so callers need not
    /// clone whole documents.
    pub fn posterior_batch<S: AsRef<str> + Sync>(
        &self,
        docs: &[S],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        mass_par::executor(threads).par_map(docs, |doc| self.posterior(doc.as_ref()))
    }

    /// Posterior for pre-tokenized terms.
    pub fn posterior_tokens<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Vec<f64> {
        softmax(&self.log_scores_tokens(tokens))
    }

    /// Most probable class.
    pub fn classify(&self, text: &str) -> usize {
        argmax(&self.log_scores(text))
    }

    /// Compiles the model against an interner's vocabulary into a dense
    /// log-likelihood table for gather-and-sum classification. The compiled
    /// model scores interned token sequences with `f64::to_bits`-identical
    /// results to [`NaiveBayes::log_scores`] on the equivalent raw text.
    pub fn compile(&self, interner: &Interner) -> CompiledNb {
        let v = self.term_index.len() as f64;
        let total_docs: u64 = self.class_docs.iter().sum();
        // One extra all-zero column absorbs out-of-vocabulary terms: adding
        // its +0.0 per class is a bit-exact no-op (running scores start at
        // ln(prior) ≤ 0 and never become -0.0), so the gather loop needs no
        // membership branch.
        let width = self.term_index.len() + 1;
        let mut ll = vec![0.0f64; self.classes * width];
        for (idx, counts) in self.term_class_counts.iter().enumerate() {
            for (c, row) in ll.chunks_exact_mut(width).enumerate() {
                row[idx] = ((counts[c] as f64 + 1.0) / (self.class_tokens[c] as f64 + v)).ln();
            }
        }
        let log_priors: Vec<f64> = (0..self.classes)
            .map(|c| {
                ((self.class_docs[c] as f64 + 1.0) / (total_docs as f64 + self.classes as f64)).ln()
            })
            .collect();
        let oov = (width - 1) as u32;
        let term_map: Vec<u32> = (0..interner.len() as u32)
            .map(|id| {
                self.term_index
                    .get(interner.resolve(id))
                    .map_or(oov, |&i| i as u32)
            })
            .collect();
        // Term-major transpose of the same values: one token's per-class
        // likelihoods sit contiguously, so the gather inner loop over
        // classes autovectorises instead of striding by `width`.
        let mut ll_t = vec![0.0f64; self.classes * width];
        for c in 0..self.classes {
            for col in 0..width {
                ll_t[col * self.classes + c] = ll[c * width + col];
            }
        }
        let ll_t_f32: Vec<f32> = ll_t.iter().map(|&x| x as f32).collect();
        let log_priors_f32: Vec<f32> = log_priors.iter().map(|&x| x as f32).collect();
        CompiledNb {
            classes: self.classes,
            width,
            log_priors,
            ll,
            ll_t,
            ll_t_f32,
            log_priors_f32,
            term_map,
        }
    }
}

/// Accumulation precision for the compiled NB gather.
///
/// [`NbPrecision::Exact`] (the default) accumulates in `f64` and is
/// `f64::to_bits`-identical to [`NaiveBayes::log_scores`] — the workspace
/// contract. [`NbPrecision::Fast`] gathers from an `f32` copy of the
/// likelihood table (half the memory traffic on large vocabularies) and
/// accumulates in `f32`; posteriors agree with the exact path to within
/// [`NB_FAST_TOLERANCE`] per entry but are NOT bit-identical — never use it
/// where artifacts feed a byte-identity gate (DESIGN.md §14).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NbPrecision {
    /// `f64` accumulate — bit-identical reference semantics (default).
    #[default]
    Exact,
    /// `f32` table + `f32` accumulate — tolerance-bounded fast path.
    Fast,
}

/// Documented per-entry posterior tolerance of [`NbPrecision::Fast`]
/// against the exact path. `f32` carries ~7 significant digits; hundreds of
/// accumulated tokens keep the log-score error orders of magnitude below
/// this bound, and the differential suite enforces it on real corpora.
pub const NB_FAST_TOLERANCE: f64 = 1e-3;

/// A trained model flattened into a dense row-major table of precomputed
/// log-likelihoods (`ll[class * width + column]`), plus a map from interner
/// [`TermId`]s to table columns. Classification over interned token
/// sequences becomes a branch-free gather-and-sum — no tokenization, no
/// hashing, no `ln` — that `mass-par` chunks effectively.
#[derive(Clone, Debug)]
pub struct CompiledNb {
    classes: usize,
    /// Model vocabulary size + 1; the last column is all zeros (OOV).
    width: usize,
    log_priors: Vec<f64>,
    /// Class-major table (`ll[class * width + column]`) — the original
    /// layout, kept as the reference gather for differential tests and
    /// old-vs-new benches ([`CompiledNb::log_scores_ids_ref`]).
    ll: Vec<f64>,
    /// Term-major transpose (`ll_t[column * classes + class]`): one token's
    /// likelihoods are contiguous, so the per-token class loop is a unit
    /// stride the compiler vectorises. Same values as `ll`, bit for bit.
    ll_t: Vec<f64>,
    /// `f32` copy of `ll_t` for [`NbPrecision::Fast`].
    ll_t_f32: Vec<f32>,
    /// `f32` copy of the priors for [`NbPrecision::Fast`].
    log_priors_f32: Vec<f32>,
    /// Interner id → table column (`width - 1` for terms the model never
    /// saw).
    term_map: Vec<u32>,
}

impl CompiledNb {
    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Unnormalised log-posterior per class, written into `out` (length
    /// `classes`) — no allocation. Walks tokens in order, adding each one's
    /// contiguous per-class likelihood row from the term-major table: the
    /// exact addition order of [`NaiveBayes::log_scores_tokens`], so the
    /// bits match.
    pub fn log_scores_ids_into(&self, ids: &[TermId], out: &mut [f64]) {
        assert_eq!(out.len(), self.classes);
        out.copy_from_slice(&self.log_priors);
        for &t in ids {
            let col = self.term_map[t as usize] as usize;
            let row = &self.ll_t[col * self.classes..(col + 1) * self.classes];
            for (score, &l) in out.iter_mut().zip(row) {
                *score += l;
            }
        }
    }

    /// The posterior distribution, written into `out` (length `classes`) —
    /// no allocation. Bit-identical to `softmax(log_scores)`.
    pub fn posterior_ids_into(&self, ids: &[TermId], out: &mut [f64]) {
        self.log_scores_ids_into(ids, out);
        softmax_in_place(out);
    }

    /// [`NbPrecision::Fast`] posterior: gathers from the `f32` table with a
    /// pure-`f32` accumulation (the running score is narrowed back through
    /// `f32` each step, so carrying it in the f64 `out` slot is exact
    /// f32 arithmetic), then a stable f64 softmax. Within
    /// [`NB_FAST_TOLERANCE`] of [`CompiledNb::posterior_ids_into`], not
    /// bit-identical.
    pub fn posterior_ids_into_fast(&self, ids: &[TermId], out: &mut [f64]) {
        assert_eq!(out.len(), self.classes);
        // Accumulate in a stack f32 buffer: half the table traffic of the
        // exact path and no per-add width conversions. Class counts beyond
        // the buffer take a heap accumulator instead — same arithmetic.
        const STACK: usize = 64;
        if self.classes <= STACK {
            let mut acc = [0.0f32; STACK];
            acc[..self.classes].copy_from_slice(&self.log_priors_f32);
            self.accumulate_f32(ids, &mut acc[..self.classes]);
            for (o, &s) in out.iter_mut().zip(&acc[..self.classes]) {
                *o = f64::from(s);
            }
        } else {
            let mut acc = self.log_priors_f32.clone();
            self.accumulate_f32(ids, &mut acc);
            for (o, &s) in out.iter_mut().zip(&acc) {
                *o = f64::from(s);
            }
        }
        softmax_in_place(out);
    }

    /// The `f32` gather-and-sum core of [`CompiledNb::posterior_ids_into_fast`].
    fn accumulate_f32(&self, ids: &[TermId], acc: &mut [f32]) {
        for &t in ids {
            let col = self.term_map[t as usize] as usize;
            let row = &self.ll_t_f32[col * self.classes..(col + 1) * self.classes];
            for (score, &l) in acc.iter_mut().zip(row) {
                *score += l;
            }
        }
    }

    /// Allocating wrapper over [`CompiledNb::log_scores_ids_into`].
    pub fn log_scores_ids(&self, ids: &[TermId]) -> Vec<f64> {
        let mut out = vec![0.0f64; self.classes];
        self.log_scores_ids_into(ids, &mut out);
        out
    }

    /// The pre-transpose reference gather: clones the priors and strides
    /// the class-major table — the original `log_scores_ids` loop, kept
    /// callable so differential tests and the X17 bench can pin the
    /// restructured kernel against it.
    pub fn log_scores_ids_ref(&self, ids: &[TermId]) -> Vec<f64> {
        let mut scores = self.log_priors.clone();
        for &t in ids {
            let col = self.term_map[t as usize] as usize;
            for (c, score) in scores.iter_mut().enumerate() {
                *score += self.ll[c * self.width + col];
            }
        }
        scores
    }

    /// Allocating wrapper over [`CompiledNb::posterior_ids_into`].
    pub fn posterior_ids(&self, ids: &[TermId]) -> Vec<f64> {
        let mut out = vec![0.0f64; self.classes];
        self.posterior_ids_into(ids, &mut out);
        out
    }

    /// Reference posterior over [`CompiledNb::log_scores_ids_ref`] with the
    /// original allocating softmax — the exact pre-PR per-document path.
    pub fn posterior_ids_ref(&self, ids: &[TermId]) -> Vec<f64> {
        softmax(&self.log_scores_ids_ref(ids))
    }

    /// Most probable class for an interned token sequence.
    pub fn classify_ids(&self, ids: &[TermId]) -> usize {
        argmax(&self.log_scores_ids(ids))
    }

    /// Posterior of every post document in `corpus` as one flat row-major
    /// `posts × classes` allocation (row `k` = post `k`'s distribution),
    /// through the `mass-par` executor. Each row is bit-identical to
    /// [`CompiledNb::posterior_ids`] at every thread count. Records the
    /// `text.classify_batch_us` histogram.
    pub fn posterior_batch_prepared_flat(
        &self,
        corpus: &PreparedCorpus,
        threads: usize,
    ) -> Vec<f64> {
        self.posterior_batch_prepared_flat_with(corpus, threads, NbPrecision::Exact)
    }

    /// [`CompiledNb::posterior_batch_prepared_flat`] with an explicit
    /// precision: `Exact` is the bit-identical default, `Fast` gathers from
    /// the `f32` table (tolerance-bounded, see [`NB_FAST_TOLERANCE`]).
    pub fn posterior_batch_prepared_flat_with(
        &self,
        corpus: &PreparedCorpus,
        threads: usize,
        precision: NbPrecision,
    ) -> Vec<f64> {
        let start = std::time::Instant::now();
        let mut out = vec![0.0f64; corpus.posts() * self.classes];
        let ex = mass_par::executor(threads);
        match precision {
            NbPrecision::Exact => ex.par_fill_rows(&mut out, self.classes, |k, row| {
                self.posterior_ids_into(corpus.doc_tokens(k), row)
            }),
            NbPrecision::Fast => ex.par_fill_rows(&mut out, self.classes, |k, row| {
                self.posterior_ids_into_fast(corpus.doc_tokens(k), row)
            }),
        }
        mass_obs::histogram("text.classify_batch_us").record_duration(start.elapsed());
        out
    }

    /// Posterior of every post document in `corpus`, one `Vec` per post.
    /// Thin carve-up of [`CompiledNb::posterior_batch_prepared_flat`] —
    /// same values bit for bit, kept for callers that want row ownership.
    pub fn posterior_batch_prepared(
        &self,
        corpus: &PreparedCorpus,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        self.posterior_batch_prepared_flat(corpus, threads)
            .chunks_exact(self.classes)
            .map(|row| row.to_vec())
            .collect()
    }
}

/// Numerically-stable softmax over log scores.
fn softmax(log_scores: &[f64]) -> Vec<f64> {
    let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = log_scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// [`softmax`] without the two intermediate allocations: identical
/// operation sequence (max fold, exp in order, ascending sum, divide), so
/// the result is bit-identical to the allocating version.
fn softmax_in_place(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
    }
    let sum: f64 = scores.iter().sum();
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
        .map(|(i, _)| i)
        .expect("at least one class")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> NaiveBayes {
        let mut t = NaiveBayesTrainer::new(3);
        // class 0: travel, 1: sports, 2: computer
        t.add_document(0, "travel hotel flight beach vacation resort");
        t.add_document(0, "travel passport airport hotel tour");
        t.add_document(1, "football match goal team league sports");
        t.add_document(1, "basketball game score team sports win");
        t.add_document(2, "computer programming code software rust compiler");
        t.add_document(2, "algorithm data structure code computer");
        t.build(1)
    }

    #[test]
    fn classifies_clear_documents() {
        let m = trained();
        assert_eq!(m.classify("booking a hotel for my beach vacation"), 0);
        assert_eq!(m.classify("the team scored a late goal in the match"), 1);
        assert_eq!(m.classify("writing rust code for a compiler"), 2);
    }

    #[test]
    fn posterior_sums_to_one_and_peaks_right() {
        let m = trained();
        let p = m.posterior("football game with my team");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p.len(), 3);
        assert!(p[1] > p[0] && p[1] > p[2]);
    }

    #[test]
    fn empty_text_falls_back_to_prior() {
        let mut t = NaiveBayesTrainer::new(2);
        t.add_document(0, "a a a alpha");
        t.add_document(0, "alpha beta");
        t.add_document(1, "gamma");
        let m = t.build(1);
        let p = m.posterior("");
        // Priors (smoothed): class0 = 3/4, class1 = 2/4 → normalised.
        assert!(p[0] > p[1]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oov_terms_ignored() {
        let m = trained();
        let clean = m.posterior("football match");
        let noisy = m.posterior("football match zzzzqqq xyzzy");
        for (a, b) in clean.iter().zip(&noisy) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pruning_shrinks_vocabulary() {
        let mut t = NaiveBayesTrainer::new(2);
        t.add_document(0, "common common common rare");
        t.add_document(1, "common");
        let full = t.clone().build(1);
        let pruned = t.build(2);
        assert!(pruned.vocabulary_size() < full.vocabulary_size());
        assert_eq!(pruned.vocabulary_size(), 1);
    }

    #[test]
    fn untrained_class_gets_nonzero_posterior() {
        let mut t = NaiveBayesTrainer::new(3);
        t.add_document(0, "alpha beta");
        t.add_document(1, "gamma delta");
        // class 2 never sees a document
        let m = t.build(1);
        let p = m.posterior("alpha");
        assert!(p[2] > 0.0);
        assert!(p[0] > p[2]);
    }

    #[test]
    fn deterministic_across_builds() {
        let build = || {
            let mut t = NaiveBayesTrainer::new(2);
            t.add_document(0, "x y z w");
            t.add_document(1, "p q r s");
            t.build(1)
        };
        let a = build().posterior("x q");
        let b = build().posterior("x q");
        assert_eq!(a, b);
    }

    #[test]
    fn document_count_tracks() {
        let mut t = NaiveBayesTrainer::new(2);
        assert_eq!(t.document_count(), 0);
        t.add_document(0, "a b");
        t.add_document(1, "c d");
        assert_eq!(t.document_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_panics() {
        NaiveBayesTrainer::new(2).add_document(5, "x");
    }

    #[test]
    fn compiled_matches_string_path_bitwise() {
        let m = trained();
        let texts = [
            "booking a hotel for my beach vacation",
            "the team scored a late goal in the match",
            "writing rust code for a compiler",
            "zzzzqqq xyzzy entirely out of vocabulary",
            "",
            "hotel hotel hotel code",
        ];
        let mut interner = Interner::new();
        let ids: Vec<Vec<u32>> = texts
            .iter()
            .map(|t| tokenize(t).iter().map(|w| interner.intern(w)).collect())
            .collect();
        let compiled = m.compile(&interner);
        for (text, ids) in texts.iter().zip(&ids) {
            let slow = m.log_scores(text);
            let fast = compiled.log_scores_ids(ids);
            assert_eq!(
                slow.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "log scores diverged on {text:?}"
            );
            assert_eq!(
                m.posterior(text)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                compiled
                    .posterior_ids(ids)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "posterior diverged on {text:?}"
            );
            assert_eq!(m.classify(text), compiled.classify_ids(ids));
        }
    }

    #[test]
    fn term_count_training_equals_token_training() {
        let docs = [
            (0, "travel hotel hotel beach"),
            (1, "football match match match team"),
            (0, "hotel tour"),
        ];
        let mut by_tokens = NaiveBayesTrainer::new(2);
        let mut by_counts = NaiveBayesTrainer::new(2);
        for &(class, text) in &docs {
            by_tokens.add_document(class, text);
            let mut bag: std::collections::BTreeMap<String, u32> = Default::default();
            for t in tokenize(text) {
                *bag.entry(t).or_insert(0) += 1;
            }
            by_counts.add_term_counts(class, bag.iter().map(|(t, &n)| (t.as_str(), n)));
        }
        let a = by_tokens.build(1);
        let b = by_counts.build(1);
        for probe in ["hotel match", "beach", "absent", ""] {
            assert_eq!(
                a.log_scores(probe)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                b.log_scores(probe)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "models diverged on {probe:?}"
            );
        }
    }

    /// A small interned corpus shared by the compiled-gather tests.
    fn interned_probe_ids(interner: &mut Interner) -> Vec<Vec<u32>> {
        [
            "booking a hotel for my beach vacation",
            "the team scored a late goal in the match",
            "writing rust code for a compiler",
            "zzzzqqq xyzzy entirely out of vocabulary",
            "",
            "hotel hotel hotel code sports travel computer beach game",
        ]
        .iter()
        .map(|t| tokenize(t).iter().map(|w| interner.intern(w)).collect())
        .collect()
    }

    #[test]
    fn into_variants_match_reference_gather_bitwise() {
        // The transposed-table scratch-buffer path and the retained
        // class-major reference path must agree bit for bit — this is the
        // contract that lets the solver keep its byte-identity gates after
        // the kernel restructure.
        let m = trained();
        let mut interner = Interner::new();
        let ids = interned_probe_ids(&mut interner);
        let compiled = m.compile(&interner);
        let mut scratch = vec![0.0f64; compiled.classes()];
        for ids in &ids {
            let reference = compiled.log_scores_ids_ref(ids);
            compiled.log_scores_ids_into(ids, &mut scratch);
            assert_eq!(
                scratch.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
            assert_eq!(
                compiled
                    .log_scores_ids(ids)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
            let ref_post = compiled.posterior_ids_ref(ids);
            compiled.posterior_ids_into(ids, &mut scratch);
            assert_eq!(
                scratch.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                ref_post.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn fast_precision_is_close_but_not_required_to_match() {
        let m = trained();
        let mut interner = Interner::new();
        let ids = interned_probe_ids(&mut interner);
        let compiled = m.compile(&interner);
        let mut exact = vec![0.0f64; compiled.classes()];
        let mut fast = vec![0.0f64; compiled.classes()];
        for ids in &ids {
            compiled.posterior_ids_into(ids, &mut exact);
            compiled.posterior_ids_into_fast(ids, &mut fast);
            for (a, b) in exact.iter().zip(&fast) {
                assert!(
                    (a - b).abs() <= NB_FAST_TOLERANCE,
                    "fast posterior {b} drifted from {a}"
                );
            }
            assert!((fast.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn posterior_batch_accepts_str_slices() {
        let m = trained();
        let owned = vec!["hotel beach".to_string(), "team goal".to_string()];
        let borrowed: Vec<&str> = owned.iter().map(String::as_str).collect();
        let a = m.posterior_batch(&owned, 1);
        let b = m.posterior_batch(&borrowed, 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = NaiveBayesTrainer::new(0);
    }
}
