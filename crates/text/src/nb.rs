//! Multinomial naive Bayes text classification (ref \[7\] of the paper).
//!
//! MASS "automatically analyzes the posts and generates a `iv(b_i,d_k,C_t)`
//! using naive Bayesian method" (Section II). [`NaiveBayes::posterior`]
//! returns exactly that: a probability vector over the domain catalogue for
//! one post, which Eq. 5 multiplies into the post's influence score.

use crate::tokenize::tokenize;
use std::collections::HashMap;

/// Incremental trainer; call [`NaiveBayesTrainer::add_document`] per labelled
/// document, then [`NaiveBayesTrainer::build`].
#[derive(Clone, Debug)]
pub struct NaiveBayesTrainer {
    classes: usize,
    /// term → per-class occurrence counts.
    term_counts: HashMap<String, Vec<u32>>,
    /// total token count per class.
    class_tokens: Vec<u64>,
    /// number of documents per class (for the prior).
    class_docs: Vec<u64>,
}

impl NaiveBayesTrainer {
    /// Creates a trainer for `classes` classes (domains).
    ///
    /// # Panics
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        NaiveBayesTrainer {
            classes,
            term_counts: HashMap::new(),
            class_tokens: vec![0; classes],
            class_docs: vec![0; classes],
        }
    }

    /// Adds a labelled document given raw text (tokenized internally).
    ///
    /// # Panics
    /// Panics if `class` is out of range.
    pub fn add_document(&mut self, class: usize, text: &str) {
        self.add_tokens(class, tokenize(text).iter().map(String::as_str));
    }

    /// Adds a labelled document given pre-tokenized terms.
    pub fn add_tokens<'a, I: IntoIterator<Item = &'a str>>(&mut self, class: usize, tokens: I) {
        assert!(class < self.classes, "class {class} out of range");
        self.class_docs[class] += 1;
        for t in tokens {
            let entry = self
                .term_counts
                .entry(t.to_string())
                .or_insert_with(|| vec![0; self.classes]);
            entry[class] += 1;
            self.class_tokens[class] += 1;
        }
    }

    /// Documents seen so far.
    pub fn document_count(&self) -> u64 {
        self.class_docs.iter().sum()
    }

    /// Freezes the model. `min_term_count` prunes terms seen fewer times in
    /// total (0 or 1 keeps everything).
    pub fn build(self, min_term_count: u32) -> NaiveBayes {
        let _span = mass_obs::span_with(
            "text.nb_build",
            vec![
                mass_obs::field("classes", self.classes),
                mass_obs::field("docs", self.document_count()),
            ],
        );
        let mut vocab: Vec<(String, Vec<u32>)> = self
            .term_counts
            .into_iter()
            .filter(|(_, counts)| counts.iter().sum::<u32>() >= min_term_count.max(1))
            .collect();
        vocab.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic model
                                             // Recompute per-class token totals over the surviving vocabulary so
                                             // the multinomial distributions stay properly normalised.
        let mut class_tokens = vec![0u64; self.classes];
        for (_, counts) in &vocab {
            for (c, &n) in counts.iter().enumerate() {
                class_tokens[c] += n as u64;
            }
        }
        let term_index: HashMap<String, usize> = vocab
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (t.clone(), i))
            .collect();
        let term_class_counts = vocab.into_iter().map(|(_, c)| c).collect();
        NaiveBayes {
            classes: self.classes,
            term_index,
            term_class_counts,
            class_tokens,
            class_docs: self.class_docs,
        }
    }
}

/// A trained multinomial naive Bayes model with Laplace (add-one) smoothing.
#[derive(Clone, Debug)]
pub struct NaiveBayes {
    classes: usize,
    term_index: HashMap<String, usize>,
    term_class_counts: Vec<Vec<u32>>,
    class_tokens: Vec<u64>,
    class_docs: Vec<u64>,
}

impl NaiveBayes {
    /// Number of classes the model was trained with.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Vocabulary size after pruning.
    pub fn vocabulary_size(&self) -> usize {
        self.term_index.len()
    }

    /// Unnormalised log-posterior per class for raw text.
    pub fn log_scores(&self, text: &str) -> Vec<f64> {
        self.log_scores_tokens(tokenize(text).iter().map(String::as_str))
    }

    /// Unnormalised log-posterior per class for pre-tokenized terms.
    /// Out-of-vocabulary terms are ignored (their smoothed likelihood is
    /// class-independent up to the denominator, and dropping them keeps
    /// short comments from being dominated by noise).
    pub fn log_scores_tokens<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Vec<f64> {
        let total_docs: u64 = self.class_docs.iter().sum();
        let v = self.term_index.len() as f64;
        let mut scores: Vec<f64> = (0..self.classes)
            .map(|c| {
                // Laplace-smoothed prior so empty classes stay representable.
                let prior =
                    (self.class_docs[c] as f64 + 1.0) / (total_docs as f64 + self.classes as f64);
                prior.ln()
            })
            .collect();
        for t in tokens {
            if let Some(&idx) = self.term_index.get(t) {
                let counts = &self.term_class_counts[idx];
                for (c, score) in scores.iter_mut().enumerate() {
                    let likelihood = (counts[c] as f64 + 1.0) / (self.class_tokens[c] as f64 + v);
                    *score += likelihood.ln();
                }
            }
        }
        scores
    }

    /// The posterior distribution `P(C_t | text)` — the paper's
    /// `iv(b_i, d_k, C_t)`. Sums to 1.
    pub fn posterior(&self, text: &str) -> Vec<f64> {
        softmax(&self.log_scores(text))
    }

    /// Posteriors for a batch of documents, computed through the `mass-par`
    /// executor. Each document's vector is independent of the others, so the
    /// result is element-for-element bit-identical to calling
    /// [`NaiveBayes::posterior`] serially, at every thread count.
    pub fn posterior_batch(&self, docs: &[String], threads: usize) -> Vec<Vec<f64>> {
        mass_par::executor(threads).par_map(docs, |doc| self.posterior(doc))
    }

    /// Posterior for pre-tokenized terms.
    pub fn posterior_tokens<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Vec<f64> {
        softmax(&self.log_scores_tokens(tokens))
    }

    /// Most probable class.
    pub fn classify(&self, text: &str) -> usize {
        argmax(&self.log_scores(text))
    }
}

/// Numerically-stable softmax over log scores.
fn softmax(log_scores: &[f64]) -> Vec<f64> {
    let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = log_scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
        .map(|(i, _)| i)
        .expect("at least one class")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> NaiveBayes {
        let mut t = NaiveBayesTrainer::new(3);
        // class 0: travel, 1: sports, 2: computer
        t.add_document(0, "travel hotel flight beach vacation resort");
        t.add_document(0, "travel passport airport hotel tour");
        t.add_document(1, "football match goal team league sports");
        t.add_document(1, "basketball game score team sports win");
        t.add_document(2, "computer programming code software rust compiler");
        t.add_document(2, "algorithm data structure code computer");
        t.build(1)
    }

    #[test]
    fn classifies_clear_documents() {
        let m = trained();
        assert_eq!(m.classify("booking a hotel for my beach vacation"), 0);
        assert_eq!(m.classify("the team scored a late goal in the match"), 1);
        assert_eq!(m.classify("writing rust code for a compiler"), 2);
    }

    #[test]
    fn posterior_sums_to_one_and_peaks_right() {
        let m = trained();
        let p = m.posterior("football game with my team");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p.len(), 3);
        assert!(p[1] > p[0] && p[1] > p[2]);
    }

    #[test]
    fn empty_text_falls_back_to_prior() {
        let mut t = NaiveBayesTrainer::new(2);
        t.add_document(0, "a a a alpha");
        t.add_document(0, "alpha beta");
        t.add_document(1, "gamma");
        let m = t.build(1);
        let p = m.posterior("");
        // Priors (smoothed): class0 = 3/4, class1 = 2/4 → normalised.
        assert!(p[0] > p[1]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oov_terms_ignored() {
        let m = trained();
        let clean = m.posterior("football match");
        let noisy = m.posterior("football match zzzzqqq xyzzy");
        for (a, b) in clean.iter().zip(&noisy) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pruning_shrinks_vocabulary() {
        let mut t = NaiveBayesTrainer::new(2);
        t.add_document(0, "common common common rare");
        t.add_document(1, "common");
        let full = t.clone().build(1);
        let pruned = t.build(2);
        assert!(pruned.vocabulary_size() < full.vocabulary_size());
        assert_eq!(pruned.vocabulary_size(), 1);
    }

    #[test]
    fn untrained_class_gets_nonzero_posterior() {
        let mut t = NaiveBayesTrainer::new(3);
        t.add_document(0, "alpha beta");
        t.add_document(1, "gamma delta");
        // class 2 never sees a document
        let m = t.build(1);
        let p = m.posterior("alpha");
        assert!(p[2] > 0.0);
        assert!(p[0] > p[2]);
    }

    #[test]
    fn deterministic_across_builds() {
        let build = || {
            let mut t = NaiveBayesTrainer::new(2);
            t.add_document(0, "x y z w");
            t.add_document(1, "p q r s");
            t.build(1)
        };
        let a = build().posterior("x q");
        let b = build().posterior("x q");
        assert_eq!(a, b);
    }

    #[test]
    fn document_count_tracks() {
        let mut t = NaiveBayesTrainer::new(2);
        assert_eq!(t.document_count(), 0);
        t.add_document(0, "a b");
        t.add_document(1, "c d");
        assert_eq!(t.document_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_panics() {
        NaiveBayesTrainer::new(2).add_document(5, "x");
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = NaiveBayesTrainer::new(0);
    }
}
