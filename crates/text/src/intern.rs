//! String interning: term → dense `u32` id, backed by a single byte arena.
//!
//! The text pipeline maps every token to a [`TermId`] exactly once and works
//! with dense ids from then on (DESIGN.md §10). The interner stores all term
//! bytes contiguously in one `String` arena — no per-term allocation — and
//! resolves ids back to `&str` slices for the few places that still need
//! strings (topic labels, model vocabularies, shingle hashing).
//!
//! Ids are assigned in first-appearance order, so for a fixed token stream
//! the mapping is deterministic regardless of thread count: interning is
//! always a serial pass (tokenization fans out, id assignment does not).

/// Dense id of an interned term. Plain `u32` — token sequences are stored as
/// `Vec<u32>` so kernels can gather without hashing.
pub type TermId = u32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(term: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in term.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Term → dense-id vocabulary arena (open-addressed, linear probing).
#[derive(Clone, Debug, Default)]
pub struct Interner {
    /// All term bytes, concatenated in id order.
    arena: String,
    /// `spans[id]` = byte range of term `id` within the arena.
    spans: Vec<(u32, u32)>,
    /// Hash table of `id + 1` (0 = empty slot). Power-of-two length.
    table: Vec<u32>,
}

/// Two interners are equal when they issued the same ids for the same terms
/// — i.e. the arena and spans agree. The hash table is derived state (its
/// slot layout depends on growth history) and is deliberately ignored.
impl PartialEq for Interner {
    fn eq(&self, other: &Self) -> bool {
        self.arena == other.arena && self.spans == other.spans
    }
}

impl Eq for Interner {}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-sizes for roughly `terms` distinct terms.
    pub fn with_capacity(terms: usize) -> Self {
        let slots = (terms.max(8) * 2).next_power_of_two();
        Interner {
            arena: String::new(),
            spans: Vec::with_capacity(terms),
            table: vec![0; slots],
        }
    }

    /// The id of `term`, interning it on first sight.
    pub fn intern(&mut self, term: &str) -> TermId {
        let mask = self.table.len() - 1;
        let mut i = (fnv1a(term) as usize) & mask;
        loop {
            match self.table[i] {
                0 => break,
                slot => {
                    let id = slot - 1;
                    if self.resolve(id) == term {
                        return id;
                    }
                }
            }
            i = (i + 1) & mask;
        }
        let id = self.spans.len() as u32;
        let start = self.arena.len() as u32;
        self.arena.push_str(term);
        self.spans.push((start, self.arena.len() as u32));
        self.table[i] = id + 1;
        // Keep the load factor under 3/4 so probe chains stay short.
        if self.spans.len() * 4 >= self.table.len() * 3 {
            self.grow();
        }
        id
    }

    fn grow(&mut self) {
        let slots = self.table.len() * 2;
        let mask = slots - 1;
        let mut table = vec![0u32; slots];
        for id in 0..self.spans.len() as u32 {
            let mut i = (fnv1a(self.resolve(id)) as usize) & mask;
            while table[i] != 0 {
                i = (i + 1) & mask;
            }
            table[i] = id + 1;
        }
        self.table = table;
    }

    /// The id of `term` if it has been interned.
    pub fn get(&self, term: &str) -> Option<TermId> {
        let mask = self.table.len() - 1;
        let mut i = (fnv1a(term) as usize) & mask;
        loop {
            match self.table[i] {
                0 => return None,
                slot => {
                    let id = slot - 1;
                    if self.resolve(id) == term {
                        return Some(id);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// The term behind `id`. Panics on an id this interner never issued.
    pub fn resolve(&self, id: TermId) -> &str {
        let (start, end) = self.spans[id as usize];
        &self.arena[start as usize..end as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes held by the arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Iterates `(id, term)` in id (= first-appearance) order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        (0..self.spans.len() as u32).map(move |id| (id, self.resolve(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = Interner::new();
        let a = it.intern("travel");
        let b = it.intern("hotel");
        assert_eq!((a, b), (0, 1));
        assert_eq!(it.intern("travel"), a);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(a), "travel");
        assert_eq!(it.resolve(b), "hotel");
        assert_eq!(it.get("hotel"), Some(b));
        assert_eq!(it.get("absent"), None);
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut it = Interner::with_capacity(2);
        let terms: Vec<String> = (0..500).map(|i| format!("term{i}")).collect();
        let ids: Vec<u32> = terms.iter().map(|t| it.intern(t)).collect();
        assert_eq!(ids, (0..500).collect::<Vec<u32>>());
        for (i, t) in terms.iter().enumerate() {
            assert_eq!(it.get(t), Some(i as u32), "lost {t} after growth");
            assert_eq!(it.resolve(i as u32), t);
        }
    }

    #[test]
    fn unicode_terms_roundtrip() {
        let mut it = Interner::new();
        for t in ["旅行", "über", "café", "ß", "travel"] {
            let id = it.intern(t);
            assert_eq!(it.resolve(id), t);
        }
        assert_eq!(it.len(), 5);
        assert_eq!(it.iter().map(|(_, t)| t).collect::<Vec<_>>().len(), 5);
    }

    #[test]
    fn empty_interner() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.get("x"), None);
        assert_eq!(it.arena_bytes(), 0);
    }
}
