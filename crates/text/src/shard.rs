//! Sharded, out-of-core construction of [`PreparedCorpus`].
//!
//! The in-memory path ([`PreparedCorpus::build`]) needs the whole [`Dataset`]
//! resident. For streamed million-blogger corpora the documents arrive
//! shard-by-shard instead: each shard tokenizes and interns its own slice
//! into a [`CorpusSegment`] with a *local* vocabulary (built by a
//! [`SegmentBuilder`]), and a [`ShardedCorpusBuilder`] merges the segments
//! into one corpus whose interned arrays are **bit-identical** to what the
//! in-memory build over the concatenated document stream produces.
//!
//! Three properties make the merge exact:
//!
//! 1. **Phase split.** The in-memory build interns *all post documents
//!    before any comment document*. Segments record how much of their local
//!    vocabulary was minted during the post phase (`post_vocab_len`); the
//!    merge interns every segment's post-phase vocabulary (in shard order,
//!    each in local-id = first-appearance order) before any comment-phase
//!    vocabulary, reproducing the global first-appearance order exactly.
//! 2. **Row re-sort.** Document-term rows are sorted by *local* id inside a
//!    segment; after remapping to global ids each row is re-sorted (terms in
//!    a row are distinct, so the sorted `(term, count)` pairs are unique).
//! 3. **Order-independent assembly.** [`ShardedCorpusBuilder::add_shard`]
//!    takes the shard index explicitly; segments may arrive in any order
//!    (parallel producers) and are merged by index.
//!
//! Past a byte budget, segment arrays spill to temp files
//! ([`ShardedCorpusBuilder::new`]'s `spill_budget`); only the small local
//! vocabularies stay resident. [`finish`](ShardedCorpusBuilder::finish)
//! returns a resident corpus, [`finish_spilled`](ShardedCorpusBuilder::finish_spilled)
//! streams the merged arrays straight back to disk as a [`SpilledCorpus`],
//! bounding peak memory by one segment regardless of corpus size.

use crate::intern::{Interner, TermId};
use crate::prepared::{flatten, PreparedCorpus};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The nine `u32` arrays behind a [`PreparedCorpus`], in canonical (spill
/// file) order.
const ARRAY_COUNT: usize = 9;

#[derive(Clone, Debug, Default, PartialEq)]
struct ArraySet {
    doc_tokens: Vec<u32>,
    doc_offsets: Vec<u32>,
    text_starts: Vec<u32>,
    dt_terms: Vec<u32>,
    dt_counts: Vec<u32>,
    dt_offsets: Vec<u32>,
    comment_tokens: Vec<u32>,
    comment_offsets: Vec<u32>,
    comment_starts: Vec<u32>,
}

impl ArraySet {
    fn as_refs(&self) -> [&Vec<u32>; ARRAY_COUNT] {
        [
            &self.doc_tokens,
            &self.doc_offsets,
            &self.text_starts,
            &self.dt_terms,
            &self.dt_counts,
            &self.dt_offsets,
            &self.comment_tokens,
            &self.comment_offsets,
            &self.comment_starts,
        ]
    }

    fn lens(&self) -> [u64; ARRAY_COUNT] {
        self.as_refs().map(|a| a.len() as u64)
    }

    fn bytes(&self) -> usize {
        self.as_refs().iter().map(|a| a.len() * 4).sum()
    }
}

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_spill_path(label: &str) -> PathBuf {
    let id = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mass-{label}-{}-{id}.bin", std::process::id()))
}

/// An owned temp file that is deleted on drop.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn write_u32s(w: &mut impl Write, data: &[u32]) -> io::Result<()> {
    // Chunked LE encode: bounded scratch, no per-element write calls.
    let mut buf = [0u8; 4 * 4096];
    for chunk in data.chunks(4096) {
        for (i, &v) in chunk.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf[..chunk.len() * 4])?;
    }
    Ok(())
}

fn read_u32s(r: &mut impl Read, len: usize) -> io::Result<Vec<u32>> {
    let mut out = Vec::with_capacity(len);
    let mut buf = [0u8; 4 * 4096];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(4096);
        r.read_exact(&mut buf[..take * 4])?;
        for i in 0..take {
            out.push(u32::from_le_bytes(
                buf[i * 4..i * 4 + 4].try_into().unwrap(),
            ));
        }
        remaining -= take;
    }
    Ok(out)
}

/// Where a segment's arrays currently live.
#[derive(Debug)]
enum SegmentStore {
    Resident(ArraySet),
    /// Arrays on disk: the spill file plus each array's length (the file
    /// stores the nine arrays back to back in canonical order, raw LE u32).
    Spilled {
        file: SpillFile,
        lens: [u64; ARRAY_COUNT],
    },
}

/// One shard's tokenized, locally-interned slice of the corpus.
#[derive(Debug)]
pub struct CorpusSegment {
    vocab: Interner,
    post_vocab_len: u32,
    posts: usize,
    comments: usize,
    store: SegmentStore,
}

impl CorpusSegment {
    /// Number of post documents in the segment.
    pub fn posts(&self) -> usize {
        self.posts
    }

    /// Number of comments in the segment.
    pub fn comments(&self) -> usize {
        self.comments
    }

    /// Distinct terms in the segment's local vocabulary.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Bytes of array data currently resident in memory (0 once spilled;
    /// the local vocabulary always stays resident).
    pub fn resident_bytes(&self) -> usize {
        match &self.store {
            SegmentStore::Resident(a) => a.bytes(),
            SegmentStore::Spilled { .. } => 0,
        }
    }

    /// Moves the segment's arrays to a temp file, freeing their memory.
    /// No-op if already spilled.
    pub fn spill(&mut self) -> io::Result<usize> {
        let arrays = match &mut self.store {
            SegmentStore::Spilled { .. } => return Ok(0),
            SegmentStore::Resident(a) => std::mem::take(a),
        };
        let bytes = arrays.bytes();
        let file = SpillFile {
            path: fresh_spill_path("segment"),
        };
        let mut w = BufWriter::new(File::create(&file.path)?);
        for a in arrays.as_refs() {
            write_u32s(&mut w, a)?;
        }
        w.flush()?;
        self.store = SegmentStore::Spilled {
            lens: arrays.lens(),
            file,
        };
        Ok(bytes)
    }

    /// The segment's arrays, reading them back from disk if spilled.
    fn load(&self) -> io::Result<ArraySet> {
        match &self.store {
            SegmentStore::Resident(a) => Ok(a.clone()),
            SegmentStore::Spilled { file, lens } => {
                let mut r = BufReader::new(File::open(&file.path)?);
                Ok(ArraySet {
                    doc_tokens: read_u32s(&mut r, lens[0] as usize)?,
                    doc_offsets: read_u32s(&mut r, lens[1] as usize)?,
                    text_starts: read_u32s(&mut r, lens[2] as usize)?,
                    dt_terms: read_u32s(&mut r, lens[3] as usize)?,
                    dt_counts: read_u32s(&mut r, lens[4] as usize)?,
                    dt_offsets: read_u32s(&mut r, lens[5] as usize)?,
                    comment_tokens: read_u32s(&mut r, lens[6] as usize)?,
                    comment_offsets: read_u32s(&mut r, lens[7] as usize)?,
                    comment_starts: read_u32s(&mut r, lens[8] as usize)?,
                })
            }
        }
    }
}

/// Incrementally tokenizes one shard's documents into a [`CorpusSegment`].
///
/// Call order mirrors the global interning phases: every
/// [`add_post`](SegmentBuilder::add_post), then
/// [`seal_posts`](SegmentBuilder::seal_posts), then one
/// [`add_post_comments`](SegmentBuilder::add_post_comments) per post (in
/// post order), then [`finish`](SegmentBuilder::finish).
#[derive(Debug, Default)]
pub struct SegmentBuilder {
    vocab: Interner,
    post_vocab_len: Option<u32>,
    arrays: ArraySet,
    comment_posts: usize,
    row: Vec<u32>,
}

impl SegmentBuilder {
    /// An empty builder.
    pub fn new() -> SegmentBuilder {
        let mut arrays = ArraySet::default();
        arrays.doc_offsets.push(0);
        arrays.dt_offsets.push(0);
        arrays.comment_offsets.push(0);
        arrays.comment_starts.push(0);
        SegmentBuilder {
            vocab: Interner::with_capacity(256),
            post_vocab_len: None,
            arrays,
            comment_posts: 0,
            row: Vec::new(),
        }
    }

    /// Tokenizes and interns one post document (title + body), exactly as
    /// the in-memory build does.
    ///
    /// # Panics
    /// Panics if called after [`seal_posts`](SegmentBuilder::seal_posts).
    pub fn add_post(&mut self, title: &str, text: &str) {
        assert!(
            self.post_vocab_len.is_none(),
            "add_post after seal_posts breaks the phase split"
        );
        let a = &mut self.arrays;
        let d = flatten(&[title, text], false);
        let start = a.doc_tokens.len();
        for tok in d.tokens() {
            a.doc_tokens.push(self.vocab.intern(tok));
        }
        a.text_starts.push((start + d.title_count as usize) as u32);
        a.doc_offsets.push(a.doc_tokens.len() as u32);
        // Run-length encode the locally-sorted row; the merge re-sorts it
        // under global ids.
        self.row.clear();
        self.row.extend_from_slice(&a.doc_tokens[start..]);
        self.row.sort_unstable();
        let mut i = 0;
        while i < self.row.len() {
            let term = self.row[i];
            let mut j = i + 1;
            while j < self.row.len() && self.row[j] == term {
                j += 1;
            }
            a.dt_terms.push(term);
            a.dt_counts.push((j - i) as u32);
            i = j;
        }
        a.dt_offsets.push(a.dt_terms.len() as u32);
    }

    /// Ends the post phase, recording how much local vocabulary it minted.
    pub fn seal_posts(&mut self) {
        assert!(self.post_vocab_len.is_none(), "seal_posts called twice");
        self.post_vocab_len = Some(self.vocab.len() as u32);
    }

    /// Tokenizes the comments of the next post (stopwords kept). Must be
    /// called once per post added, in post order, after
    /// [`seal_posts`](SegmentBuilder::seal_posts); posts without comments
    /// take an empty iterator.
    pub fn add_post_comments<'a>(&mut self, texts: impl IntoIterator<Item = &'a str>) {
        assert!(
            self.post_vocab_len.is_some(),
            "add_post_comments before seal_posts breaks the phase split"
        );
        let a = &mut self.arrays;
        let mut count = 0u32;
        for text in texts {
            let d = flatten(&[text], true);
            for tok in d.tokens() {
                a.comment_tokens.push(self.vocab.intern(tok));
            }
            a.comment_offsets.push(a.comment_tokens.len() as u32);
            count += 1;
        }
        let prev = *a.comment_starts.last().expect("seeded with 0");
        a.comment_starts.push(prev + count);
        self.comment_posts += 1;
    }

    /// Seals the segment.
    ///
    /// # Panics
    /// Panics unless [`seal_posts`](SegmentBuilder::seal_posts) ran and
    /// every post received its
    /// [`add_post_comments`](SegmentBuilder::add_post_comments) call.
    pub fn finish(self) -> CorpusSegment {
        let post_vocab_len = self.post_vocab_len.expect("finish before seal_posts");
        let posts = self.arrays.text_starts.len();
        assert_eq!(
            self.comment_posts, posts,
            "every post needs an add_post_comments call"
        );
        CorpusSegment {
            vocab: self.vocab,
            post_vocab_len,
            posts,
            comments: self.arrays.comment_offsets.len() - 1,
            store: SegmentStore::Resident(self.arrays),
        }
    }
}

/// Spill accounting, reported by [`ShardedCorpusBuilder`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Segments whose arrays were written to temp files.
    pub segments_spilled: usize,
    /// Bytes of array data moved out of memory.
    pub bytes_spilled: usize,
}

/// Merges [`CorpusSegment`]s (any arrival order) into one corpus equal to
/// the in-memory build over the concatenated document stream.
#[derive(Debug)]
pub struct ShardedCorpusBuilder {
    /// `(shard index, segment)`, sorted by index at merge time.
    segments: Vec<(usize, CorpusSegment)>,
    spill_budget: usize,
    resident_bytes: usize,
    stats: SpillStats,
}

impl ShardedCorpusBuilder {
    /// A builder that spills segment arrays to temp files whenever the
    /// resident total exceeds `spill_budget` bytes (`usize::MAX` = never
    /// spill).
    pub fn new(spill_budget: usize) -> ShardedCorpusBuilder {
        ShardedCorpusBuilder {
            segments: Vec::new(),
            spill_budget,
            resident_bytes: 0,
            stats: SpillStats::default(),
        }
    }

    /// Adds shard `index`'s segment. Indices must be unique and, at merge
    /// time, form a dense `0..shards` range; arrival order is free.
    pub fn add_shard(&mut self, index: usize, segment: CorpusSegment) {
        assert!(
            self.segments.iter().all(|(i, _)| *i != index),
            "shard {index} added twice"
        );
        self.resident_bytes += segment.resident_bytes();
        self.segments.push((index, segment));
        self.enforce_budget();
    }

    /// Spill accounting so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Bytes of segment array data currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    fn enforce_budget(&mut self) {
        while self.resident_bytes > self.spill_budget {
            // Spill the largest resident segment first: fewest files for the
            // most relief. Ties break on lowest index for determinism.
            let victim = self
                .segments
                .iter_mut()
                .filter(|(_, s)| s.resident_bytes() > 0)
                .max_by_key(|(i, s)| (s.resident_bytes(), usize::MAX - *i));
            let Some((_, seg)) = victim else { break };
            let freed = seg.spill().expect("spill to temp dir");
            self.resident_bytes -= freed;
            self.stats.segments_spilled += 1;
            self.stats.bytes_spilled += freed;
        }
    }

    /// Sorts segments by shard index and validates density.
    fn ordered(mut self) -> Vec<CorpusSegment> {
        self.segments.sort_by_key(|(i, _)| *i);
        for (expect, (got, _)) in self.segments.iter().enumerate() {
            assert_eq!(*got, expect, "shard indices must form a dense 0..n range");
        }
        self.segments.into_iter().map(|(_, s)| s).collect()
    }

    /// Builds the global vocabulary (post-phase terms of every shard in
    /// order, then comment-phase terms) and the per-segment local→global id
    /// remap tables.
    fn merge_vocab(segments: &[CorpusSegment]) -> (Interner, Vec<Vec<TermId>>) {
        let mut global = Interner::with_capacity(1024);
        let mut remaps: Vec<Vec<TermId>> = segments
            .iter()
            .map(|s| Vec::with_capacity(s.vocab.len()))
            .collect();
        for (seg, remap) in segments.iter().zip(remaps.iter_mut()) {
            for id in 0..seg.post_vocab_len {
                remap.push(global.intern(seg.vocab.resolve(id)));
            }
        }
        for (seg, remap) in segments.iter().zip(remaps.iter_mut()) {
            for id in seg.post_vocab_len..seg.vocab.len() as u32 {
                remap.push(global.intern(seg.vocab.resolve(id)));
            }
        }
        (global, remaps)
    }

    /// Remaps + rebases one segment's arrays into the merge cursor state,
    /// streaming each finished array into `sink(array_index, data)`.
    fn emit_segment(
        arrays: &ArraySet,
        remap: &[TermId],
        cursor: &mut MergeCursor,
        mut sink: impl FnMut(usize, Vec<u32>),
    ) {
        let doc_tokens: Vec<u32> = arrays
            .doc_tokens
            .iter()
            .map(|&t| remap[t as usize])
            .collect();
        let doc_offsets: Vec<u32> = arrays.doc_offsets[1..]
            .iter()
            .map(|&o| o + cursor.doc_tokens)
            .collect();
        let text_starts: Vec<u32> = arrays
            .text_starts
            .iter()
            .map(|&s| s + cursor.doc_tokens)
            .collect();
        // Re-sort every document-term row under global ids (terms within a
        // row are distinct, so (term, count) pairs keep their counts).
        let mut dt_terms = Vec::with_capacity(arrays.dt_terms.len());
        let mut dt_counts = Vec::with_capacity(arrays.dt_counts.len());
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for w in arrays.dt_offsets.windows(2) {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            pairs.clear();
            pairs.extend(
                arrays.dt_terms[lo..hi]
                    .iter()
                    .zip(&arrays.dt_counts[lo..hi])
                    .map(|(&t, &c)| (remap[t as usize], c)),
            );
            pairs.sort_unstable();
            dt_terms.extend(pairs.iter().map(|&(t, _)| t));
            dt_counts.extend(pairs.iter().map(|&(_, c)| c));
        }
        let dt_offsets: Vec<u32> = arrays.dt_offsets[1..]
            .iter()
            .map(|&o| o + cursor.dt)
            .collect();
        let comment_tokens: Vec<u32> = arrays
            .comment_tokens
            .iter()
            .map(|&t| remap[t as usize])
            .collect();
        let comment_offsets: Vec<u32> = arrays.comment_offsets[1..]
            .iter()
            .map(|&o| o + cursor.comment_tokens)
            .collect();
        let comment_starts: Vec<u32> = arrays.comment_starts[1..]
            .iter()
            .map(|&s| s + cursor.comments)
            .collect();
        cursor.doc_tokens += arrays.doc_tokens.len() as u32;
        cursor.dt += arrays.dt_terms.len() as u32;
        cursor.comment_tokens += arrays.comment_tokens.len() as u32;
        cursor.comments += (arrays.comment_offsets.len() - 1) as u32;
        sink(0, doc_tokens);
        sink(1, doc_offsets);
        sink(2, text_starts);
        sink(3, dt_terms);
        sink(4, dt_counts);
        sink(5, dt_offsets);
        sink(6, comment_tokens);
        sink(7, comment_offsets);
        sink(8, comment_starts);
    }

    /// Merges all segments into a resident [`PreparedCorpus`], bit-identical
    /// to [`PreparedCorpus::build`] over the same document stream.
    pub fn finish(self) -> PreparedCorpus {
        let segments = self.ordered();
        let (global, remaps) = Self::merge_vocab(&segments);
        let mut merged: [Vec<u32>; ARRAY_COUNT] = Default::default();
        // The three offset arrays and comment_starts carry a leading 0 that
        // segment slices drop; restore it once globally.
        for i in [1, 5, 7, 8] {
            merged[i].push(0);
        }
        let mut cursor = MergeCursor::default();
        for (seg, remap) in segments.iter().zip(&remaps) {
            let arrays = seg.load().expect("read back spilled segment");
            Self::emit_segment(&arrays, remap, &mut cursor, |idx, data| {
                merged[idx].extend_from_slice(&data);
            });
        }
        let [doc_tokens, doc_offsets, text_starts, dt_terms, dt_counts, dt_offsets, comment_tokens, comment_offsets, comment_starts] =
            merged;
        PreparedCorpus::from_parts(
            global,
            doc_tokens,
            doc_offsets,
            text_starts,
            dt_terms,
            dt_counts,
            dt_offsets,
            comment_tokens,
            comment_offsets,
            comment_starts,
        )
    }

    /// Merges all segments straight to disk: peak memory is one segment's
    /// arrays plus the global vocabulary, independent of corpus size.
    pub fn finish_spilled(self) -> io::Result<SpilledCorpus> {
        let mut stats = self.stats;
        let segments = self.ordered();
        let (global, remaps) = Self::merge_vocab(&segments);
        // Make sure nothing large is resident while merging.
        let mut segments = segments;
        for seg in segments.iter_mut() {
            let freed = seg.spill()?;
            if freed > 0 {
                stats.segments_spilled += 1;
                stats.bytes_spilled += freed;
            }
        }
        // Total lengths are known up front, so the output header and section
        // layout can be written before streaming the data.
        let mut lens = [0u64; ARRAY_COUNT];
        for i in [1usize, 5, 7, 8] {
            lens[i] = 1; // the restored leading 0
        }
        for seg in &segments {
            let seg_lens = match &seg.store {
                SegmentStore::Spilled { lens, .. } => *lens,
                SegmentStore::Resident(a) => a.lens(),
            };
            lens[0] += seg_lens[0];
            lens[1] += seg_lens[1] - 1;
            lens[2] += seg_lens[2];
            lens[3] += seg_lens[3];
            lens[4] += seg_lens[4];
            lens[5] += seg_lens[5] - 1;
            lens[6] += seg_lens[6];
            lens[7] += seg_lens[7] - 1;
            lens[8] += seg_lens[8] - 1;
        }
        let file = SpillFile {
            path: fresh_spill_path("corpus"),
        };
        let out = File::create(&file.path)?;
        let mut w = BufWriter::new(out);
        for &l in &lens {
            w.write_all(&l.to_le_bytes())?;
        }
        // Section byte offsets within the file (after the header).
        let header = (ARRAY_COUNT * 8) as u64;
        let mut section_start = [0u64; ARRAY_COUNT];
        let mut acc = header;
        for i in 0..ARRAY_COUNT {
            section_start[i] = acc;
            acc += lens[i] * 4;
        }
        w.flush()?;
        let mut out = w.into_inner().map_err(|e| e.into_error())?;
        out.set_len(acc)?;
        // Write cursor per section; seed the restored leading zeros.
        let mut write_at = section_start;
        for i in [1usize, 5, 7, 8] {
            out.seek(SeekFrom::Start(write_at[i]))?;
            out.write_all(&0u32.to_le_bytes())?;
            write_at[i] += 4;
        }
        let mut cursor = MergeCursor::default();
        for (seg, remap) in segments.iter().zip(&remaps) {
            let arrays = seg.load()?;
            let mut io_err: Option<io::Error> = None;
            Self::emit_segment(&arrays, remap, &mut cursor, |idx, data| {
                if io_err.is_some() {
                    return;
                }
                let r = out.seek(SeekFrom::Start(write_at[idx])).and_then(|_| {
                    let mut bw = BufWriter::new(&mut out);
                    write_u32s(&mut bw, &data)?;
                    bw.flush()
                });
                if let Err(e) = r {
                    io_err = Some(e);
                } else {
                    write_at[idx] += data.len() as u64 * 4;
                }
            });
            if let Some(e) = io_err {
                return Err(e);
            }
        }
        out.sync_all()?;
        Ok(SpilledCorpus {
            vocab: global,
            file,
            lens,
            posts: segments.iter().map(|s| s.posts).sum(),
            comments: segments.iter().map(|s| s.comments).sum(),
            stats,
        })
    }
}

/// Running totals while appending segments to the merged layout.
#[derive(Debug, Default)]
struct MergeCursor {
    doc_tokens: u32,
    dt: u32,
    comment_tokens: u32,
    comments: u32,
}

/// A merged corpus whose arrays live on disk: the resident footprint is the
/// vocabulary plus O(1) metadata. [`load`](SpilledCorpus::load) materialises
/// it as a [`PreparedCorpus`] for verification at small scales.
#[derive(Debug)]
pub struct SpilledCorpus {
    vocab: Interner,
    file: SpillFile,
    lens: [u64; ARRAY_COUNT],
    posts: usize,
    comments: usize,
    stats: SpillStats,
}

impl SpilledCorpus {
    /// Number of post documents.
    pub fn posts(&self) -> usize {
        self.posts
    }

    /// Number of comments.
    pub fn comments(&self) -> usize {
        self.comments
    }

    /// Distinct terms in the merged vocabulary.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Total token occurrences (posts + comments).
    pub fn total_tokens(&self) -> usize {
        (self.lens[0] + self.lens[6]) as usize
    }

    /// Bytes of array data in the on-disk layout.
    pub fn file_bytes(&self) -> u64 {
        self.lens.iter().sum::<u64>() * 4 + (ARRAY_COUNT * 8) as u64
    }

    /// Spill accounting accumulated while building.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Reads the merged arrays back into a resident [`PreparedCorpus`].
    pub fn load(&self) -> io::Result<PreparedCorpus> {
        let mut r = BufReader::new(File::open(&self.file.path)?);
        let mut header = [0u8; ARRAY_COUNT * 8];
        r.read_exact(&mut header)?;
        let mut lens = [0u64; ARRAY_COUNT];
        for (i, l) in lens.iter_mut().enumerate() {
            *l = u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().unwrap());
        }
        debug_assert_eq!(lens, self.lens);
        let mut arrays: Vec<Vec<u32>> = Vec::with_capacity(ARRAY_COUNT);
        for &l in &lens {
            arrays.push(read_u32s(&mut r, l as usize)?);
        }
        let comment_starts = arrays.pop().unwrap();
        let comment_offsets = arrays.pop().unwrap();
        let comment_tokens = arrays.pop().unwrap();
        let dt_offsets = arrays.pop().unwrap();
        let dt_counts = arrays.pop().unwrap();
        let dt_terms = arrays.pop().unwrap();
        let text_starts = arrays.pop().unwrap();
        let doc_offsets = arrays.pop().unwrap();
        let doc_tokens = arrays.pop().unwrap();
        Ok(PreparedCorpus::from_parts(
            self.vocab.clone(),
            doc_tokens,
            doc_offsets,
            text_starts,
            dt_terms,
            dt_counts,
            dt_offsets,
            comment_tokens,
            comment_offsets,
            comment_starts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mass_types::{Dataset, DatasetBuilder};

    /// Builds a segment per blogger-range the same way streamed ingest does,
    /// from an in-memory dataset (posts grouped by author in order).
    fn segment_for_posts(ds: &Dataset, posts: std::ops::Range<usize>) -> CorpusSegment {
        let mut b = SegmentBuilder::new();
        for k in posts.clone() {
            b.add_post(&ds.posts[k].title, &ds.posts[k].text);
        }
        b.seal_posts();
        for k in posts {
            b.add_post_comments(ds.posts[k].comments.iter().map(|c| c.text.as_str()));
        }
        b.finish()
    }

    fn sample(posts: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        let n = 6;
        let ids: Vec<_> = (0..n).map(|i| b.blogger(format!("b{i}"))).collect();
        for k in 0..posts {
            let author = ids[k % n];
            let p = b.post(
                author,
                format!("title{} hotel shared", k % 5),
                format!(
                    "travel word{} flight beach shared vocabulary post number {k}",
                    k % 7
                ),
            );
            // Comments introduce vocabulary that sometimes reappears in
            // later posts, exercising the cross-phase interning order.
            b.comment(
                p,
                ids[(k + 1) % n],
                format!("I agree about word{} and beach", (k + 3) % 7),
                None,
            );
            if k % 3 == 0 {
                b.comment(
                    p,
                    ids[(k + 2) % n],
                    format!("fresh comment{} term", k),
                    None,
                );
            }
        }
        b.build().unwrap()
    }

    fn split(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
        let base = n / shards;
        let extra = n % shards;
        let mut out = Vec::new();
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }

    #[test]
    fn sharded_merge_equals_in_memory_build() {
        let ds = sample(40);
        let want = PreparedCorpus::build(&ds, 1);
        for shards in [1usize, 2, 3, 7, 40, 64] {
            let mut b = ShardedCorpusBuilder::new(usize::MAX);
            for (i, r) in split(ds.posts.len(), shards).into_iter().enumerate() {
                b.add_shard(i, segment_for_posts(&ds, r));
            }
            let got = b.finish();
            assert!(got == want, "mismatch at {shards} shards");
        }
    }

    #[test]
    fn merge_is_shard_arrival_order_independent() {
        let ds = sample(30);
        let ranges = split(ds.posts.len(), 5);
        let mut forward = ShardedCorpusBuilder::new(usize::MAX);
        for (i, r) in ranges.iter().enumerate() {
            forward.add_shard(i, segment_for_posts(&ds, r.clone()));
        }
        let mut backward = ShardedCorpusBuilder::new(usize::MAX);
        for (i, r) in ranges.iter().enumerate().rev() {
            backward.add_shard(i, segment_for_posts(&ds, r.clone()));
        }
        assert!(forward.finish() == backward.finish());
    }

    #[test]
    fn spilled_segments_merge_identically() {
        let ds = sample(36);
        let want = PreparedCorpus::build(&ds, 1);
        // Budget 0: every segment spills on arrival.
        let mut b = ShardedCorpusBuilder::new(0);
        for (i, r) in split(ds.posts.len(), 4).into_iter().enumerate() {
            b.add_shard(i, segment_for_posts(&ds, r));
        }
        assert_eq!(b.stats().segments_spilled, 4);
        assert!(b.stats().bytes_spilled > 0);
        assert_eq!(b.resident_bytes(), 0);
        assert!(b.finish() == want);
    }

    #[test]
    fn finish_spilled_roundtrips_bit_identically() {
        let ds = sample(36);
        let want = PreparedCorpus::build(&ds, 1);
        for budget in [0usize, usize::MAX] {
            let mut b = ShardedCorpusBuilder::new(budget);
            for (i, r) in split(ds.posts.len(), 3).into_iter().enumerate() {
                b.add_shard(i, segment_for_posts(&ds, r));
            }
            let spilled = b.finish_spilled().unwrap();
            assert_eq!(spilled.posts(), ds.posts.len());
            assert_eq!(spilled.vocab_len(), want.vocab_len());
            assert_eq!(spilled.total_tokens(), want.total_tokens());
            assert!(spilled.file_bytes() > 0);
            let got = spilled.load().unwrap();
            assert!(got == want, "budget {budget}");
        }
    }

    #[test]
    fn spill_files_are_deleted_on_drop() {
        let ds = sample(12);
        let mut seg = segment_for_posts(&ds, 0..12);
        seg.spill().unwrap();
        let path = match &seg.store {
            SegmentStore::Spilled { file, .. } => file.path.clone(),
            _ => unreachable!(),
        };
        assert!(path.exists());
        drop(seg);
        assert!(!path.exists(), "spill file leaked: {path:?}");
    }

    #[test]
    fn empty_segments_are_harmless() {
        let ds = sample(10);
        let want = PreparedCorpus::build(&ds, 1);
        let mut b = ShardedCorpusBuilder::new(usize::MAX);
        b.add_shard(0, segment_for_posts(&ds, 0..10));
        for i in 1..4 {
            b.add_shard(i, segment_for_posts(&ds, 10..10));
        }
        assert!(b.finish() == want);
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_shard_index_rejected() {
        let ds = sample(4);
        let mut b = ShardedCorpusBuilder::new(usize::MAX);
        b.add_shard(0, segment_for_posts(&ds, 0..2));
        b.add_shard(0, segment_for_posts(&ds, 2..4));
    }

    #[test]
    #[should_panic(expected = "phase split")]
    fn post_after_seal_rejected() {
        let mut b = SegmentBuilder::new();
        b.add_post("t", "x");
        b.seal_posts();
        b.add_post("t2", "y");
    }

    #[test]
    #[should_panic(expected = "add_post_comments")]
    fn finish_requires_comment_calls() {
        let mut b = SegmentBuilder::new();
        b.add_post("t", "x");
        b.seal_posts();
        let _ = b.finish();
    }
}
