//! # mass-text
//!
//! Text-mining substrate for MASS.
//!
//! The paper's Analyzer Module has two halves (Section III): the *Post
//! Analyzer* "uses text classification technique to classify a post into
//! different domains" and the *Comment Analyzer* derives each comment's
//! attitude. Both, plus the novelty facet of the quality score and the
//! Scenario-1/2 interest mining, live here:
//!
//! * [`tokenize`](mod@tokenize) — lowercasing word tokenizer with a stopword filter,
//! * [`nb`] — multinomial naive Bayes (ref \[7\]) producing the per-domain
//!   posterior `iv(b_i, d_k, C_t)` of Eq. 5,
//! * [`sentiment`] — lexicon classifier implementing the paper's
//!   positive/negative/neutral split with the seed words it lists,
//! * [`novelty`] — copy-indicator detection and shingle-based near-duplicate
//!   scoring for `Novelty(b_i, d_k)`,
//! * [`interest`] — interest-vector mining from advertisements and user
//!   profiles (Scenarios 1 and 2).
//!
//! ```
//! use mass_text::sentiment::SentimentLexicon;
//! use mass_types::Sentiment;
//!
//! let lex = SentimentLexicon::default();
//! assert_eq!(lex.classify("I totally agree and support this"), Sentiment::Positive);
//! assert_eq!(lex.classify("I disagree, this is wrong"), Sentiment::Negative);
//! assert_eq!(lex.classify("a post about databases"), Sentiment::Neutral);
//! ```

pub mod discovery;
pub mod interest;
pub mod intern;
pub mod nb;
pub mod novelty;
pub mod prepared;
pub mod search;
pub mod sentiment;
pub mod shard;
pub mod stopwords;
pub mod tokenize;

pub use discovery::{
    discover_topics, discover_topics_prepared, DiscoveryParams, Topic, TopicModel,
};
pub use interest::InterestMiner;
pub use intern::{Interner, TermId};
pub use nb::{CompiledNb, NaiveBayes, NaiveBayesTrainer, NbPrecision, NB_FAST_TOLERANCE};
pub use novelty::{NoveltyDetector, NoveltyParams};
pub use prepared::PreparedCorpus;
pub use search::{Bm25Params, InvertedIndex};
pub use sentiment::{CompiledSentiment, SentimentLexicon};
pub use shard::{CorpusSegment, SegmentBuilder, ShardedCorpusBuilder, SpillStats, SpilledCorpus};
pub use tokenize::{for_each_token, tokenize, tokenize_keep_stopwords, TermCounts};
