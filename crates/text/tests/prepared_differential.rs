//! Differential fuzzing: the interned zero-copy pipeline versus the legacy
//! string pipeline, on randomized unicode-heavy text.
//!
//! Every facet that was rewired onto [`PreparedCorpus`] — tokenization, NB
//! posteriors, novelty shingling, sentiment factors — must reproduce the
//! string path **bit for bit** (`f64::to_bits`), because the PR 3 contract
//! promises byte-identical `rank --json-out` artifacts across the rewrite.

use mass_text::{
    tokenize, tokenize_keep_stopwords, NaiveBayesTrainer, NoveltyDetector, PreparedCorpus,
    SentimentLexicon,
};
use mass_types::DatasetBuilder;
use proptest::prelude::*;

/// Unicode-heavy word soup: ASCII, apostrophes, digits, Greek (including
/// final-sigma-sensitive uppercase), Cyrillic, accented Latin, CJK, emoji
/// range symbols, and stray punctuation between words.
const WORDS: &str = "([a-zA-Z0-9'À-ÿΑ-Ωα-ωА-Яа-я一-鿆☀-☕ .,;!?]{0,14} ){0,10}";

fn build_corpus(posts: &[(String, String)], comments: &[String]) -> mass_types::Dataset {
    let mut b = DatasetBuilder::new();
    let author = b.blogger("author");
    let commenter = b.blogger("commenter");
    let mut ids = Vec::new();
    for (title, text) in posts {
        ids.push(b.post(author, title.clone(), text.clone()));
    }
    for (i, text) in comments.iter().enumerate() {
        b.comment(ids[i % ids.len()], commenter, text.clone(), None);
    }
    b.build().expect("fuzz dataset is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interned_pipeline_matches_string_pipeline_bitwise(
        posts in proptest::collection::vec((WORDS, WORDS), 1..5),
        comments in proptest::collection::vec(WORDS, 0..6),
    ) {
        let ds = build_corpus(&posts, &comments);
        let corpus = PreparedCorpus::build(&ds, 1);

        // 1. Tokenization: resolved interned ids == string tokenizer output.
        for (k, p) in ds.posts.iter().enumerate() {
            let doc: Vec<&str> = corpus.doc_tokens(k).iter().map(|&t| corpus.resolve(t)).collect();
            prop_assert_eq!(doc, tokenize(&format!("{} {}", p.title, p.text)), "doc {}", k);
            let body: Vec<&str> =
                corpus.text_tokens(k).iter().map(|&t| corpus.resolve(t)).collect();
            prop_assert_eq!(body, tokenize(&p.text), "body {}", k);
            for (j, c) in p.comments.iter().enumerate() {
                let toks: Vec<&str> =
                    corpus.comment_tokens(k, j).iter().map(|&t| corpus.resolve(t)).collect();
                prop_assert_eq!(toks, tokenize_keep_stopwords(&c.text), "comment {}/{}", k, j);
            }
        }

        // 2. NB posterior: compiled gather over ids == string classify.
        let mut trainer = NaiveBayesTrainer::new(3);
        for (k, p) in ds.posts.iter().enumerate() {
            trainer.add_document(k % 3, &format!("{} {}", p.title, p.text));
        }
        let model = trainer.build(1);
        let compiled = model.compile(corpus.interner());
        for (k, p) in ds.posts.iter().enumerate() {
            let legacy = model.posterior(&format!("{} {}", p.title, p.text));
            let interned = compiled.posterior_ids(corpus.doc_tokens(k));
            prop_assert_eq!(
                legacy.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                interned.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "posterior {}", k
            );
        }

        // 3. Novelty: shingles from resolved tokens == shingles from text,
        // with the detectors accumulating the same corpus state.
        let mut old = NoveltyDetector::default();
        let mut new = NoveltyDetector::default();
        for (k, p) in ds.posts.iter().enumerate() {
            let legacy = old.score_and_add(&p.text);
            let toks: Vec<&str> =
                corpus.text_tokens(k).iter().map(|&t| corpus.resolve(t)).collect();
            let interned = new.score_and_add_tokens(&p.text, &toks);
            prop_assert_eq!(legacy.to_bits(), interned.to_bits(), "novelty {}", k);
        }

        // 4. Sentiment: compiled polarity gather == string lexicon.
        let lexicon = SentimentLexicon::default();
        let compiled = lexicon.compile(corpus.interner());
        for (k, p) in ds.posts.iter().enumerate() {
            for (j, c) in p.comments.iter().enumerate() {
                let legacy = lexicon.factor(&c.text);
                let interned = compiled.factor_ids(corpus.comment_tokens(k, j));
                prop_assert_eq!(legacy.to_bits(), interned.to_bits(), "sentiment {}/{}", k, j);
            }
        }
    }
}
