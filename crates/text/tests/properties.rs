//! Property-based tests for the text-mining substrate.

use mass_text::{
    tokenize, tokenize_keep_stopwords, NaiveBayesTrainer, SentimentLexicon, TermCounts,
};
use mass_types::Sentiment;
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokens_are_lowercase_and_nonempty(s in ".{0,200}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.to_lowercase(), t.clone());
            prop_assert!(!t.contains(char::is_whitespace));
        }
    }

    #[test]
    fn tokenize_is_idempotent_on_its_output(s in ".{0,200}") {
        let once = tokenize(&s).join(" ");
        let twice = tokenize(&once).join(" ");
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn stopword_filtering_only_removes(s in "[a-zA-Z ]{0,200}") {
        let with = tokenize_keep_stopwords(&s);
        let without = tokenize(&s);
        prop_assert!(without.len() <= with.len());
        // Every surviving token appears in the unfiltered stream.
        let mut iter = with.iter();
        for t in &without {
            prop_assert!(iter.any(|x| x == t), "token {t} not in unfiltered stream");
        }
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(a in "[a-z ]{0,100}", b in "[a-z ]{0,100}") {
        let ta = TermCounts::from_text(&a);
        let tb = TermCounts::from_text(&b);
        let ab = ta.cosine(&tb);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ab), "cosine {ab}");
        prop_assert!((ab - tb.cosine(&ta)).abs() < 1e-12);
    }

    #[test]
    fn nb_posterior_is_a_distribution(
        docs in proptest::collection::vec(("[a-z]{1,8}( [a-z]{1,8}){0,10}", 0usize..4), 1..20),
        query in "[a-z ]{0,60}",
    ) {
        let mut t = NaiveBayesTrainer::new(4);
        for (text, class) in &docs {
            t.add_document(*class, text);
        }
        let model = t.build(1);
        let p = model.posterior(&query);
        prop_assert_eq!(p.len(), 4);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        for &x in &p {
            prop_assert!(x > 0.0, "smoothing keeps posteriors positive, got {x}");
        }
        // classify() agrees with argmax of the posterior.
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert_eq!(model.classify(&query), argmax);
    }

    #[test]
    fn nb_training_more_of_a_class_never_hurts_it(word in "[a-z]{3,8}") {
        // Adding another document of class 0 containing `word` must not
        // decrease the posterior of class 0 for `word`.
        let mut t1 = NaiveBayesTrainer::new(2);
        t1.add_document(0, &word);
        t1.add_document(1, "unrelated stuff entirely");
        let p1 = t1.build(1).posterior(&word)[0];

        let mut t2 = NaiveBayesTrainer::new(2);
        t2.add_document(0, &word);
        t2.add_document(0, &word);
        t2.add_document(1, "unrelated stuff entirely");
        let p2 = t2.build(1).posterior(&word)[0];
        prop_assert!(p2 >= p1 - 1e-12, "p1 {p1} p2 {p2}");
    }

    #[test]
    fn sentiment_classifier_is_total(s in ".{0,200}") {
        let lex = SentimentLexicon::default();
        let c = lex.classify(&s);
        prop_assert!(matches!(c, Sentiment::Positive | Sentiment::Negative | Sentiment::Neutral));
        // Factor always matches the class.
        prop_assert_eq!(lex.factor(&s), c.factor());
    }

    #[test]
    fn appending_agree_never_lowers_score(s in "[a-z ]{0,80}") {
        let lex = SentimentLexicon::default();
        let base = lex.score(&s);
        // Append with a buffer word so a trailing negation in `s` cannot
        // flip the appended positive token.
        let appended = format!("{s} also agree");
        prop_assert!(lex.score(&appended) >= base, "{s:?}");
    }

    #[test]
    fn novelty_marker_score_is_in_paper_band(s in ".{0,200}") {
        let n = mass_text::novelty::novelty_from_markers(&s);
        prop_assert!(n == 1.0 || (0.0 < n && n <= 0.1), "novelty {n}");
    }

    #[test]
    fn novelty_detector_duplicate_always_penalised(s in "[a-z]{3,8}( [a-z]{3,8}){7,15}") {
        let mut d = mass_text::NoveltyDetector::default();
        let first = d.score_and_add(&s);
        let second = d.score_and_add(&s);
        // The first sighting may already be penalised if the random words
        // happen to contain a copy marker (e.g. "via"); the invariants are
        // that a verbatim repeat lands in the paper band and never scores
        // above its original.
        prop_assert!(second <= 0.1, "duplicate scored {second}");
        prop_assert!(second <= first);
    }
}
