//! Property-based tests: escaping and full-document round-trips must be
//! lossless for arbitrary content, and the parser must never panic.

use mass_types::{DatasetBuilder, DomainId, Sentiment};
use mass_xml::{dataset_io, escape, unescape, Element, Parser, XmlWriter};
use proptest::prelude::*;

proptest! {
    #[test]
    fn escape_then_unescape_is_identity(s in ".{0,200}") {
        prop_assert_eq!(unescape(&escape(&s)).into_owned(), s);
    }

    #[test]
    fn escaped_text_has_no_raw_specials(s in ".{0,200}") {
        let escaped = escape(&s).into_owned();
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains('>'));
        prop_assert!(!escaped.contains('"'));
        // '&' only as part of an entity.
        for (i, _) in escaped.match_indices('&') {
            let tail = &escaped[i..];
            prop_assert!(
                tail.starts_with("&amp;")
                    || tail.starts_with("&lt;")
                    || tail.starts_with("&gt;")
                    || tail.starts_with("&quot;")
                    || tail.starts_with("&apos;"),
                "stray & in {escaped:?}"
            );
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in ".{0,300}") {
        let _ = Parser::new(&s).into_events(); // Ok or Err, never panic
        let _ = Element::parse(&s);
    }

    #[test]
    fn writer_output_always_parses(
        name in "[a-z][a-z0-9]{0,8}",
        attr in "[a-z][a-z0-9]{0,8}",
        value in ".{0,60}",
        text in ".{0,60}",
    ) {
        let mut w = XmlWriter::new();
        w.declaration();
        w.open_with_attrs(&name, &[(&attr, &value)]);
        w.text_element("child", &text);
        w.close();
        let doc = w.finish();
        let root = Element::parse(&doc).expect("writer output is well-formed");
        prop_assert_eq!(&root.name, &name);
        prop_assert_eq!(root.attr(&attr).unwrap(), value);
        // Whitespace-only text is dropped by the parser (inter-element
        // whitespace rule), so compare only when the payload is visible.
        if !text.trim().is_empty() {
            prop_assert_eq!(root.child("child").unwrap().text(), text);
        }
    }

    #[test]
    fn dataset_roundtrip_arbitrary_content(
        names in proptest::collection::vec(".{1,20}", 2..6),
        texts in proptest::collection::vec(".{0,80}", 1..8),
        comment_text in ".{0,40}",
    ) {
        let mut b = DatasetBuilder::new();
        let ids: Vec<_> = names.iter().map(|n| b.blogger(n.clone())).collect();
        for (i, t) in texts.iter().enumerate() {
            let author = ids[i % ids.len()];
            let pid = b.post_in_domain(author, format!("title {i}"), t.clone(), DomainId::new(i % 10));
            let commenter = ids[(i + 1) % ids.len()];
            if commenter != author {
                let sentiment = match i % 4 {
                    0 => Some(Sentiment::Positive),
                    1 => Some(Sentiment::Negative),
                    2 => Some(Sentiment::Neutral),
                    _ => None,
                };
                b.comment(pid, commenter, comment_text.clone(), sentiment);
            }
        }
        b.friend(ids[0], ids[1]);
        let ds = b.build().unwrap();
        let xml = dataset_io::to_xml_string(&ds);
        let back = dataset_io::from_xml_str(&xml).expect("roundtrip parses");
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn serialization_is_deterministic(seed in 0u64..50) {
        let out = mass_synth_free_dataset(seed);
        prop_assert_eq!(dataset_io::to_xml_string(&out), dataset_io::to_xml_string(&out));
    }
}

/// A tiny deterministic dataset builder (avoids a dev-dependency cycle on
/// mass-synth from this crate).
fn mass_synth_free_dataset(seed: u64) -> mass_types::Dataset {
    let mut b = DatasetBuilder::new();
    let n = 3 + (seed % 4) as usize;
    let ids: Vec<_> = (0..n).map(|i| b.blogger(format!("b{i}"))).collect();
    for i in 0..n {
        let p = b.post(ids[i], format!("t{i}"), format!("text {seed} {i}"));
        let c = ids[(i + 1) % n];
        if c != ids[i] {
            b.comment(p, c, "hello", None);
        }
    }
    b.build().unwrap()
}
