//! A minimal DOM built on the pull parser.
//!
//! Schema loaders (datasets, visualisation graphs) are much clearer over a
//! tree than a raw event stream, and MASS documents are small enough that
//! materialising them is free compared with the crawl that produced them.

use crate::error::{Error, Result};
use crate::parser::{Event, Parser};

/// A child of an [`Element`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Nested element.
    Element(Element),
    /// Character data (adjacent text is merged).
    Text(String),
}

/// An XML element: name, attributes and children.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Parses a complete document and returns its root element.
    ///
    /// Errors if the document is empty, has trailing content after the root,
    /// or is malformed.
    pub fn parse(input: &str) -> Result<Element> {
        let mut parser = Parser::new(input);
        let root = match parser.next_event()? {
            Event::Start {
                name,
                attributes,
                self_closing,
            } => build_element(&mut parser, name, attributes, self_closing)?,
            Event::Text(_) => {
                return Err(Error::schema("document has text before the root element"))
            }
            Event::Eof => return Err(Error::schema("document has no root element")),
            Event::End { .. } => unreachable!("parser rejects dangling end tags"),
        };
        match parser.next_event()? {
            Event::Eof => Ok(root),
            _ => Err(Error::schema("content after the root element")),
        }
    }

    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute value, or a schema error naming the element.
    pub fn require_attr(&self, name: &str) -> Result<&str> {
        self.attr(name)
            .ok_or_else(|| Error::schema(format!("<{}> missing attribute {name:?}", self.name)))
    }

    /// Parses a required attribute as `usize`.
    pub fn require_usize(&self, name: &str) -> Result<usize> {
        let raw = self.require_attr(name)?;
        raw.parse().map_err(|_| {
            Error::schema(format!(
                "<{}> attribute {name:?} is not an integer: {raw:?}",
                self.name
            ))
        })
    }

    /// Parses a required attribute as `f64`.
    pub fn require_f64(&self, name: &str) -> Result<f64> {
        let raw = self.require_attr(name)?;
        raw.parse().map_err(|_| {
            Error::schema(format!(
                "<{}> attribute {name:?} is not a number: {raw:?}",
                self.name
            ))
        })
    }

    /// Child elements (ignoring text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Child elements with a given tag name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// First child element with the given name.
    pub fn child<'a>(&'a self, name: &str) -> Option<&'a Element> {
        self.elements().find(|e| e.name == name)
    }

    /// First child element with the given name, or a schema error.
    pub fn require_child(&self, name: &str) -> Result<&Element> {
        self.child(name)
            .ok_or_else(|| Error::schema(format!("<{}> missing child <{name}>", self.name)))
    }

    /// Concatenated text content of this element (direct text children only).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }
}

fn build_element(
    parser: &mut Parser<'_>,
    name: String,
    attributes: Vec<(String, String)>,
    self_closing: bool,
) -> Result<Element> {
    let mut el = Element {
        name,
        attributes,
        children: Vec::new(),
    };
    if self_closing {
        return Ok(el);
    }
    loop {
        match parser.next_event()? {
            Event::Start {
                name,
                attributes,
                self_closing,
            } => {
                let child = build_element(parser, name, attributes, self_closing)?;
                el.children.push(Node::Element(child));
            }
            Event::Text(t) => match el.children.last_mut() {
                Some(Node::Text(prev)) => prev.push_str(&t),
                _ => el.children.push(Node::Text(t)),
            },
            Event::End { .. } => return Ok(el), // parser already verified the name
            Event::Eof => unreachable!("parser reports unclosed elements as errors"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_navigate() {
        let e =
            Element::parse("<root v=\"1\"><item id=\"a\">x</item><item id=\"b\"/><other/></root>")
                .unwrap();
        assert_eq!(e.name, "root");
        assert_eq!(e.attr("v"), Some("1"));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.elements_named("item").count(), 2);
        assert_eq!(e.child("other").unwrap().name, "other");
        assert_eq!(e.child("item").unwrap().text(), "x");
        assert!(e.child("nope").is_none());
    }

    #[test]
    fn require_helpers_error_with_context() {
        let e = Element::parse("<p n=\"12\" f=\"2.5\" bad=\"x\"/>").unwrap();
        assert_eq!(e.require_usize("n").unwrap(), 12);
        assert!((e.require_f64("f").unwrap() - 2.5).abs() < 1e-12);
        assert!(e
            .require_attr("gone")
            .unwrap_err()
            .to_string()
            .contains("<p>"));
        assert!(e
            .require_usize("bad")
            .unwrap_err()
            .to_string()
            .contains("not an integer"));
        assert!(e
            .require_f64("bad")
            .unwrap_err()
            .to_string()
            .contains("not a number"));
        assert!(e
            .require_child("kid")
            .unwrap_err()
            .to_string()
            .contains("missing child"));
    }

    #[test]
    fn text_merges_across_cdata() {
        let e = Element::parse("<t>a<![CDATA[ & ]]>b</t>").unwrap();
        assert_eq!(e.text(), "a & b");
    }

    #[test]
    fn empty_document_rejected() {
        assert!(Element::parse("").is_err());
        assert!(Element::parse("   ").is_err());
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(Element::parse("<a/><b/>").is_err());
    }

    #[test]
    fn leading_text_rejected() {
        assert!(Element::parse("oops<a/>").is_err());
    }

    #[test]
    fn deep_nesting() {
        let depth = 1000;
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<d>");
        }
        for _ in 0..depth {
            doc.push_str("</d>");
        }
        let mut e = &Element::parse(&doc).unwrap();
        let mut seen = 1;
        while let Some(c) = e.child("d") {
            e = c;
            seen += 1;
        }
        assert_eq!(seen, depth);
    }
}
