//! # mass-xml
//!
//! XML persistence substrate for MASS, written from scratch.
//!
//! The paper's crawler module "stores the bloggers' information (including
//! the bloggers' personal information, posts, and corresponding comments) in
//! XML files" (Section III), and the Fig. 4 visualisation graph "can be saved
//! as an XML file and be loaded in future" (Section IV). This crate provides
//! everything those flows need without external dependencies:
//!
//! * [`escape()`](escape()) / [`unescape`] — the five XML entities,
//! * [`XmlWriter`] — an indenting event writer,
//! * [`Parser`] — a pull parser over the XML subset MASS emits
//!   (declaration, comments, elements, attributes, text, CDATA),
//! * [`Element`] — a small DOM built on the pull parser, and
//! * [`dataset_io`] — the `<blogosphere>` schema for
//!   [`Dataset`](mass_types::Dataset) round-trips.
//!
//! ```
//! use mass_types::DatasetBuilder;
//! use mass_xml::dataset_io;
//!
//! let mut b = DatasetBuilder::new();
//! let a = b.blogger("Amery");
//! b.post(a, "Hello", "first post & more");
//! let ds = b.build().unwrap();
//!
//! let xml = dataset_io::to_xml_string(&ds);
//! let back = dataset_io::from_xml_str(&xml).unwrap();
//! assert_eq!(ds, back);
//! ```

pub mod dataset_io;
pub mod error;
pub mod escape;
pub mod parser;
pub mod tree;
pub mod writer;

pub use error::{Error, Result};
pub use escape::{escape, unescape};
pub use parser::{Event, Parser};
pub use tree::{Element, Node};
pub use writer::XmlWriter;
