//! Error type for XML parsing, schema mapping and file I/O.

use std::fmt;

/// Convenience alias for XML operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from the XML substrate.
#[derive(Debug)]
pub enum Error {
    /// Malformed XML at a byte offset in the input.
    Syntax {
        /// Byte offset where the problem was detected.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Well-formed XML that does not match the expected MASS schema.
    Schema(String),
    /// The decoded dataset failed referential-integrity validation.
    Validation(mass_types::Error),
    /// Underlying file I/O failure.
    Io(std::io::Error),
}

impl Error {
    pub(crate) fn syntax(offset: usize, message: impl Into<String>) -> Self {
        Error::Syntax {
            offset,
            message: message.into(),
        }
    }

    pub(crate) fn schema(message: impl Into<String>) -> Self {
        Error::Schema(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            Error::Schema(m) => write!(f, "XML schema error: {m}"),
            Error::Validation(e) => write!(f, "decoded dataset is inconsistent: {e}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<mass_types::Error> for Error {
    fn from(e: mass_types::Error) -> Self {
        Error::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = Error::syntax(17, "unexpected '<'");
        assert_eq!(e.to_string(), "XML syntax error at byte 17: unexpected '<'");
    }

    #[test]
    fn io_error_wraps() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn schema_error_displays() {
        assert!(Error::schema("missing <posts>")
            .to_string()
            .contains("missing <posts>"));
    }
}
