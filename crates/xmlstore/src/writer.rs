//! An indenting XML event writer.

use crate::escape::escape;
use std::fmt::Write as _;

/// Streaming XML writer with automatic indentation and tag balancing.
///
/// The writer produces the exact layout the MASS loaders expect and tests
/// round-trip against: two-space indentation, one element per line, text
/// content kept inline within its element.
///
/// ```
/// use mass_xml::XmlWriter;
/// let mut w = XmlWriter::new();
/// w.declaration();
/// w.open("root");
/// w.leaf_with_attrs("item", &[("id", "1")]);
/// w.text_element("note", "a < b");
/// w.close();
/// assert_eq!(
///     w.finish(),
///     "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<root>\n  <item id=\"1\"/>\n  <note>a &lt; b</note>\n</root>\n"
/// );
/// ```
#[derive(Debug, Default)]
pub struct XmlWriter {
    buf: String,
    stack: Vec<String>,
}

impl XmlWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the standard `<?xml version="1.0" encoding="UTF-8"?>` header.
    pub fn declaration(&mut self) {
        self.buf
            .push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    }

    /// Writes an XML comment (`--` sequences inside are replaced with `-·-`
    /// to keep the output well-formed).
    pub fn comment(&mut self, text: &str) {
        self.indent();
        let safe = text.replace("--", "-·-");
        let _ = writeln!(self.buf, "<!-- {safe} -->");
    }

    /// Opens an element with no attributes.
    pub fn open(&mut self, name: &str) {
        self.open_with_attrs(name, &[]);
    }

    /// Opens an element with attributes; values are escaped.
    pub fn open_with_attrs(&mut self, name: &str, attrs: &[(&str, &str)]) {
        debug_assert!(is_valid_name(name), "invalid element name {name:?}");
        self.indent();
        self.buf.push('<');
        self.buf.push_str(name);
        self.write_attrs(attrs);
        self.buf.push_str(">\n");
        self.stack.push(name.to_string());
    }

    /// Writes a self-closing element with attributes.
    pub fn leaf_with_attrs(&mut self, name: &str, attrs: &[(&str, &str)]) {
        debug_assert!(is_valid_name(name), "invalid element name {name:?}");
        self.indent();
        self.buf.push('<');
        self.buf.push_str(name);
        self.write_attrs(attrs);
        self.buf.push_str("/>\n");
    }

    /// Writes `<name>escaped text</name>` on one line.
    pub fn text_element(&mut self, name: &str, text: &str) {
        self.text_element_with_attrs(name, &[], text);
    }

    /// Writes `<name attrs>escaped text</name>` on one line.
    pub fn text_element_with_attrs(&mut self, name: &str, attrs: &[(&str, &str)], text: &str) {
        debug_assert!(is_valid_name(name), "invalid element name {name:?}");
        self.indent();
        self.buf.push('<');
        self.buf.push_str(name);
        self.write_attrs(attrs);
        self.buf.push('>');
        if !text.is_empty() && text.trim().is_empty() {
            // Whitespace-only payloads would be indistinguishable from
            // inter-element indentation on parse; CDATA preserves them.
            self.buf.push_str("<![CDATA[");
            self.buf.push_str(text);
            self.buf.push_str("]]>");
        } else {
            self.buf.push_str(&escape(text));
        }
        self.buf.push_str("</");
        self.buf.push_str(name);
        self.buf.push_str(">\n");
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn close(&mut self) {
        let name = self.stack.pop().expect("close() with no open element");
        self.indent();
        self.buf.push_str("</");
        self.buf.push_str(&name);
        self.buf.push_str(">\n");
    }

    /// Finishes the document and returns the XML string.
    ///
    /// # Panics
    /// Panics if elements remain open — a bug in the serialiser.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed elements: {:?}", self.stack);
        self.buf
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.buf.push_str("  ");
        }
    }

    fn write_attrs(&mut self, attrs: &[(&str, &str)]) {
        for (k, v) in attrs {
            debug_assert!(is_valid_name(k), "invalid attribute name {k:?}");
            let _ = write!(self.buf, " {k}=\"{}\"", escape(v));
        }
    }
}

/// Checks a tag/attribute name against the restricted grammar MASS uses
/// (ASCII letters, digits, `_`, `-`, `.`, `:`; must not start with a digit,
/// `-` or `.`).
pub fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure_indents() {
        let mut w = XmlWriter::new();
        w.open("a");
        w.open("b");
        w.leaf_with_attrs("c", &[]);
        w.close();
        w.close();
        assert_eq!(w.finish(), "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
    }

    #[test]
    fn attributes_escaped() {
        let mut w = XmlWriter::new();
        w.leaf_with_attrs("x", &[("v", "a\"b&c")]);
        assert_eq!(w.finish(), "<x v=\"a&quot;b&amp;c\"/>\n");
    }

    #[test]
    fn text_escaped() {
        let mut w = XmlWriter::new();
        w.text_element("t", "1 < 2 & 3");
        assert_eq!(w.finish(), "<t>1 &lt; 2 &amp; 3</t>\n");
    }

    #[test]
    fn comment_sanitised() {
        let mut w = XmlWriter::new();
        w.comment("a -- b");
        assert_eq!(w.finish(), "<!-- a -·- b -->\n");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_finish_panics() {
        let mut w = XmlWriter::new();
        w.open("a");
        let _ = w.finish();
    }

    #[test]
    #[should_panic(expected = "no open element")]
    fn close_without_open_panics() {
        XmlWriter::new().close();
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_name("post"));
        assert!(is_valid_name("_x-1.y:z"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("1abc"));
        assert!(!is_valid_name("a b"));
        assert!(!is_valid_name("-x"));
    }
}
