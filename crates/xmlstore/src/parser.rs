//! A pull parser for the XML subset MASS reads and writes.
//!
//! Supported: the XML declaration, comments, CDATA sections, elements with
//! single- or double-quoted attributes, self-closing tags, character data
//! with entity references. Not supported (never emitted by MASS and rejected
//! loudly): DOCTYPE/internal subsets and processing instructions other than
//! the declaration.

use crate::error::{Error, Result};
use crate::escape::unescape;

/// One parse event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v">` — `self_closing` is true for `<name/>`.
    Start {
        /// Element name.
        name: String,
        /// Attributes in document order, values entity-decoded.
        attributes: Vec<(String, String)>,
        /// Whether the tag was `<name …/>`.
        self_closing: bool,
    },
    /// `</name>`.
    End {
        /// Element name.
        name: String,
    },
    /// Character data (entity-decoded; CDATA passed through verbatim).
    /// Whitespace-only text between elements is skipped.
    Text(String),
    /// End of input.
    Eof,
}

/// Pull parser; call [`Parser::next_event`] until [`Event::Eof`].
///
/// The parser checks tag balance: mismatched or dangling end tags are syntax
/// errors, so a fully-consumed document is well-formed with respect to
/// nesting.
#[derive(Debug)]
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    stack: Vec<String>,
}

impl<'a> Parser<'a> {
    /// Creates a parser over a complete document.
    pub fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            stack: Vec::new(),
        }
    }

    /// Current byte offset, for error reporting by callers.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Advances to the next event.
    pub fn next_event(&mut self) -> Result<Event> {
        loop {
            if self.pos >= self.input.len() {
                if let Some(open) = self.stack.pop() {
                    return Err(Error::syntax(
                        self.pos,
                        format!("unclosed element <{open}>"),
                    ));
                }
                return Ok(Event::Eof);
            }
            if self.peek() == b'<' {
                match self.input.get(self.pos + 1) {
                    Some(b'?') => self.skip_declaration()?,
                    Some(b'!') => {
                        if self.lookahead(b"<!--") {
                            self.skip_comment()?;
                        } else if self.lookahead(b"<![CDATA[") {
                            return self.read_cdata();
                        } else {
                            return Err(Error::syntax(
                                self.pos,
                                "DOCTYPE and other <! constructs are not supported",
                            ));
                        }
                    }
                    Some(b'/') => return self.read_end_tag(),
                    Some(_) => return self.read_start_tag(),
                    None => return Err(Error::syntax(self.pos, "dangling '<' at end of input")),
                }
            } else {
                let text = self.read_text();
                if !text.trim().is_empty() {
                    return Ok(Event::Text(unescape(&text).into_owned()));
                }
                // Skip inter-element whitespace and continue.
            }
        }
    }

    /// Parses all remaining events (testing/diagnostics convenience).
    pub fn into_events(mut self) -> Result<Vec<Event>> {
        let mut events = Vec::new();
        loop {
            let e = self.next_event()?;
            let eof = e == Event::Eof;
            events.push(e);
            if eof {
                return Ok(events);
            }
        }
    }

    fn peek(&self) -> u8 {
        self.input[self.pos]
    }

    fn lookahead(&self, prefix: &[u8]) -> bool {
        self.input[self.pos..].starts_with(prefix)
    }

    fn skip_declaration(&mut self) -> Result<()> {
        let start = self.pos;
        match find(self.input, self.pos, b"?>") {
            Some(end) => {
                self.pos = end + 2;
                Ok(())
            }
            None => Err(Error::syntax(start, "unterminated <?…?> declaration")),
        }
    }

    fn skip_comment(&mut self) -> Result<()> {
        let start = self.pos;
        match find(self.input, self.pos + 4, b"-->") {
            Some(end) => {
                self.pos = end + 3;
                Ok(())
            }
            None => Err(Error::syntax(start, "unterminated comment")),
        }
    }

    fn read_cdata(&mut self) -> Result<Event> {
        let start = self.pos;
        let body_start = self.pos + 9; // len("<![CDATA[")
        match find(self.input, body_start, b"]]>") {
            Some(end) => {
                let text = std::str::from_utf8(&self.input[body_start..end])
                    .map_err(|_| Error::syntax(start, "CDATA is not valid UTF-8"))?;
                self.pos = end + 3;
                Ok(Event::Text(text.to_string()))
            }
            None => Err(Error::syntax(start, "unterminated CDATA section")),
        }
    }

    fn read_text(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.input.len() && self.peek() != b'<' {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.input[start..self.pos]).into_owned()
    }

    fn read_end_tag(&mut self) -> Result<Event> {
        let start = self.pos;
        self.pos += 2; // consume "</"
        let name = self.read_name()?;
        self.skip_whitespace();
        if self.pos >= self.input.len() || self.peek() != b'>' {
            return Err(Error::syntax(start, format!("malformed end tag </{name}")));
        }
        self.pos += 1;
        match self.stack.pop() {
            Some(open) if open == name => Ok(Event::End { name }),
            Some(open) => Err(Error::syntax(
                start,
                format!("expected </{open}>, found </{name}>"),
            )),
            None => Err(Error::syntax(start, format!("unmatched end tag </{name}>"))),
        }
    }

    fn read_start_tag(&mut self) -> Result<Event> {
        let start = self.pos;
        self.pos += 1; // consume '<'
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            if self.pos >= self.input.len() {
                return Err(Error::syntax(
                    start,
                    format!("unterminated start tag <{name}"),
                ));
            }
            match self.peek() {
                b'>' => {
                    self.pos += 1;
                    self.stack.push(name.clone());
                    return Ok(Event::Start {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                b'/' => {
                    if self.input.get(self.pos + 1) == Some(&b'>') {
                        self.pos += 2;
                        return Ok(Event::Start {
                            name,
                            attributes,
                            self_closing: true,
                        });
                    }
                    return Err(Error::syntax(self.pos, "expected '/>'"));
                }
                _ => {
                    let attr_name = self.read_name()?;
                    self.skip_whitespace();
                    if self.pos >= self.input.len() || self.peek() != b'=' {
                        return Err(Error::syntax(
                            self.pos,
                            format!("attribute {attr_name} missing '='"),
                        ));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let value = self.read_quoted_value()?;
                    attributes.push((attr_name, value));
                }
            }
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.peek();
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::syntax(start, "expected a name"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .expect("name bytes are ASCII")
            .to_string();
        if name.as_bytes()[0].is_ascii_digit() || name.starts_with('-') || name.starts_with('.') {
            return Err(Error::syntax(
                start,
                format!("invalid name start in {name:?}"),
            ));
        }
        Ok(name)
    }

    fn read_quoted_value(&mut self) -> Result<String> {
        if self.pos >= self.input.len() {
            return Err(Error::syntax(self.pos, "expected attribute value"));
        }
        let quote = self.peek();
        if quote != b'"' && quote != b'\'' {
            return Err(Error::syntax(self.pos, "attribute value must be quoted"));
        }
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.input.len() && self.peek() != quote {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(Error::syntax(start, "unterminated attribute value"));
        }
        let raw = String::from_utf8_lossy(&self.input[start..self.pos]);
        self.pos += 1;
        Ok(unescape(&raw).into_owned())
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.input.len() && self.peek().is_ascii_whitespace() {
            self.pos += 1;
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Vec<Event> {
        Parser::new(xml).into_events().unwrap()
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b x=\"1\">hi</b></a>");
        assert_eq!(
            evs,
            vec![
                Event::Start {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: false
                },
                Event::Start {
                    name: "b".into(),
                    attributes: vec![("x".into(), "1".into())],
                    self_closing: false
                },
                Event::Text("hi".into()),
                Event::End { name: "b".into() },
                Event::End { name: "a".into() },
                Event::Eof,
            ]
        );
    }

    #[test]
    fn declaration_and_comments_skipped() {
        let evs = events("<?xml version=\"1.0\"?><!-- note --><r/>");
        assert_eq!(
            evs,
            vec![
                Event::Start {
                    name: "r".into(),
                    attributes: vec![],
                    self_closing: true
                },
                Event::Eof
            ]
        );
    }

    #[test]
    fn self_closing_with_attrs() {
        let evs = events("<x a='1' b=\"two\"/>");
        assert_eq!(
            evs[0],
            Event::Start {
                name: "x".into(),
                attributes: vec![("a".into(), "1".into()), ("b".into(), "two".into())],
                self_closing: true
            }
        );
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let evs = events("<t v=\"a&amp;b\">x &lt; y</t>");
        assert_eq!(
            evs[0],
            Event::Start {
                name: "t".into(),
                attributes: vec![("v".into(), "a&b".into())],
                self_closing: false
            }
        );
        assert_eq!(evs[1], Event::Text("x < y".into()));
    }

    #[test]
    fn cdata_passes_verbatim() {
        let evs = events("<t><![CDATA[a <b> & c]]></t>");
        assert_eq!(evs[1], Event::Text("a <b> & c".into()));
    }

    #[test]
    fn whitespace_between_elements_skipped() {
        let evs = events("<a>\n  <b/>\n</a>");
        assert_eq!(evs.len(), 4); // a, b, /a, eof
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = Parser::new("<a></b>").into_events().unwrap_err();
        assert!(err.to_string().contains("expected </a>"));
    }

    #[test]
    fn unclosed_element_rejected() {
        let err = Parser::new("<a><b></b>").into_events().unwrap_err();
        assert!(err.to_string().contains("unclosed element <a>"));
    }

    #[test]
    fn dangling_end_tag_rejected() {
        let err = Parser::new("</a>").into_events().unwrap_err();
        assert!(err.to_string().contains("unmatched end tag"));
    }

    #[test]
    fn doctype_rejected() {
        let err = Parser::new("<!DOCTYPE html><a/>")
            .into_events()
            .unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn unterminated_constructs_rejected() {
        assert!(Parser::new("<a").into_events().is_err());
        assert!(Parser::new("<!-- no end").into_events().is_err());
        assert!(Parser::new("<a x=\"1>").into_events().is_err());
        assert!(Parser::new("<a x=1>").into_events().is_err());
        assert!(Parser::new("<![CDATA[x").into_events().is_err());
        assert!(Parser::new("<?xml").into_events().is_err());
        assert!(Parser::new("a <").into_events().is_err());
    }

    #[test]
    fn attribute_missing_equals_rejected() {
        let err = Parser::new("<a x>").into_events().unwrap_err();
        assert!(err.to_string().contains("missing '='"));
    }

    #[test]
    fn offsets_reported() {
        let mut p = Parser::new("<a></a>");
        let _ = p.next_event().unwrap();
        assert!(p.offset() > 0);
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(events(""), vec![Event::Eof]);
        assert_eq!(events("   \n "), vec![Event::Eof]);
    }
}
