//! XML entity escaping.

use std::borrow::Cow;

/// Escapes the five predefined XML entities (`& < > " '`).
///
/// Returns the input unchanged (borrowed) when nothing needs escaping, which
/// is the common case for post bodies.
pub fn escape(s: &str) -> Cow<'_, str> {
    let first = s.find(['&', '<', '>', '"', '\''].as_slice());
    let Some(first) = first else {
        return Cow::Borrowed(s);
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for ch in s[first..].chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Decodes the five predefined entities plus decimal (`&#NN;`) and hex
/// (`&#xNN;`) character references.
///
/// Unknown or malformed references are passed through literally — lenient
/// decoding matches how real blog crawlers must cope with sloppy markup.
pub fn unescape(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        match decode_entity(tail) {
            Some((ch, len)) => {
                out.push(ch);
                rest = &tail[len..];
            }
            None => {
                out.push('&');
                rest = &tail[1..];
            }
        }
    }
    out.push_str(rest);
    Cow::Owned(out)
}

/// Tries to decode one entity at the start of `s` (which begins with `&`).
/// Returns the decoded char and the byte length consumed.
fn decode_entity(s: &str) -> Option<(char, usize)> {
    let semi = s.find(';')?;
    if semi > 12 {
        return None; // references are short; avoid scanning pathological text
    }
    let body = &s[1..semi];
    let ch = match body {
        "amp" => '&',
        "lt" => '<',
        "gt" => '>',
        "quot" => '"',
        "apos" => '\'',
        _ => {
            let code =
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
            char::from_u32(code)?
        }
    };
    Some((ch, semi + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_borrowed() {
        assert!(matches!(escape("hello world"), Cow::Borrowed(_)));
        assert!(matches!(unescape("hello world"), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_all_five() {
        assert_eq!(escape(r#"a<b>&"c'"#), "a&lt;b&gt;&amp;&quot;c&apos;");
    }

    #[test]
    fn unescape_inverts_escape() {
        let original = r#"Tom & Jerry <say> "hi" it's fun"#;
        assert_eq!(unescape(&escape(original)), original);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;"), "ABc");
        assert_eq!(unescape("&#x4e2d;"), "中");
    }

    #[test]
    fn malformed_references_pass_through() {
        assert_eq!(unescape("a & b"), "a & b");
        assert_eq!(unescape("&unknown;"), "&unknown;");
        assert_eq!(unescape("&#xzz;"), "&#xzz;");
        assert_eq!(unescape("&"), "&");
        assert_eq!(unescape("&;"), "&;");
        // Surrogate code points cannot be chars.
        assert_eq!(unescape("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn long_pseudo_entity_not_scanned() {
        let s = "& this is a long sentence; with a semicolon far away";
        assert_eq!(unescape(s), s);
    }

    #[test]
    fn mixed_content() {
        assert_eq!(unescape("x &amp; y &lt;z&gt; &#33;"), "x & y <z> !");
    }
}
