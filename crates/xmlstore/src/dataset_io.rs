//! The `<blogosphere>` schema: serialising [`Dataset`] to the XML files the
//! paper's crawler module produces, and loading them back.
//!
//! Layout (ids are the dense dataset indices, so files are self-describing):
//!
//! ```xml
//! <?xml version="1.0" encoding="UTF-8"?>
//! <blogosphere>
//!   <domains>
//!     <domain id="0" name="Travel"/>
//!   </domains>
//!   <bloggers>
//!     <blogger id="0" name="Amery">
//!       <profile>…</profile>
//!       <friends><friend ref="2"/></friends>
//!     </blogger>
//!   </bloggers>
//!   <posts>
//!     <post id="0" author="0" domain="1">
//!       <title>…</title>
//!       <text>…</text>
//!       <links><link ref="3"/></links>
//!       <comments>
//!         <comment commenter="2" sentiment="positive">…</comment>
//!       </comments>
//!     </post>
//!   </posts>
//! </blogosphere>
//! ```
//!
//! Loading re-validates referential integrity through
//! [`Dataset::validate`](mass_types::Dataset::validate), so a hand-edited or
//! corrupted file cannot produce an inconsistent in-memory dataset.

use crate::error::{Error, Result};
use crate::tree::Element;
use crate::writer::XmlWriter;
use mass_types::{
    Blogger, BloggerId, Comment, Dataset, DomainId, DomainSet, Post, PostId, Sentiment,
};
use std::path::Path;

/// Serialises a dataset to an XML string.
pub fn to_xml_string(ds: &Dataset) -> String {
    let mut w = XmlWriter::new();
    w.declaration();
    w.open("blogosphere");

    w.open("domains");
    for (id, name) in ds.domains.iter() {
        w.leaf_with_attrs("domain", &[("id", &id.index().to_string()), ("name", name)]);
    }
    w.close();

    w.open("bloggers");
    for (id, blogger) in ds.bloggers_enumerated() {
        w.open_with_attrs(
            "blogger",
            &[("id", &id.index().to_string()), ("name", &blogger.name)],
        );
        if !blogger.profile.is_empty() {
            w.text_element("profile", &blogger.profile);
        }
        if !blogger.friends.is_empty() {
            w.open("friends");
            for f in &blogger.friends {
                w.leaf_with_attrs("friend", &[("ref", &f.index().to_string())]);
            }
            w.close();
        }
        w.close();
    }
    w.close();

    w.open("posts");
    for (id, post) in ds.posts_enumerated() {
        let id_s = id.index().to_string();
        let author_s = post.author.index().to_string();
        let mut attrs = vec![("id", id_s.as_str()), ("author", author_s.as_str())];
        let domain_s = post.true_domain.map(|d| d.index().to_string());
        if let Some(ref d) = domain_s {
            attrs.push(("domain", d.as_str()));
        }
        // Tick 0 is the timeless default; omitting it keeps pre-temporal
        // files byte-identical.
        let ts_s = post.ts.to_string();
        if post.ts != 0 {
            attrs.push(("ts", ts_s.as_str()));
        }
        w.open_with_attrs("post", &attrs);
        w.text_element("title", &post.title);
        w.text_element("text", &post.text);
        if !post.links_to.is_empty() {
            w.open("links");
            for l in &post.links_to {
                w.leaf_with_attrs("link", &[("ref", &l.index().to_string())]);
            }
            w.close();
        }
        if !post.comments.is_empty() {
            w.open("comments");
            for c in &post.comments {
                let commenter = c.commenter.index().to_string();
                let mut cattrs = vec![("commenter", commenter.as_str())];
                if let Some(s) = c.sentiment {
                    cattrs.push(("sentiment", s.as_str()));
                }
                let cts_s = c.ts.to_string();
                if c.ts != 0 {
                    cattrs.push(("ts", cts_s.as_str()));
                }
                w.text_element_with_attrs("comment", &cattrs, &c.text);
            }
            w.close();
        }
        w.close();
    }
    w.close();

    w.close();
    w.finish()
}

/// Parses a dataset from an XML string and validates it.
pub fn from_xml_str(xml: &str) -> Result<Dataset> {
    let root = Element::parse(xml)?;
    if root.name != "blogosphere" {
        return Err(Error::schema(format!(
            "expected <blogosphere>, found <{}>",
            root.name
        )));
    }

    let mut domains = DomainSet::new(Vec::<String>::new());
    if let Some(doms) = root.child("domains") {
        // Collect (id, name) and insert in id order so indices survive.
        let mut entries: Vec<(usize, String)> = Vec::new();
        for d in doms.elements_named("domain") {
            entries.push((d.require_usize("id")?, d.require_attr("name")?.to_string()));
        }
        entries.sort_by_key(|(id, _)| *id);
        for (expect, (id, name)) in entries.into_iter().enumerate() {
            if id != expect {
                return Err(Error::schema(format!(
                    "domain ids must be dense; expected {expect}, found {id}"
                )));
            }
            domains.insert(name);
        }
    }

    let mut bloggers: Vec<Blogger> = Vec::new();
    if let Some(bs) = root.child("bloggers") {
        for (expect, b) in bs.elements_named("blogger").enumerate() {
            let id = b.require_usize("id")?;
            if id != expect {
                return Err(Error::schema(format!(
                    "blogger ids must be dense; expected {expect}, found {id}"
                )));
            }
            let mut blogger = Blogger::new(b.require_attr("name")?);
            if let Some(p) = b.child("profile") {
                blogger.profile = p.text();
            }
            if let Some(fr) = b.child("friends") {
                for f in fr.elements_named("friend") {
                    blogger
                        .friends
                        .push(BloggerId::new(f.require_usize("ref")?));
                }
            }
            bloggers.push(blogger);
        }
    }

    let mut posts: Vec<Post> = Vec::new();
    if let Some(ps) = root.child("posts") {
        for (expect, p) in ps.elements_named("post").enumerate() {
            let id = p.require_usize("id")?;
            if id != expect {
                return Err(Error::schema(format!(
                    "post ids must be dense; expected {expect}, found {id}"
                )));
            }
            let author = BloggerId::new(p.require_usize("author")?);
            let title = p.child("title").map(|t| t.text()).unwrap_or_default();
            let text = p.child("text").map(|t| t.text()).unwrap_or_default();
            let mut post = Post::new(author, title, text);
            if let Some(d) = p.attr("domain") {
                let idx: usize = d.parse().map_err(|_| {
                    Error::schema(format!("post {id} has non-integer domain {d:?}"))
                })?;
                post.true_domain = Some(DomainId::new(idx));
            }
            if let Some(t) = p.attr("ts") {
                post.ts = t
                    .parse()
                    .map_err(|_| Error::schema(format!("post {id} has non-integer ts {t:?}")))?;
            }
            if let Some(links) = p.child("links") {
                for l in links.elements_named("link") {
                    post.links_to.push(PostId::new(l.require_usize("ref")?));
                }
            }
            if let Some(comments) = p.child("comments") {
                for c in comments.elements_named("comment") {
                    let commenter = BloggerId::new(c.require_usize("commenter")?);
                    let sentiment = match c.attr("sentiment") {
                        Some(s) => Some(Sentiment::parse(s).ok_or_else(|| {
                            Error::schema(format!("unknown sentiment {s:?} on post {id}"))
                        })?),
                        None => None,
                    };
                    let ts = match c.attr("ts") {
                        Some(t) => t.parse().map_err(|_| {
                            Error::schema(format!("comment on post {id} has non-integer ts {t:?}"))
                        })?,
                        None => 0,
                    };
                    post.comments.push(Comment {
                        commenter,
                        text: c.text(),
                        sentiment,
                        ts,
                    });
                }
            }
            posts.push(post);
        }
    }

    let ds = Dataset {
        bloggers,
        posts,
        domains,
    };
    ds.validate()?;
    Ok(ds)
}

/// Saves a dataset to a file.
pub fn save(ds: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, to_xml_string(ds))?;
    Ok(())
}

/// Loads and validates a dataset from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Dataset> {
    let xml = std::fs::read_to_string(path)?;
    from_xml_str(&xml)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mass_types::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        let amery = b.blogger_with_profile("Amery", "CS & economics blogger");
        let bob = b.blogger("Bob");
        let cary = b.blogger("Cary <the critic>");
        let p1 = b.post_in_domain(
            amery,
            "Post1",
            "programming \"skills\" & tips",
            DomainId::new(1),
        );
        let p2 = b.post(amery, "Post2", "economic depression trends");
        let p3 = b.post(bob, "Post3", "more computer science");
        b.comment(p1, bob, "I agree & support this", Some(Sentiment::Positive));
        b.comment(p1, cary, "not sure", None);
        b.comment(p2, cary, "disagree strongly", Some(Sentiment::Negative));
        b.link_posts(p3, p1);
        b.friend(bob, amery);
        b.friend(cary, amery);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = sample();
        let xml = to_xml_string(&ds);
        let back = from_xml_str(&xml).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn output_is_well_formed_and_escaped() {
        let xml = to_xml_string(&sample());
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("Cary &lt;the critic&gt;"));
        assert!(xml.contains("&quot;skills&quot; &amp; tips"));
        assert!(!xml.contains("<the critic>"));
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = DatasetBuilder::new().build().unwrap();
        let back = from_xml_str(&to_xml_string(&ds)).unwrap();
        assert_eq!(ds, back);
        assert_eq!(back.domains.len(), 10);
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            from_xml_str("<nope/>").unwrap_err(),
            Error::Schema(_)
        ));
    }

    #[test]
    fn non_dense_ids_rejected() {
        let xml = r#"<blogosphere><bloggers>
            <blogger id="1" name="x"/>
        </bloggers></blogosphere>"#;
        let err = from_xml_str(xml).unwrap_err();
        assert!(err.to_string().contains("dense"));
    }

    #[test]
    fn unknown_sentiment_rejected() {
        let xml = r#"<blogosphere>
          <bloggers><blogger id="0" name="a"/><blogger id="1" name="b"/></bloggers>
          <posts><post id="0" author="0"><title>t</title><text>x</text>
            <comments><comment commenter="1" sentiment="angry">g</comment></comments>
          </post></posts></blogosphere>"#;
        let err = from_xml_str(xml).unwrap_err();
        assert!(err.to_string().contains("unknown sentiment"));
    }

    #[test]
    fn invalid_references_fail_validation() {
        let xml = r#"<blogosphere>
          <bloggers><blogger id="0" name="a"/></bloggers>
          <posts><post id="0" author="5"><title>t</title><text>x</text></post></posts>
        </blogosphere>"#;
        assert!(matches!(
            from_xml_str(xml).unwrap_err(),
            Error::Validation(_)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mass_xml_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.xml");
        let ds = sample();
        save(&ds, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load("/nonexistent/mass.xml").unwrap_err(),
            Error::Io(_)
        ));
    }

    #[test]
    fn timestamps_roundtrip_and_timeless_files_stay_unchanged() {
        let mut ds = sample();
        let timeless_xml = to_xml_string(&ds);
        assert!(
            !timeless_xml.contains("ts="),
            "tick-0 corpora must not grow ts attributes"
        );
        ds.posts[0].ts = 17;
        ds.posts[0].comments[0].ts = 19;
        let xml = to_xml_string(&ds);
        assert!(xml.contains("ts=\"17\""));
        assert!(xml.contains("ts=\"19\""));
        let back = from_xml_str(&xml).unwrap();
        assert_eq!(ds, back);
        assert_eq!(back.posts[0].ts, 17);
        assert_eq!(back.posts[0].comments[0].ts, 19);
        assert_eq!(back.posts[0].comments[1].ts, 0);
        assert_eq!(back.posts[1].ts, 0);
    }

    #[test]
    fn non_integer_ts_rejected() {
        let xml = r#"<blogosphere>
          <bloggers><blogger id="0" name="a"/></bloggers>
          <posts><post id="0" author="0" ts="soon"><title>t</title><text>x</text></post></posts>
        </blogosphere>"#;
        let err = from_xml_str(xml).unwrap_err();
        assert!(err.to_string().contains("non-integer ts"));
    }

    #[test]
    fn untagged_comment_sentiment_stays_none() {
        let ds = sample();
        let back = from_xml_str(&to_xml_string(&ds)).unwrap();
        assert_eq!(back.posts[0].comments[1].sentiment, None);
        assert_eq!(
            back.posts[0].comments[0].sentiment,
            Some(Sentiment::Positive)
        );
    }
}
