//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of `rand` it actually uses: a seedable
//! `StdRng`, `Rng::{random, random_range, random_bool}` and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256** seeded via
//! SplitMix64 — high-quality, deterministic, and stable across platforms,
//! which is all the synthetic-corpus generator needs. It is NOT the same
//! stream as upstream `StdRng` (ChaCha12), so corpora generated under this
//! shim differ from upstream ones for the same seed; everything in-repo is
//! seed-relative, so no test depends on a particular stream.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an [`Rng`] — the shim's stand-in for
/// `rand::distr::StandardUniform`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo with a 64-bit draw; bias is negligible for the
                // span sizes this workspace samples (vocabulary indices).
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing generator interface (0.9 method names).
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type (`rng.random::<f64>()`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from an empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators shipped with the shim.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let x = rng.random_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(3..3usize);
    }
}
