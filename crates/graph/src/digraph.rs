//! A compact directed graph over dense node indices.

/// Directed graph stored as forward and reverse adjacency lists.
///
/// Nodes are `0..n`; parallel edges are allowed (the post-reply network
/// weights edges by comment multiplicity) and self-loops are permitted at
/// this layer — dataset-level policy against them lives in `mass-types`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    out_edges: Vec<Vec<u32>>,
    in_edges: Vec<Vec<u32>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out_edges: vec![Vec::new(); n],
            in_edges: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the directed edge `u → v`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        self.out_edges[u].push(v as u32);
        self.in_edges[v].push(u as u32);
        self.edge_count += 1;
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.out_edges.len()
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.out_edges.is_empty()
    }

    /// Number of edges (counting parallels).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Successors of `u` (with multiplicity).
    #[inline]
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.out_edges[u].iter().map(|&v| v as usize)
    }

    /// Predecessors of `v` (with multiplicity).
    #[inline]
    pub fn predecessors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.in_edges[v].iter().map(|&u| u as usize)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: usize) -> usize {
        self.out_edges[u].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_edges[v].len()
    }

    /// Iterates all edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.out_edges
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v as usize)))
    }

    /// The transpose graph (every edge reversed).
    pub fn transpose(&self) -> DiGraph {
        DiGraph {
            out_edges: self.in_edges.clone(),
            in_edges: self.out_edges.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Degree statistics across all nodes.
    pub fn degree_stats(&self) -> DegreeStats {
        let n = self.len();
        if n == 0 {
            return DegreeStats::default();
        }
        let mut max_in = 0;
        let mut max_out = 0;
        let mut dangling = 0;
        for u in 0..n {
            max_in = max_in.max(self.in_degree(u));
            max_out = max_out.max(self.out_degree(u));
            if self.out_degree(u) == 0 {
                dangling += 1;
            }
        }
        DegreeStats {
            nodes: n,
            edges: self.edge_count,
            mean_degree: self.edge_count as f64 / n as f64,
            max_in_degree: max_in,
            max_out_degree: max_out,
            dangling_nodes: dangling,
        }
    }
}

/// Summary degree statistics, used by crawl reports and EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count (with multiplicity).
    pub edges: usize,
    /// Mean out-degree (= edges / nodes).
    pub mean_degree: f64,
    /// Largest in-degree.
    pub max_in_degree: usize,
    /// Largest out-degree.
    pub max_out_degree: usize,
    /// Nodes with no outgoing edges (PageRank "dangling" nodes).
    pub dangling_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 0)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.successors(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.predecessors(2).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn parallel_edges_counted() {
        let g = DiGraph::from_edges(2, [(0, 1), (0, 1)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn edges_iterator_lists_all() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn transpose_reverses() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let t = g.transpose();
        assert_eq!(t.successors(1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(t.successors(2).collect::<Vec<_>>(), vec![1]);
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.transpose(), g);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn degree_stats_on_empty_graph() {
        assert_eq!(DiGraph::new(0).degree_stats(), DegreeStats::default());
    }

    #[test]
    fn degree_stats_counts_dangling() {
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2)]);
        let s = g.degree_stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.dangling_nodes, 2); // nodes 1 and 2
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.mean_degree - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_allowed_at_graph_layer() {
        let g = DiGraph::from_edges(1, [(0, 0)]);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.out_degree(0), 1);
    }
}
