//! Flattened CSR (compressed sparse row) adjacency for the pull kernels.
//!
//! [`DiGraph`] stores `Vec<Vec<u32>>` adjacency — fine for construction and
//! mutation, but every row is its own heap allocation, so an iteration
//! sweep pointer-chases per node. [`Csr`] flattens the whole structure into
//! two arrays (`offsets`, `edges`); PageRank and HITS walk it with pure
//! sequential loads (DESIGN.md §10).
//!
//! Ordering contract: [`Csr::successors_of`] keeps each row in the graph's
//! insertion order; [`Csr::predecessors_of`] lists every in-edge source
//! (with multiplicity) in **ascending-`u`** order — exactly the order the
//! legacy serial scatter loop added into each slot, so a pull fold over a
//! predecessor row reproduces the scatter result bit for bit.

use crate::digraph::DiGraph;

/// A read-only flattened adjacency view: row `i` is
/// `edges[offsets[i] .. offsets[i + 1]]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl Csr {
    /// Successor rows of `g`, each in insertion order.
    pub fn successors_of(g: &DiGraph) -> Csr {
        let n = g.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(g.edge_count());
        offsets.push(0);
        for u in 0..n {
            edges.extend(g.successors(u).map(|v| v as u32));
            offsets.push(edges.len() as u32);
        }
        Csr { offsets, edges }
    }

    /// Predecessor rows of `g`, each in ascending-source order with
    /// multiplicity. Built by a counting sort over the successor lists
    /// (`DiGraph`'s own `in_edges` are insertion-ordered, which is *not*
    /// the scatter-equivalent order the kernels need).
    pub fn predecessors_of(g: &DiGraph) -> Csr {
        let n = g.len();
        let mut offsets = vec![0u32; n + 1];
        for u in 0..n {
            for v in g.successors(u) {
                offsets[v + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edges = vec![0u32; g.edge_count()];
        for u in 0..n {
            for v in g.successors(u) {
                edges[cursor[v] as usize] = u as u32;
                cursor[v] += 1;
            }
        }
        Csr { offsets, edges }
    }

    /// Number of rows (nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the view has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` as a slice of neighbour ids.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Length of row `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors_preserve_insertion_order() {
        let g = DiGraph::from_edges(4, [(0, 2), (0, 1), (0, 2), (2, 0), (3, 1)]);
        let s = Csr::successors_of(&g);
        assert_eq!(s.len(), 4);
        assert_eq!(s.row(0), &[2, 1, 2]);
        assert_eq!(s.row(1), &[] as &[u32]);
        assert_eq!(s.row(2), &[0]);
        assert_eq!(s.row(3), &[1]);
        assert_eq!(s.degree(0), 3);
    }

    #[test]
    fn predecessors_ascend_with_multiplicity() {
        // in_edges insertion order for node 1 would be [3, 0, 0] if edges
        // are added as (3,1) first — the CSR must re-sort to ascending u.
        let g = DiGraph::from_edges(4, [(3, 1), (0, 1), (0, 1), (2, 0), (1, 0)]);
        let p = Csr::predecessors_of(&g);
        assert_eq!(p.row(1), &[0, 0, 3]);
        assert_eq!(p.row(0), &[1, 2]);
        assert_eq!(p.row(2), &[] as &[u32]);
        assert_eq!(p.degree(3), 0);
    }

    #[test]
    fn matches_digraph_views() {
        let mut edges = Vec::new();
        for u in 0..50usize {
            edges.push((u, (u * 7 + 3) % 50));
            if u % 4 == 0 {
                edges.push((u, (u * 7 + 3) % 50)); // parallel
                edges.push((u, 0));
            }
        }
        let g = DiGraph::from_edges(50, edges.iter().copied().filter(|&(u, _)| u % 9 != 0));
        let s = Csr::successors_of(&g);
        let p = Csr::predecessors_of(&g);
        for u in 0..g.len() {
            assert_eq!(
                s.row(u).iter().map(|&v| v as usize).collect::<Vec<_>>(),
                g.successors(u).collect::<Vec<_>>()
            );
            let mut want: Vec<usize> = g.predecessors(u).collect();
            want.sort_unstable();
            assert_eq!(
                p.row(u).iter().map(|&v| v as usize).collect::<Vec<_>>(),
                want,
                "preds of {u}"
            );
            assert_eq!(s.degree(u), g.out_degree(u));
            assert_eq!(p.degree(u), g.in_degree(u));
        }
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        let s = Csr::successors_of(&g);
        assert!(s.is_empty());
        assert_eq!(Csr::predecessors_of(&g).len(), 0);
    }
}
