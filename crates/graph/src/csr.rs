//! Flattened CSR (compressed sparse row) adjacency for the pull kernels.
//!
//! [`DiGraph`] stores `Vec<Vec<u32>>` adjacency — fine for construction and
//! mutation, but every row is its own heap allocation, so an iteration
//! sweep pointer-chases per node. [`Csr`] flattens the whole structure into
//! two arrays (`offsets`, `edges`); PageRank and HITS walk it with pure
//! sequential loads (DESIGN.md §10).
//!
//! Ordering contract: [`Csr::successors_of`] keeps each row in the graph's
//! insertion order; [`Csr::predecessors_of`] lists every in-edge source
//! (with multiplicity) in **ascending-`u`** order — exactly the order the
//! legacy serial scatter loop added into each slot, so a pull fold over a
//! predecessor row reproduces the scatter result bit for bit.
//!
//! Both orderings survive **append-only edits**: [`Csr::apply_edits`] folds
//! a batch of new nodes and edges into an existing view, rebuilding only the
//! touched adjacency runs (untouched runs are bulk-copied) while preserving
//! the per-row order contract — so a maintained view equals a from-scratch
//! rebuild, and the pull kernels stay bit-identical across edits. [`LinkCsr`]
//! bundles the two views of one graph for the kernels that need both.

use crate::digraph::DiGraph;

/// Which adjacency a [`Csr`] holds — decides where [`Csr::apply_edits`]
/// lands each new edge `u → v` and in what order within the row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdjacencyKind {
    /// Rows are successor lists: `u → v` appends `v` to row `u`, keeping
    /// the batch's edit order (= the source graph's insertion order when
    /// edits append to the underlying adjacency).
    Successors,
    /// Rows are predecessor lists: `u → v` inserts `u` into row `v`,
    /// keeping the ascending-source counting-sort order.
    Predecessors,
}

/// A read-only flattened adjacency view: row `i` is
/// `edges[offsets[i] .. offsets[i + 1]]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl Csr {
    /// Successor rows of `g`, each in insertion order.
    pub fn successors_of(g: &DiGraph) -> Csr {
        let n = g.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(g.edge_count());
        offsets.push(0);
        for u in 0..n {
            edges.extend(g.successors(u).map(|v| v as u32));
            offsets.push(edges.len() as u32);
        }
        Csr { offsets, edges }
    }

    /// Predecessor rows of `g`, each in ascending-source order with
    /// multiplicity. Built by a counting sort over the successor lists
    /// (`DiGraph`'s own `in_edges` are insertion-ordered, which is *not*
    /// the scatter-equivalent order the kernels need).
    pub fn predecessors_of(g: &DiGraph) -> Csr {
        let n = g.len();
        let mut offsets = vec![0u32; n + 1];
        for u in 0..n {
            for v in g.successors(u) {
                offsets[v + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edges = vec![0u32; g.edge_count()];
        for u in 0..n {
            for v in g.successors(u) {
                edges[cursor[v] as usize] = u as u32;
                cursor[v] += 1;
            }
        }
        Csr { offsets, edges }
    }

    /// A view with `n` rows and no edges.
    pub fn empty(n: usize) -> Csr {
        Csr {
            offsets: vec![0; n + 1],
            edges: Vec::new(),
        }
    }

    /// Folds an append-only edit batch into the view: `added_rows` new empty
    /// rows (new nodes, ids continuing the dense range), then one entry per
    /// new edge `(u, v)`, placed according to `kind`.
    ///
    /// Only rows that actually receive an edge are rebuilt; runs of
    /// untouched rows between them are contiguous in the old layout and are
    /// bulk-copied. The per-row order contract of
    /// [`successors_of`](Csr::successors_of) /
    /// [`predecessors_of`](Csr::predecessors_of) is preserved, so the result
    /// equals a from-scratch rebuild of the edited graph (for successor
    /// views: provided the underlying adjacency also appends, i.e. each new
    /// edge lands at the end of its source's list).
    ///
    /// # Panics
    /// Panics if an edge endpoint is outside the grown node range.
    pub fn apply_edits(
        &mut self,
        added_rows: usize,
        new_edges: &[(u32, u32)],
        kind: AdjacencyKind,
    ) {
        let n_old = self.len();
        let n_new = n_old + added_rows;
        for &(u, v) in new_edges {
            assert!(
                (u as usize) < n_new,
                "edge source {u} out of range ({n_new} nodes)"
            );
            assert!(
                (v as usize) < n_new,
                "edge target {v} out of range ({n_new} nodes)"
            );
        }
        if new_edges.is_empty() {
            let end = *self.offsets.last().expect("offsets never empty");
            self.offsets.resize(n_new + 1, end);
            return;
        }
        // (row, value) per edit; stable sort by row keeps each row's edits
        // in batch order, which is what the successor contract needs.
        let mut adds: Vec<(u32, u32)> = match kind {
            AdjacencyKind::Successors => new_edges.to_vec(),
            AdjacencyKind::Predecessors => new_edges.iter().map(|&(u, v)| (v, u)).collect(),
        };
        adds.sort_by_key(|&(row, _)| row);

        let mut offsets = vec![0u32; n_new + 1];
        let mut edges = Vec::with_capacity(self.edges.len() + adds.len());
        {
            // Copies rows `lo..hi` verbatim: their edges are one contiguous
            // slice of the old layout, so an untouched run costs a single
            // extend plus an offset shift.
            let copy_untouched =
                |lo: usize, hi: usize, edges: &mut Vec<u32>, offsets: &mut [u32]| {
                    let lo_e = self.offsets[lo.min(n_old)] as usize;
                    let hi_e = self.offsets[hi.min(n_old)] as usize;
                    let shift = edges.len() - lo_e;
                    edges.extend_from_slice(&self.edges[lo_e..hi_e]);
                    for r in lo..hi {
                        offsets[r + 1] = if r < n_old {
                            (self.offsets[r + 1] as usize + shift) as u32
                        } else {
                            edges.len() as u32
                        };
                    }
                };
            let mut ai = 0usize;
            let mut next_row = 0usize;
            while ai < adds.len() {
                let row = adds[ai].0 as usize;
                copy_untouched(next_row, row, &mut edges, &mut offsets);
                let mut run_end = ai;
                while run_end < adds.len() && adds[run_end].0 as usize == row {
                    run_end += 1;
                }
                let old: &[u32] = if row < n_old {
                    &self.edges[self.offsets[row] as usize..self.offsets[row + 1] as usize]
                } else {
                    &[]
                };
                match kind {
                    AdjacencyKind::Successors => {
                        edges.extend_from_slice(old);
                        edges.extend(adds[ai..run_end].iter().map(|&(_, v)| v));
                    }
                    AdjacencyKind::Predecessors => {
                        // Merge the (sorted) old run with the sorted batch —
                        // the union is the same sorted multiset a counting
                        // sort over the edited graph produces.
                        let mut new_vals: Vec<u32> =
                            adds[ai..run_end].iter().map(|&(_, v)| v).collect();
                        new_vals.sort_unstable();
                        let (mut i, mut j) = (0usize, 0usize);
                        while i < old.len() && j < new_vals.len() {
                            if old[i] <= new_vals[j] {
                                edges.push(old[i]);
                                i += 1;
                            } else {
                                edges.push(new_vals[j]);
                                j += 1;
                            }
                        }
                        edges.extend_from_slice(&old[i..]);
                        edges.extend_from_slice(&new_vals[j..]);
                    }
                }
                offsets[row + 1] = edges.len() as u32;
                next_row = row + 1;
                ai = run_end;
            }
            copy_untouched(next_row, n_new, &mut edges, &mut offsets);
        }
        self.offsets = offsets;
        self.edges = edges;
    }

    /// The predecessor view of this successor view: every in-edge source in
    /// ascending-`u` order with multiplicity — the same counting sort as
    /// [`Csr::predecessors_of`], but straight off the flattened rows, so
    /// sharded builders never need an intermediate [`DiGraph`].
    pub fn predecessors_from_successors(&self) -> Csr {
        let n = self.len();
        let mut offsets = vec![0u32; n + 1];
        for &v in &self.edges {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edges = vec![0u32; self.edges.len()];
        for u in 0..n {
            for &v in self.row(u) {
                edges[cursor[v as usize] as usize] = u as u32;
                cursor[v as usize] += 1;
            }
        }
        Csr { offsets, edges }
    }

    /// Number of rows (nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the view has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` as a slice of neighbour ids.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Length of row `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

/// Row-by-row constructor for a successor [`Csr`] — what sharded corpus
/// ingest uses to assemble the friend-link graph without materialising a
/// [`DiGraph`]: each shard builds the rows of its contiguous node range,
/// and segments concatenate in shard order via
/// [`append`](CsrBuilder::append).
#[derive(Clone, Debug, Default)]
pub struct CsrBuilder {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl CsrBuilder {
    /// An empty builder.
    pub fn new() -> CsrBuilder {
        CsrBuilder {
            offsets: vec![0],
            edges: Vec::new(),
        }
    }

    /// Appends the next node's successor row (kept in the given order).
    pub fn push_row(&mut self, targets: &[u32]) {
        self.edges.extend_from_slice(targets);
        self.offsets.push(self.edges.len() as u32);
    }

    /// Appends every row of `segment` after the rows already pushed —
    /// segment node `i` becomes global node `rows-before + i`, so callers
    /// append shards of a contiguous node range in shard order.
    pub fn append(&mut self, segment: &Csr) {
        let base = self.edges.len() as u32;
        self.edges.extend_from_slice(&segment.edges);
        self.offsets
            .extend(segment.offsets[1..].iter().map(|&o| o + base));
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Seals the successor view.
    pub fn finish(self) -> Csr {
        Csr {
            offsets: self.offsets,
            edges: self.edges,
        }
    }
}

/// Both flattened views of one link graph — everything the pull kernels
/// read — maintainable in place across append-only edits.
///
/// [`pagerank_csr`](crate::pagerank::pagerank_csr) and
/// [`hits_csr`](crate::hits::hits_csr) take this directly, so a caller that
/// keeps a `LinkCsr` current via [`apply_edits`](LinkCsr::apply_edits) can
/// rerun link analysis without ever rebuilding the graph: the maintained
/// views equal a from-scratch rebuild, and therefore so do the scores, bit
/// for bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkCsr {
    succs: Csr,
    preds: Csr,
}

impl LinkCsr {
    /// Flattens both views of `g`.
    pub fn from_digraph(g: &DiGraph) -> LinkCsr {
        LinkCsr {
            succs: Csr::successors_of(g),
            preds: Csr::predecessors_of(g),
        }
    }

    /// Bundles a successor view with its derived predecessor view — equals
    /// [`LinkCsr::from_digraph`] of the graph the rows describe.
    pub fn from_successors(succs: Csr) -> LinkCsr {
        LinkCsr {
            preds: succs.predecessors_from_successors(),
            succs,
        }
    }

    /// An edgeless graph over `n` nodes.
    pub fn empty(n: usize) -> LinkCsr {
        LinkCsr {
            succs: Csr::empty(n),
            preds: Csr::empty(n),
        }
    }

    /// Folds `added_nodes` new nodes and a batch of new edges `u → v` into
    /// both views ([`Csr::apply_edits`] per view).
    ///
    /// # Panics
    /// Panics if an edge endpoint is outside the grown node range.
    pub fn apply_edits(&mut self, added_nodes: usize, new_edges: &[(u32, u32)]) {
        self.succs
            .apply_edits(added_nodes, new_edges, AdjacencyKind::Successors);
        self.preds
            .apply_edits(added_nodes, new_edges, AdjacencyKind::Predecessors);
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.succs.edges.len()
    }

    /// Out-neighbours of `u`, in insertion order.
    #[inline]
    pub fn successors(&self, u: usize) -> &[u32] {
        self.succs.row(u)
    }

    /// In-edge sources of `v`, ascending with multiplicity.
    #[inline]
    pub fn predecessors(&self, v: usize) -> &[u32] {
        self.preds.row(v)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: usize) -> usize {
        self.succs.degree(u)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: usize) -> usize {
        self.preds.degree(v)
    }

    /// The successor adjacency as a whole — the pull kernels hand this to
    /// [`crate::pull::PullKernel`].
    #[inline]
    pub fn successors_csr(&self) -> &Csr {
        &self.succs
    }

    /// The predecessor adjacency as a whole (ascending-`u` rows with
    /// multiplicity).
    #[inline]
    pub fn predecessors_csr(&self) -> &Csr {
        &self.preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors_preserve_insertion_order() {
        let g = DiGraph::from_edges(4, [(0, 2), (0, 1), (0, 2), (2, 0), (3, 1)]);
        let s = Csr::successors_of(&g);
        assert_eq!(s.len(), 4);
        assert_eq!(s.row(0), &[2, 1, 2]);
        assert_eq!(s.row(1), &[] as &[u32]);
        assert_eq!(s.row(2), &[0]);
        assert_eq!(s.row(3), &[1]);
        assert_eq!(s.degree(0), 3);
    }

    #[test]
    fn predecessors_ascend_with_multiplicity() {
        // in_edges insertion order for node 1 would be [3, 0, 0] if edges
        // are added as (3,1) first — the CSR must re-sort to ascending u.
        let g = DiGraph::from_edges(4, [(3, 1), (0, 1), (0, 1), (2, 0), (1, 0)]);
        let p = Csr::predecessors_of(&g);
        assert_eq!(p.row(1), &[0, 0, 3]);
        assert_eq!(p.row(0), &[1, 2]);
        assert_eq!(p.row(2), &[] as &[u32]);
        assert_eq!(p.degree(3), 0);
    }

    #[test]
    fn matches_digraph_views() {
        let mut edges = Vec::new();
        for u in 0..50usize {
            edges.push((u, (u * 7 + 3) % 50));
            if u % 4 == 0 {
                edges.push((u, (u * 7 + 3) % 50)); // parallel
                edges.push((u, 0));
            }
        }
        let g = DiGraph::from_edges(50, edges.iter().copied().filter(|&(u, _)| u % 9 != 0));
        let s = Csr::successors_of(&g);
        let p = Csr::predecessors_of(&g);
        for u in 0..g.len() {
            assert_eq!(
                s.row(u).iter().map(|&v| v as usize).collect::<Vec<_>>(),
                g.successors(u).collect::<Vec<_>>()
            );
            let mut want: Vec<usize> = g.predecessors(u).collect();
            want.sort_unstable();
            assert_eq!(
                p.row(u).iter().map(|&v| v as usize).collect::<Vec<_>>(),
                want,
                "preds of {u}"
            );
            assert_eq!(s.degree(u), g.out_degree(u));
            assert_eq!(p.degree(u), g.in_degree(u));
        }
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        let s = Csr::successors_of(&g);
        assert!(s.is_empty());
        assert_eq!(Csr::predecessors_of(&g).len(), 0);
    }

    #[test]
    fn apply_edits_matches_rebuild_on_both_views() {
        let base_edges = [(0usize, 2usize), (0, 1), (2, 0), (3, 1), (3, 1)];
        let g0 = DiGraph::from_edges(4, base_edges);
        let mut link = LinkCsr::from_digraph(&g0);
        // Two new nodes; edits touch old rows, new rows, include a self-loop
        // and a duplicate of an existing edge.
        let edits = [(0u32, 3u32), (4, 4), (5, 0), (0, 1), (4, 2)];
        link.apply_edits(2, &edits);

        let mut g1 = DiGraph::from_edges(6, base_edges);
        for &(u, v) in &edits {
            g1.add_edge(u as usize, v as usize);
        }
        assert_eq!(link, LinkCsr::from_digraph(&g1));
        assert_eq!(link.edge_count(), base_edges.len() + edits.len());
        // Successor rows append in edit order; predecessor rows stay sorted.
        assert_eq!(link.successors(0), &[2, 1, 3, 1]);
        assert_eq!(link.predecessors(1), &[0, 0, 3, 3]);
        assert_eq!(link.predecessors(4), &[4]);
    }

    #[test]
    fn apply_edits_with_no_edges_only_grows_rows() {
        let g = DiGraph::from_edges(3, [(0, 1), (2, 0)]);
        let mut link = LinkCsr::from_digraph(&g);
        link.apply_edits(2, &[]);
        assert_eq!(link.len(), 5);
        assert_eq!(link.edge_count(), 2);
        assert_eq!(link.successors(0), &[1]);
        assert!(link.successors(3).is_empty() && link.predecessors(4).is_empty());
        let mut grown = DiGraph::new(5);
        grown.add_edge(0, 1);
        grown.add_edge(2, 0);
        assert_eq!(link, LinkCsr::from_digraph(&grown));
    }

    #[test]
    fn apply_edits_from_empty_graph() {
        let mut link = LinkCsr::empty(0);
        link.apply_edits(3, &[(0, 1), (1, 2), (0, 2)]);
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(link, LinkCsr::from_digraph(&g));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_edits_rejects_out_of_range_targets() {
        let mut link = LinkCsr::empty(2);
        link.apply_edits(0, &[(0, 5)]);
    }

    #[test]
    fn builder_rows_match_digraph_views() {
        let g = DiGraph::from_edges(5, [(0, 2), (0, 1), (0, 2), (2, 0), (3, 1), (4, 4)]);
        let mut b = CsrBuilder::new();
        for u in 0..g.len() {
            let row: Vec<u32> = g.successors(u).map(|v| v as u32).collect();
            b.push_row(&row);
        }
        assert_eq!(b.rows(), 5);
        let succ = b.finish();
        assert_eq!(succ, Csr::successors_of(&g));
        assert_eq!(
            succ.predecessors_from_successors(),
            Csr::predecessors_of(&g)
        );
        assert_eq!(LinkCsr::from_successors(succ), LinkCsr::from_digraph(&g));
    }

    #[test]
    fn builder_append_concatenates_shards() {
        let edges = [(0usize, 3usize), (1, 0), (2, 2), (3, 1), (3, 0), (5, 4)];
        let g = DiGraph::from_edges(6, edges);
        // Build node ranges 0..2, 2..4, 4..6 as separate segments, rows
        // numbered within the segment (global = base + local).
        let mut whole = CsrBuilder::new();
        for range in [0..2usize, 2..4, 4..6] {
            let mut seg = CsrBuilder::new();
            for u in range {
                let row: Vec<u32> = g.successors(u).map(|v| v as u32).collect();
                seg.push_row(&row);
            }
            whole.append(&seg.finish());
        }
        assert_eq!(whole.rows(), 6);
        assert_eq!(whole.finish(), Csr::successors_of(&g));
    }

    #[test]
    fn builder_empty_and_empty_rows() {
        let b = CsrBuilder::new();
        assert_eq!(b.rows(), 0);
        let empty = b.finish();
        assert!(empty.is_empty());
        assert_eq!(empty.predecessors_from_successors(), Csr::empty(0));
        let mut b = CsrBuilder::new();
        b.push_row(&[]);
        b.push_row(&[0]);
        let c = b.finish();
        assert_eq!(c.row(0), &[] as &[u32]);
        assert_eq!(c.row(1), &[0]);
        assert_eq!(c.predecessors_from_successors().row(0), &[1]);
    }
}
