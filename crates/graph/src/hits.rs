//! HITS — Kleinberg's hubs-and-authorities (ref \[4\] of the paper).
//!
//! The paper cites HITS alongside PageRank as a way to measure the authority
//! facet; `mass-core` exposes it as an alternative GL provider and the
//! evaluation harness compares both.

use crate::csr::LinkCsr;
use crate::digraph::DiGraph;
use crate::pagerank::warm_start;

/// Tuning knobs for [`hits`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HitsParams {
    /// Stop when the L1 change of the authority vector drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Worker threads for the `mass-par` layer: `0` = every available core,
    /// `1` = the exact legacy serial loop, `n` = cap. Scores are bit-identical
    /// at every setting (DESIGN.md §8).
    pub threads: usize,
    /// Source slots per cache tile for the authority pull: `0` = auto
    /// (plain kernel), an explicit value forces that tile, `usize::MAX` =
    /// never block. Scores are bit-identical at every setting (§14).
    pub block_nodes: usize,
}

impl Default for HitsParams {
    fn default() -> Self {
        HitsParams {
            tolerance: 1e-10,
            max_iterations: 200,
            threads: 1,
            block_nodes: 0,
        }
    }
}

/// Output of [`hits`]: parallel hub and authority vectors, each normalised
/// to sum to 1 (L1) for non-empty graphs with at least one edge.
#[derive(Clone, Debug, PartialEq)]
pub struct HitsScores {
    /// Authority score per node (how much good hubs point at it).
    pub authority: Vec<f64>,
    /// Hub score per node (how much it points at good authorities).
    pub hub: Vec<f64>,
    /// Sweeps performed.
    pub iterations: usize,
    /// Final L1 residual (authority + hub change of the last sweep; 0 for
    /// the degenerate early returns).
    pub residual: f64,
    /// Whether convergence was reached within the cap.
    pub converged: bool,
}

/// Runs the HITS mutual-reinforcement iteration.
///
/// `auth(v) = Σ_{u→v} hub(u)`, `hub(u) = Σ_{u→v} auth(v)`, with L1
/// normalisation after each half-step. Graphs with no edges yield uniform
/// vectors (degenerate but well-defined).
pub fn hits(g: &DiGraph, params: &HitsParams) -> HitsScores {
    hits_csr(&LinkCsr::from_digraph(g), params, None)
}

/// [`hits`] over a prebuilt [`LinkCsr`], optionally warm-starting the *hub*
/// vector (the authority half-step derives from hubs first, so the hub
/// vector is the iteration's true state) — the incremental engine's entry
/// point.
///
/// With `warm_hub = None` this is exactly [`hits`] (same bits). A warm hub
/// vector is padded/sanitised and L1-renormalised like
/// [`pagerank_csr`](crate::pagerank::pagerank_csr)'s warm start;
/// warm results are tolerance-close to cold ones, not bit-identical.
pub fn hits_csr(g: &LinkCsr, params: &HitsParams, warm_hub: Option<&[f64]>) -> HitsScores {
    let n = g.len();
    if n == 0 {
        return HitsScores {
            authority: vec![],
            hub: vec![],
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }
    let uniform = 1.0 / n as f64;
    if g.edge_count() == 0 {
        return HitsScores {
            authority: vec![uniform; n],
            hub: vec![uniform; n],
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }
    let ex = mass_par::executor(params.threads);
    let mut auth = vec![uniform; n];
    let mut hub = match warm_hub {
        None => vec![uniform; n],
        Some(prev) => warm_start(prev, n, uniform),
    };
    let mut iterations = 0;
    let mut residual = f64::INFINITY;

    // Same CSR pull kernels as `pagerank`, for every thread count:
    // ascending-`u` predecessor rows reproduce the legacy serial scatter's
    // per-slot addition order bit for bit (cache-blocked on large graphs,
    // DESIGN.md §14), and the hub half-step's successor rows keep each
    // node's insertion-order sum. The next-vector buffers are allocated
    // once and swapped, not reallocated per sweep.
    let kernel = crate::pull::PullKernel::prepare(g.predecessors_csr(), params.block_nodes);
    let mut new_auth = vec![0.0f64; n];
    let mut new_hub = vec![0.0f64; n];
    while iterations < params.max_iterations {
        iterations += 1;
        kernel.pull(ex, &hub, 0.0, &mut new_auth);
        normalize_l1(&mut new_auth, uniform);

        {
            let new_auth = &new_auth;
            ex.par_fill(&mut new_hub, |u| {
                g.successors(u).iter().map(|&v| new_auth[v as usize]).sum()
            });
        }
        normalize_l1(&mut new_hub, uniform);

        residual = auth
            .iter()
            .zip(&new_auth)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            + hub
                .iter()
                .zip(&new_hub)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        std::mem::swap(&mut auth, &mut new_auth);
        std::mem::swap(&mut hub, &mut new_hub);
        if residual < params.tolerance {
            return HitsScores {
                authority: auth,
                hub,
                iterations,
                residual,
                converged: true,
            };
        }
    }
    HitsScores {
        authority: auth,
        hub,
        iterations,
        residual,
        converged: false,
    }
}

fn normalize_l1(v: &mut [f64], fallback: f64) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        v.iter_mut().for_each(|x| *x /= sum);
    } else {
        v.iter_mut().for_each(|x| *x = fallback);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let s = hits(&DiGraph::new(0), &HitsParams::default());
        assert!(s.authority.is_empty());
        assert!(s.converged);
    }

    #[test]
    fn edgeless_graph_is_uniform() {
        let s = hits(&DiGraph::new(4), &HitsParams::default());
        for a in &s.authority {
            assert!((a - 0.25).abs() < 1e-12);
        }
        assert_eq!(s.iterations, 0);
    }

    #[test]
    fn star_center_is_authority_leaves_are_hubs() {
        // 1,2,3 all point at 0.
        let g = DiGraph::from_edges(4, [(1, 0), (2, 0), (3, 0)]);
        let s = hits(&g, &HitsParams::default());
        assert!(s.converged);
        assert!(s.authority[0] > 0.99);
        for leaf in 1..4 {
            assert!((s.hub[leaf] - 1.0 / 3.0).abs() < 1e-6);
            assert!(s.authority[leaf] < 1e-6);
        }
        assert!(s.hub[0] < 1e-6);
    }

    #[test]
    fn scores_are_l1_normalised() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let s = hits(&g, &HitsParams::default());
        assert!((s.authority.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((s.hub.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bipartite_hub_authority_split() {
        // Hubs {0,1} each point to authorities {2,3}.
        let g = DiGraph::from_edges(4, [(0, 2), (0, 3), (1, 2), (1, 3)]);
        let s = hits(&g, &HitsParams::default());
        assert!(s.authority[2] > 0.49 && s.authority[3] > 0.49);
        assert!(s.hub[0] > 0.49 && s.hub[1] > 0.49);
    }

    #[test]
    fn parallel_scores_are_bit_identical_to_serial() {
        let mut edges = Vec::new();
        for u in 0..83usize {
            edges.push((u, (u * 5 + 2) % 83));
            edges.push((u, (u * 17 + 7) % 83));
            if u % 4 == 0 {
                edges.push((u, (u * 5 + 2) % 83)); // parallel edge
            }
        }
        let g = DiGraph::from_edges(83, edges);
        let serial = hits(&g, &HitsParams::default());
        for threads in [2, 3, 8] {
            let par = hits(
                &g,
                &HitsParams {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(par.iterations, serial.iterations);
            assert_eq!(
                par.authority
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                serial
                    .authority
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                "hits authority diverged at threads={threads}"
            );
            assert_eq!(
                par.hub.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                serial.hub.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "hits hub diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn csr_entry_point_without_warm_start_matches_hits_bitwise() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 1), (3, 1), (4, 3)]);
        let a = hits(&g, &HitsParams::default());
        let b = hits_csr(&LinkCsr::from_digraph(&g), &HitsParams::default(), None);
        assert_eq!(
            a.authority.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            b.authority.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            a.hub.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            b.hub.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn warm_hub_start_reaches_the_fixed_point_in_fewer_or_equal_sweeps() {
        let mut edges = Vec::new();
        for u in 0..40usize {
            edges.push((u, (u * 3 + 1) % 40));
            edges.push((u, (u * 11 + 7) % 40));
        }
        let g = DiGraph::from_edges(40, edges);
        let link = LinkCsr::from_digraph(&g);
        let cold = hits_csr(&link, &HitsParams::default(), None);
        assert!(cold.converged);
        let warm = hits_csr(&link, &HitsParams::default(), Some(&cold.hub));
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        for (a, b) in warm.authority.iter().zip(&cold.authority) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let s = hits(
            &g,
            &HitsParams {
                tolerance: 0.0,
                max_iterations: 3,
                ..Default::default()
            },
        );
        assert_eq!(s.iterations, 3);
        assert!(!s.converged);
    }
}
