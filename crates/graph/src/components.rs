//! Connected-component analysis.
//!
//! The evaluation harness reports the component structure of generated and
//! crawled blogospheres (a crawl from a seed should cover the seed's weak
//! component up to the radius), and Tarjan SCCs let tests confirm that the
//! synthetic link graph has the expected giant component.

use crate::digraph::DiGraph;

/// Labels each node with a weakly-connected-component id (0-based, in order
/// of first discovery). Returns `(labels, component_count)`.
pub fn weakly_connected_components(g: &DiGraph) -> (Vec<usize>, usize) {
    let n = g.len();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = count;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for v in g.successors(u).chain(g.predecessors(u)) {
                if label[v] == usize::MAX {
                    label[v] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (label, count)
}

/// Tarjan's strongly-connected components, iterative to avoid stack overflow
/// on deep synthetic graphs. Returns `(labels, component_count)`; labels are
/// assigned in reverse topological order of the condensation.
pub fn strongly_connected_components(g: &DiGraph) -> (Vec<usize>, usize) {
    let n = g.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0;
    let mut comp_count = 0;

    // Explicit DFS machine: (node, iterator position over successors).
    let succ: Vec<Vec<usize>> = (0..n).map(|u| g.successors(u).collect()).collect();
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call_stack.push((root, 0));
        while let Some(&mut (u, ref mut pos)) = call_stack.last_mut() {
            if *pos == 0 {
                index[u] = next_index;
                lowlink[u] = next_index;
                next_index += 1;
                stack.push(u);
                on_stack[u] = true;
            }
            if *pos < succ[u].len() {
                let v = succ[u][*pos];
                *pos += 1;
                if index[v] == usize::MAX {
                    call_stack.push((v, 0));
                } else if on_stack[v] {
                    lowlink[u] = lowlink[u].min(index[v]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[u]);
                }
                if lowlink[u] == index[u] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = comp_count;
                        if w == u {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    (comp, comp_count)
}

/// Size of the largest weakly-connected component; 0 for empty graphs.
pub fn giant_component_size(g: &DiGraph) -> usize {
    let (labels, count) = weakly_connected_components(g);
    let mut sizes = vec![0usize; count];
    for l in labels {
        sizes[l] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_components() {
        let (labels, count) = weakly_connected_components(&DiGraph::new(0));
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        assert_eq!(giant_component_size(&DiGraph::new(0)), 0);
    }

    #[test]
    fn isolated_nodes_each_a_component() {
        let (_, count) = weakly_connected_components(&DiGraph::new(4));
        assert_eq!(count, 4);
        let (_, scc) = strongly_connected_components(&DiGraph::new(4));
        assert_eq!(scc, 4);
    }

    #[test]
    fn weak_components_ignore_direction() {
        let g = DiGraph::from_edges(5, [(0, 1), (2, 1), (3, 4)]);
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(giant_component_size(&g), 3);
    }

    #[test]
    fn scc_finds_cycle() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (labels, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn scc_on_dag_is_all_singletons() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)]);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn scc_two_cycles_bridged() {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let (labels, count) = strongly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[5]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 50k-node path exercises the iterative Tarjan implementation.
        let n = 50_000;
        let g = DiGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, n);
        assert_eq!(giant_component_size(&g), n);
    }
}
