//! # mass-graph
//!
//! Link-analysis substrate for the MASS system.
//!
//! The paper's *General Links* (GL) influence facet measures a blogger's
//! authority "in the network of page links … like PageRank and HITS"
//! (Section I). This crate provides:
//!
//! * [`DiGraph`] — a compact directed graph over dense `usize` node ids,
//! * [`pagerank()`](pagerank()) — damped PageRank with dangling-mass redistribution,
//! * [`hits()`](hits()) — Kleinberg's hubs-and-authorities iteration,
//! * [`bfs_within_radius`] — the radius-limited traversal the crawler uses
//!   ("the user can also specify the radius of network where the crawling is
//!   performed", Section IV),
//! * weak/strong component analysis and degree statistics used by the
//!   evaluation harness.
//!
//! The crate is deliberately independent of `mass-types`: nodes are plain
//! indices, so the same algorithms serve the blogger link graph, the
//! post-to-post citation graph and the post-reply network.
//!
//! ```
//! use mass_graph::{DiGraph, pagerank, PageRankParams};
//!
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(2, 0);
//! let pr = pagerank(&g, &PageRankParams::default());
//! assert!((pr.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

pub mod components;
pub mod csr;
pub mod digraph;
pub mod hits;
pub mod pagerank;
pub mod pull;
pub mod traversal;

pub use components::{
    giant_component_size, strongly_connected_components, weakly_connected_components,
};
pub use csr::{AdjacencyKind, Csr, CsrBuilder, LinkCsr};
pub use digraph::{DegreeStats, DiGraph};
pub use hits::{hits, hits_csr, HitsParams, HitsScores};
pub use pagerank::{pagerank, pagerank_csr, PageRankParams, PageRankResult};
pub use pull::{pull_unblocked, BlockedPull, PullKernel, DEFAULT_BLOCK_NODES};
pub use traversal::{ball, bfs_within_radius, BfsLayer};
