//! PageRank (Page et al., ref \[3\] of the paper) — the General-Links facet.

use crate::csr::LinkCsr;
use crate::digraph::DiGraph;

/// Tuning knobs for [`pagerank`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankParams {
    /// Damping factor `d`; the classic 0.85.
    pub damping: f64,
    /// Stop when the L1 change between sweeps drops below this.
    pub tolerance: f64,
    /// Hard iteration cap (protects against pathological graphs).
    pub max_iterations: usize,
    /// Worker threads for the `mass-par` layer: `0` = every available core,
    /// `1` = the exact legacy serial loop, `n` = cap. Scores are bit-identical
    /// at every setting (DESIGN.md §8).
    pub threads: usize,
    /// Source slots per cache tile for the pull kernel: `0` = auto (plain
    /// kernel), an explicit value forces that tile, `usize::MAX` = never
    /// block. Scores are bit-identical at every setting (DESIGN.md §14).
    pub block_nodes: usize,
}

impl Default for PageRankParams {
    fn default() -> Self {
        PageRankParams {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
            threads: 1,
            block_nodes: 0,
        }
    }
}

/// Output of [`pagerank`].
#[derive(Clone, Debug, PartialEq)]
pub struct PageRankResult {
    /// Stationary probability per node; sums to 1 for non-empty graphs.
    pub scores: Vec<f64>,
    /// Sweeps actually performed.
    pub iterations: usize,
    /// Final L1 residual.
    pub residual: f64,
    /// Whether the residual dropped below tolerance within the cap.
    pub converged: bool,
}

/// Computes PageRank with uniform teleport and dangling-mass redistribution.
///
/// Dangling nodes (no out-links) donate their rank uniformly to all nodes,
/// the standard fix that keeps the iteration stochastic. Parallel edges count
/// with multiplicity: a blogger who links twice to the same space passes
/// twice the share, matching how the crawler records repeated links.
pub fn pagerank(g: &DiGraph, params: &PageRankParams) -> PageRankResult {
    pagerank_csr(&LinkCsr::from_digraph(g), params, None)
}

/// [`pagerank`] over a prebuilt [`LinkCsr`], optionally warm-starting from a
/// previous rank vector — the incremental engine's entry point.
///
/// With `warm = None` this is exactly [`pagerank`] (same bits). A warm
/// vector is padded with the uniform share for nodes beyond its length (and
/// for non-finite or negative entries), then L1-renormalised so the
/// iteration stays stochastic; it converges to the same fixed point within
/// tolerance, usually in fewer sweeps — but along a different trajectory,
/// so warm results are tolerance-close, not bit-identical.
pub fn pagerank_csr(g: &LinkCsr, params: &PageRankParams, warm: Option<&[f64]>) -> PageRankResult {
    let n = g.len();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }
    assert!(
        params.damping >= 0.0 && params.damping < 1.0,
        "damping must be in [0, 1), got {}",
        params.damping
    );
    let ex = mass_par::executor(params.threads);
    let d = params.damping;
    let uniform = 1.0 / n as f64;
    let mut rank = match warm {
        None => vec![uniform; n],
        Some(prev) => warm_start(prev, n, uniform),
    };
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;

    // One pull kernel for every thread count, over flattened CSR rows.
    // Predecessor rows list every in-edge source (with multiplicity) in
    // ascending-`u` order — exactly the order the legacy serial scatter
    // added into slot `v` — so the fold reproduces the scatter result bit
    // for bit, and the blocked layout reproduces the fold (DESIGN.md §14).
    let degree: Vec<u32> = (0..n).map(|u| g.out_degree(u) as u32).collect();
    // Dangling nodes never change across sweeps: index them once instead of
    // rescanning all n degrees every sweep. Ascending order, so the serial
    // per-sweep sum keeps the legacy filter-scan's exact addition sequence.
    let dangling: Vec<u32> = (0..n as u32).filter(|&u| degree[u as usize] == 0).collect();
    let kernel = crate::pull::PullKernel::prepare(g.predecessors_csr(), params.block_nodes);
    let mut share = vec![0.0f64; n];

    while iterations < params.max_iterations {
        iterations += 1;
        // Mass from dangling nodes is spread uniformly. Order-sensitive
        // sum: stays serial so bits never depend on the thread count.
        let dangling_mass: f64 = dangling.iter().map(|&u| rank[u as usize]).sum();
        let base = (1.0 - d) * uniform + d * dangling_mass * uniform;
        {
            let (rank, degree) = (&rank, &degree);
            ex.par_fill(&mut share, |u| {
                if degree[u] == 0 {
                    0.0
                } else {
                    d * rank[u] / degree[u] as f64
                }
            });
            kernel.pull(ex, &share, base, &mut next);
        }
        residual = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if residual < params.tolerance {
            return PageRankResult {
                scores: rank,
                iterations,
                residual,
                converged: true,
            };
        }
    }
    PageRankResult {
        scores: rank,
        iterations,
        residual,
        converged: false,
    }
}

/// Sanitises a previous score vector into a stochastic start: entries
/// beyond its length (new nodes) and non-finite or negative carry-overs
/// take the uniform share, then the vector is L1-renormalised.
pub(crate) fn warm_start(prev: &[f64], n: usize, uniform: f64) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n)
        .map(|i| match prev.get(i) {
            Some(&x) if x.is_finite() && x >= 0.0 => x,
            _ => uniform,
        })
        .collect();
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        v.iter_mut().for_each(|x| *x /= sum);
    } else {
        v.iter_mut().for_each(|x| *x = uniform);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sums_to_one(scores: &[f64]) {
        let s: f64 = scores.iter().sum();
        assert!((s - 1.0).abs() < 1e-8, "scores sum to {s}");
    }

    #[test]
    fn empty_graph() {
        let r = pagerank(&DiGraph::new(0), &PageRankParams::default());
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn single_node_gets_all_mass() {
        let r = pagerank(&DiGraph::new(1), &PageRankParams::default());
        assert_eq!(r.scores, vec![1.0]);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&g, &PageRankParams::default());
        assert!(r.converged);
        assert_sums_to_one(&r.scores);
        for s in &r.scores {
            assert!((s - 0.25).abs() < 1e-8);
        }
    }

    #[test]
    fn hub_attracts_rank() {
        // Everyone links to node 0; node 0 links back to node 1 only.
        let g = DiGraph::from_edges(4, [(1, 0), (2, 0), (3, 0), (0, 1)]);
        let r = pagerank(&g, &PageRankParams::default());
        assert_sums_to_one(&r.scores);
        assert!(r.scores[0] > r.scores[2]);
        assert!(r.scores[0] > r.scores[3]);
        // Node 1 receives node 0's entire damped rank, so it also beats 2 and 3.
        assert!(r.scores[1] > r.scores[2]);
    }

    #[test]
    fn dangling_nodes_keep_total_mass() {
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2)]); // 1 and 2 dangle
        let r = pagerank(&g, &PageRankParams::default());
        assert!(r.converged);
        assert_sums_to_one(&r.scores);
        assert!(r.scores[1] > r.scores[0]);
    }

    #[test]
    fn zero_damping_is_uniform() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let r = pagerank(
            &g,
            &PageRankParams {
                damping: 0.0,
                ..Default::default()
            },
        );
        for s in &r.scores {
            assert!((s - 1.0 / 3.0).abs() < 1e-9);
        }
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn parallel_edges_double_share() {
        // 0 links twice to 1 and once to 2: 1 should get twice 2's share from 0.
        let g = DiGraph::from_edges(3, [(0, 1), (0, 1), (0, 2), (1, 0), (2, 0)]);
        let r = pagerank(&g, &PageRankParams::default());
        assert!(r.scores[1] > r.scores[2]);
        assert_sums_to_one(&r.scores);
    }

    #[test]
    fn iteration_cap_respected() {
        let g = DiGraph::from_edges(2, [(0, 1), (1, 0)]);
        let r = pagerank(
            &g,
            &PageRankParams {
                tolerance: 0.0,
                max_iterations: 5,
                ..Default::default()
            },
        );
        assert_eq!(r.iterations, 5);
        assert!(!r.converged);
    }

    #[test]
    fn parallel_ranks_are_bit_identical_to_serial() {
        // Irregular graph with parallel edges and dangling nodes so every
        // code path (share precompute, pull fold, dangling mass) is hit.
        let mut edges = Vec::new();
        for u in 0..97usize {
            edges.push((u, (u * 7 + 3) % 97));
            edges.push((u, (u * 31 + 11) % 97));
            if u % 5 == 0 {
                edges.push((u, (u * 13 + 1) % 97)); // heavier hubs
                edges.push((u, (u * 7 + 3) % 97)); // parallel edge
            }
        }
        let g = DiGraph::from_edges(97, edges.into_iter().filter(|&(u, _)| u % 11 != 0));
        let serial = pagerank(&g, &PageRankParams::default());
        for threads in [2, 3, 8] {
            let par = pagerank(
                &g,
                &PageRankParams {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(par.iterations, serial.iterations);
            assert_eq!(
                par.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                serial
                    .scores
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                "pagerank diverged at threads={threads}"
            );
            assert_eq!(par.residual.to_bits(), serial.residual.to_bits());
        }
    }

    #[test]
    fn csr_entry_point_without_warm_start_matches_pagerank_bitwise() {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 0), (3, 0), (4, 3)]);
        let a = pagerank(&g, &PageRankParams::default());
        let b = pagerank_csr(&LinkCsr::from_digraph(&g), &PageRankParams::default(), None);
        assert_eq!(
            a.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            b.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn warm_start_reaches_the_fixed_point_in_fewer_or_equal_sweeps() {
        let mut edges = Vec::new();
        for u in 0..60usize {
            edges.push((u, (u * 7 + 3) % 60));
            edges.push((u, (u * 13 + 5) % 60));
        }
        let g = DiGraph::from_edges(60, edges);
        let link = LinkCsr::from_digraph(&g);
        let cold = pagerank_csr(&link, &PageRankParams::default(), None);
        assert!(cold.converged);
        let warm = pagerank_csr(&link, &PageRankParams::default(), Some(&cold.scores));
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        for (a, b) in warm.scores.iter().zip(&cold.scores) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn warm_start_pads_new_nodes_and_sanitises_garbage() {
        // Previous vector is short (graph grew), has a NaN and a negative —
        // all three must fall back to the uniform share, and the start must
        // renormalise to a stochastic vector.
        let v = warm_start(&[0.5, f64::NAN, -3.0], 5, 0.2);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(v[1], v[2]);
        assert_eq!(v[2], v[3]);
        assert!(v[0] > v[1]);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_of_one_rejected() {
        let g = DiGraph::new(2);
        let _ = pagerank(
            &g,
            &PageRankParams {
                damping: 1.0,
                ..Default::default()
            },
        );
    }
}
