//! Cache-blocked CSR pull kernel (DESIGN.md §14).
//!
//! The pull step behind PageRank and the HITS authority half-step is
//! `out[v] = base + Σ_{u ∈ preds(v)} weights[u]` — a gather whose `weights`
//! accesses are random within `0..n`. Once `n × 8` bytes outgrow L2 the
//! gather pays a cache miss per edge. Blocking partitions the *source* id
//! range into tiles of [`DEFAULT_BLOCK_NODES`] slots (sized so a tile of
//! `weights` fits in half of a typical 2 MiB L2) and re-lays the edges out
//! block-major once per solve, so each sweep streams the edge array
//! sequentially while its `weights` reads stay inside one resident tile.
//!
//! Bit-identity: predecessor rows are ascending in `u`, and a row's
//! intersection with the ascending block sequence visits exactly the same
//! sources in exactly the same order. Each destination's accumulation is
//! `base`, then block segments in ascending block order, each segment in
//! ascending `u` order — the identical f64 addition sequence the unblocked
//! fold performs, so blocked results are `f64::to_bits`-identical to the
//! plain kernel at every thread count and block size.

use crate::csr::Csr;
use mass_par::Exec;

/// The recommended tile when blocking is requested explicitly: 128 Ki
/// slots = 1 MiB of f64 weights, half of a typical 2 MiB L2 so the edge
/// stream and destination accumulators keep the other half.
pub const DEFAULT_BLOCK_NODES: usize = 1 << 17;

/// Resolves a block-size knob. `0` ("auto") picks the plain kernel:
/// blocking is opt-in because it only pays off when the weight vector
/// outruns the last-level cache *and* rows are dense enough that a row's
/// edges don't shatter into near-empty per-block segments — X17 measures
/// it losing outright on a 260 MiB-LLC host at every feasible size. Any
/// other value is taken literally (`usize::MAX` disables blocking too).
pub fn resolve_block_nodes(block_nodes: usize) -> usize {
    if block_nodes == 0 {
        usize::MAX
    } else {
        block_nodes
    }
}

/// The unblocked reference pull: `out[v] = base + Σ weights[u]` over row
/// `v` in ascending-`u` order. This is the exact pre-blocking kernel; the
/// blocked path must reproduce it bit for bit.
pub fn pull_unblocked(ex: Exec, rows: &Csr, weights: &[f64], base: f64, out: &mut [f64]) {
    ex.par_fill(out, |v| {
        rows.row(v)
            .iter()
            .fold(base, |a, &u| a + weights[u as usize])
    });
}

/// Edges of one CSR re-laid out block-major: for each source block, the
/// (destination, edge-range) segments of every row that intersects the
/// block, in ascending destination order, each segment preserving the
/// row's ascending-`u` edge order. Built once per solve (`O(E)`), reused
/// every sweep.
pub struct BlockedPull {
    n: usize,
    block: usize,
    /// Per block, the range into `seg_dst`/`seg_edge_off` (len nblocks+1).
    block_seg_off: Vec<u32>,
    /// Destination node of each segment, ascending within a block.
    seg_dst: Vec<u32>,
    /// Start of each segment's edges in `edges` (len segments+1; segments
    /// are contiguous in `edges`, so entry `s+1` is also segment `s`'s end).
    seg_edge_off: Vec<u32>,
    /// Edge sources, block-major.
    edges: Vec<u32>,
}

impl BlockedPull {
    /// Builds the block-major layout for `rows` with `block` source slots
    /// per tile. Two counting-sort passes over the edges.
    pub fn new(rows: &Csr, block: usize) -> BlockedPull {
        assert!(block > 0, "block size must be positive");
        let n = rows.len();
        let nblocks = n.div_ceil(block).max(1);
        let mut edge_count = vec![0u32; nblocks];
        let mut seg_count = vec![0u32; nblocks];
        for v in 0..n {
            let row = rows.row(v);
            let mut i = 0;
            while i < row.len() {
                let b = row[i] as usize / block;
                let take = row[i..].partition_point(|&u| (u as usize) / block == b);
                edge_count[b] += take as u32;
                seg_count[b] += 1;
                i += take;
            }
        }
        let total_segs: usize = seg_count.iter().map(|&c| c as usize).sum();
        let total_edges: usize = edge_count.iter().map(|&c| c as usize).sum();
        let mut block_seg_off = Vec::with_capacity(nblocks + 1);
        let mut seg_cursor = Vec::with_capacity(nblocks);
        let mut edge_cursor = Vec::with_capacity(nblocks);
        let (mut segs, mut edges_so_far) = (0u32, 0u32);
        for b in 0..nblocks {
            block_seg_off.push(segs);
            seg_cursor.push(segs as usize);
            edge_cursor.push(edges_so_far as usize);
            segs += seg_count[b];
            edges_so_far += edge_count[b];
        }
        block_seg_off.push(segs);
        let mut seg_dst = vec![0u32; total_segs];
        let mut seg_edge_off = vec![0u32; total_segs + 1];
        seg_edge_off[total_segs] = total_edges as u32;
        let mut edges = vec![0u32; total_edges];
        for v in 0..n {
            let row = rows.row(v);
            let mut i = 0;
            while i < row.len() {
                let b = row[i] as usize / block;
                let take = row[i..].partition_point(|&u| (u as usize) / block == b);
                let s = seg_cursor[b];
                let e = edge_cursor[b];
                seg_dst[s] = v as u32;
                seg_edge_off[s] = e as u32;
                edges[e..e + take].copy_from_slice(&row[i..i + take]);
                seg_cursor[b] = s + 1;
                edge_cursor[b] = e + take;
                i += take;
            }
        }
        BlockedPull {
            n,
            block,
            block_seg_off,
            seg_dst,
            seg_edge_off,
            edges,
        }
    }

    /// Number of source blocks.
    pub fn blocks(&self) -> usize {
        self.block_seg_off.len() - 1
    }

    /// Source slots per block tile.
    pub fn block_nodes(&self) -> usize {
        self.block
    }

    /// Runs the pull: `out[v] = base + Σ weights[u]` in the same per-slot
    /// order as [`pull_unblocked`]. Destinations are chunked exactly like
    /// `par_fill`; each chunk walks the source blocks in ascending order,
    /// restricted to its own destination range.
    pub fn pull(&self, ex: Exec, weights: &[f64], base: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.n);
        let nblocks = self.blocks();
        let ptr = SendPtr(out.as_mut_ptr());
        ex.for_each_chunk(self.n, |_c, range| {
            let ptr = &ptr;
            for v in range.clone() {
                // SAFETY: chunk ranges partition 0..n; this chunk owns `v`.
                unsafe { *ptr.0.add(v) = base };
            }
            for b in 0..nblocks {
                let s0 = self.block_seg_off[b] as usize;
                let s1 = self.block_seg_off[b + 1] as usize;
                let segs = &self.seg_dst[s0..s1];
                let lo = s0 + segs.partition_point(|&d| (d as usize) < range.start);
                let hi = s0 + segs.partition_point(|&d| (d as usize) < range.end);
                for s in lo..hi {
                    let v = self.seg_dst[s] as usize;
                    let e0 = self.seg_edge_off[s] as usize;
                    let e1 = self.seg_edge_off[s + 1] as usize;
                    // SAFETY: `v` lies in this chunk's range (the
                    // partition_point bounds above), so no other chunk
                    // touches this slot.
                    let mut a = unsafe { *ptr.0.add(v) };
                    for &u in &self.edges[e0..e1] {
                        a += weights[u as usize];
                    }
                    unsafe { *ptr.0.add(v) = a };
                }
            }
        });
    }
}

/// The kernel actually used by a solve: the plain fold when the graph fits
/// the tile (or blocking is disabled), the block-major layout otherwise.
pub struct PullKernel<'a> {
    rows: &'a Csr,
    blocked: Option<BlockedPull>,
}

impl<'a> PullKernel<'a> {
    /// Prepares the pull for `rows`. `block_nodes`: `0` = auto (plain
    /// kernel — see [`resolve_block_nodes`]), `usize::MAX` = never block,
    /// anything else is an explicit tile size. Blocking only engages when
    /// the graph has more nodes than one tile — below that the plain
    /// kernel already runs in-cache and the relayout would be waste.
    pub fn prepare(rows: &'a Csr, block_nodes: usize) -> PullKernel<'a> {
        let block = resolve_block_nodes(block_nodes);
        let blocked = (rows.len() > block).then(|| BlockedPull::new(rows, block));
        PullKernel { rows, blocked }
    }

    /// Whether the blocked layout engaged.
    pub fn is_blocked(&self) -> bool {
        self.blocked.is_some()
    }

    /// `out[v] = base + Σ_{u ∈ rows.row(v)} weights[u]`, ascending `u`.
    pub fn pull(&self, ex: Exec, weights: &[f64], base: f64, out: &mut [f64]) {
        match &self.blocked {
            None => pull_unblocked(ex, self.rows, weights, base, out),
            Some(b) => b.pull(ex, weights, base, out),
        }
    }
}

/// A raw pointer that crosses threads; every use writes disjoint
/// destination ranges derived from the chunk plan partition.
struct SendPtr<U>(*mut U);
unsafe impl<U: Send> Send for SendPtr<U> {}
unsafe impl<U: Send> Sync for SendPtr<U> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    fn preds_of(edges: Vec<(usize, usize)>, n: usize) -> Csr {
        Csr::predecessors_of(&DiGraph::from_edges(n, edges))
    }

    fn pull_all_ways(rows: &Csr, weights: &[f64], base: f64) -> Vec<Vec<u64>> {
        let n = rows.len();
        let mut outs = Vec::new();
        for block in [1usize, 3, DEFAULT_BLOCK_NODES, usize::MAX] {
            for threads in [1usize, 4] {
                let ex = mass_par::executor(threads);
                let mut out = vec![0.0f64; n];
                let kernel = PullKernel::prepare(rows, block);
                kernel.pull(ex, weights, base, &mut out);
                outs.push(out.iter().map(|x| x.to_bits()).collect());
            }
        }
        outs
    }

    #[test]
    fn blocked_pull_is_bit_identical_to_unblocked() {
        // Rounding-sensitive weights: magnitudes spread over ~2^40 so any
        // reassociation would flip low bits.
        let n = 97;
        let mut edges = Vec::new();
        for u in 0..n {
            edges.push((u, (u * 7 + 3) % n));
            edges.push((u, (u * 31 + 11) % n));
            if u % 5 == 0 {
                edges.push((u, (u * 7 + 3) % n)); // multi-edge
            }
        }
        let rows = preds_of(edges, n);
        let weights: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761usize % 89) as f64) * (2.0f64).powi((i % 40) as i32 - 20))
            .collect();
        let outs = pull_all_ways(&rows, &weights, 0.125);
        for (k, o) in outs.iter().enumerate() {
            assert_eq!(o, &outs[0], "variant {k} drifted");
        }
    }

    #[test]
    fn empty_rows_get_base() {
        let rows = preds_of(vec![(0, 1)], 5);
        let kernel = PullKernel::prepare(&rows, 2);
        assert!(kernel.is_blocked());
        let mut out = vec![0.0f64; 5];
        kernel.pull(mass_par::executor(1), &[1.0; 5], 0.5, &mut out);
        assert_eq!(out, vec![0.5, 1.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn blocking_engages_only_above_one_tile() {
        let rows = preds_of(vec![(0, 1), (1, 2)], 3);
        assert!(!PullKernel::prepare(&rows, 3).is_blocked());
        assert!(PullKernel::prepare(&rows, 2).is_blocked());
        assert!(!PullKernel::prepare(&rows, usize::MAX).is_blocked());
        // Auto keeps the plain kernel; explicit sizes are literal.
        assert!(!PullKernel::prepare(&rows, 0).is_blocked());
        assert_eq!(resolve_block_nodes(0), usize::MAX);
        assert_eq!(resolve_block_nodes(7), 7);
    }

    #[test]
    fn block_layout_counts_every_edge_once() {
        let n = 50;
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| [(u, (u * 3) % n), (u, (u * 7 + 1) % n)])
            .collect();
        let rows = preds_of(edges, n);
        let blocked = BlockedPull::new(&rows, 8);
        assert_eq!(
            blocked.edges.len(),
            (0..n).map(|v| rows.row(v).len()).sum::<usize>()
        );
        assert_eq!(blocked.blocks(), n.div_ceil(8));
    }
}
