//! Breadth-first traversal with a radius cap.
//!
//! Section IV of the paper: the user "can also specify the radius of network
//! where the crawling is performed", so MASS can mine a friend neighbourhood
//! instead of the whole blogosphere. The crawler and the Fig. 4 network
//! extractor both use this primitive.

use crate::digraph::DiGraph;
use std::collections::VecDeque;

/// One BFS frontier: the nodes first reached at a given depth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsLayer {
    /// Distance from the seed (the seed itself is depth 0).
    pub depth: usize,
    /// Nodes discovered at this depth, in visit order.
    pub nodes: Vec<usize>,
}

/// BFS from `seed` following out-edges, stopping at `radius` hops.
///
/// Returns one [`BfsLayer`] per depth `0..=radius` that contains at least one
/// node. Nodes unreachable within the radius are absent. Parallel edges do
/// not cause duplicate visits.
///
/// # Panics
/// Panics if `seed` is out of range.
pub fn bfs_within_radius(g: &DiGraph, seed: usize, radius: usize) -> Vec<BfsLayer> {
    assert!(
        seed < g.len(),
        "seed {seed} out of range for graph of {} nodes",
        g.len()
    );
    let mut visited = vec![false; g.len()];
    visited[seed] = true;
    let mut layers = vec![BfsLayer {
        depth: 0,
        nodes: vec![seed],
    }];
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    queue.push_back((seed, 0));

    while let Some((u, depth)) = queue.pop_front() {
        if depth == radius {
            continue;
        }
        for v in g.successors(u) {
            if !visited[v] {
                visited[v] = true;
                if layers.len() <= depth + 1 {
                    layers.push(BfsLayer {
                        depth: depth + 1,
                        nodes: Vec::new(),
                    });
                }
                layers[depth + 1].nodes.push(v);
                queue.push_back((v, depth + 1));
            }
        }
    }
    layers
}

/// Convenience: the set of nodes within `radius` hops of `seed`, flattened.
pub fn ball(g: &DiGraph, seed: usize, radius: usize) -> Vec<usize> {
    bfs_within_radius(g, seed, radius)
        .into_iter()
        .flat_map(|l| l.nodes)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> DiGraph {
        DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn radius_zero_is_just_seed() {
        let layers = bfs_within_radius(&path5(), 2, 0);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].nodes, vec![2]);
    }

    #[test]
    fn layers_follow_distance() {
        let layers = bfs_within_radius(&path5(), 0, 3);
        assert_eq!(layers.len(), 4);
        for (d, layer) in layers.iter().enumerate() {
            assert_eq!(layer.depth, d);
            assert_eq!(layer.nodes, vec![d]);
        }
    }

    #[test]
    fn radius_larger_than_graph_is_fine() {
        let all = ball(&path5(), 0, 100);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_nodes_excluded() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let all = ball(&g, 0, 10);
        assert_eq!(all, vec![0, 1]);
    }

    #[test]
    fn direction_matters() {
        let g = DiGraph::from_edges(3, [(1, 0), (2, 1)]);
        // From node 0, no out-edges at all.
        assert_eq!(ball(&g, 0, 5), vec![0]);
        // From node 2, the chain unwinds.
        assert_eq!(ball(&g, 2, 5), vec![2, 1, 0]);
    }

    #[test]
    fn cycles_do_not_loop() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let layers = bfs_within_radius(&g, 0, 10);
        assert_eq!(layers.iter().map(|l| l.nodes.len()).sum::<usize>(), 3);
    }

    #[test]
    fn parallel_edges_visit_once() {
        let g = DiGraph::from_edges(2, [(0, 1), (0, 1), (0, 1)]);
        let layers = bfs_within_radius(&g, 0, 1);
        assert_eq!(layers[1].nodes, vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_seed_panics() {
        let _ = bfs_within_radius(&DiGraph::new(1), 3, 1);
    }
}
