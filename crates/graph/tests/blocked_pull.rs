//! Differential proptests for the cache-blocked CSR pull (DESIGN.md §14):
//! `pagerank_csr` and `hits_csr` must be `f64::to_bits`-identical across
//! every block size × thread count combination, on graphs built to stress
//! the blocking edge cases — dangling-heavy (most rows empty), stars (one
//! row spans every block), and dense multi-edge tangles (duplicate sources
//! inside one block segment).

use mass_graph::{
    hits_csr, pagerank_csr, DiGraph, HitsParams, LinkCsr, PageRankParams, DEFAULT_BLOCK_NODES,
};
use proptest::prelude::*;

/// Adversarial graph shapes: `kind` selects dangling-heavy, star, or
/// multi-edge-dense construction over up to 60 nodes.
fn arb_adversarial_graph() -> impl Strategy<Value = DiGraph> {
    (0u8..3, 2usize..60).prop_flat_map(|(kind, n)| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |raw| match kind {
            // Dangling-heavy: only a few sources emit edges; most nodes
            // have empty rows on both sides and donate teleport mass.
            0 => DiGraph::from_edges(n, raw.into_iter().take(20).map(|(u, v)| (u % n.min(4), v))),
            // Star plus noise: every node links the hub (one predecessor
            // row crosses every source block), hub links a few back.
            1 => {
                let mut edges: Vec<(usize, usize)> = (1..n).map(|u| (u, 0)).collect();
                edges.extend((0..n.min(3)).map(|v| (0, v)));
                edges.extend(raw.into_iter().take(10));
                DiGraph::from_edges(n, edges)
            }
            // Multi-edge tangle: heavy duplication so block segments carry
            // repeated sources with multiplicity.
            _ => {
                let mut edges = raw.clone();
                edges.extend(raw.iter().take(20).copied());
                edges.extend(raw.iter().take(7).copied());
                DiGraph::from_edges(n, edges)
            }
        })
    })
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pagerank_blocked_is_bit_identical_across_blocks_and_threads(
        g in arb_adversarial_graph(),
    ) {
        let link = LinkCsr::from_digraph(&g);
        let reference = pagerank_csr(
            &link,
            &PageRankParams { block_nodes: usize::MAX, ..Default::default() },
            None,
        );
        // Tiny blocks (every row splits), the auto default (never engages
        // at this scale), a mid-size tile, and ∞ (the plain kernel).
        for block_nodes in [2usize, 7, DEFAULT_BLOCK_NODES, 0] {
            for threads in [1usize, 4] {
                let got = pagerank_csr(
                    &link,
                    &PageRankParams { block_nodes, threads, ..Default::default() },
                    None,
                );
                prop_assert_eq!(got.iterations, reference.iterations);
                prop_assert_eq!(
                    bits(&got.scores),
                    bits(&reference.scores),
                    "pagerank drifted at block={} threads={}",
                    block_nodes,
                    threads
                );
                prop_assert_eq!(got.residual.to_bits(), reference.residual.to_bits());
            }
        }
    }

    #[test]
    fn hits_blocked_is_bit_identical_across_blocks_and_threads(
        g in arb_adversarial_graph(),
    ) {
        let link = LinkCsr::from_digraph(&g);
        let reference = hits_csr(
            &link,
            &HitsParams { block_nodes: usize::MAX, ..Default::default() },
            None,
        );
        for block_nodes in [2usize, 7, DEFAULT_BLOCK_NODES, 0] {
            for threads in [1usize, 4] {
                let got = hits_csr(
                    &link,
                    &HitsParams { block_nodes, threads, ..Default::default() },
                    None,
                );
                prop_assert_eq!(got.iterations, reference.iterations);
                prop_assert_eq!(
                    bits(&got.authority),
                    bits(&reference.authority),
                    "hits authority drifted at block={} threads={}",
                    block_nodes,
                    threads
                );
                prop_assert_eq!(
                    bits(&got.hub),
                    bits(&reference.hub),
                    "hits hub drifted at block={} threads={}",
                    block_nodes,
                    threads
                );
            }
        }
    }
}
