//! Differential tests for incremental CSR maintenance: a [`LinkCsr`] kept
//! current through [`LinkCsr::apply_edits`] must equal a from-scratch
//! rebuild of the edited graph — structurally, and through the pull kernels
//! (`pagerank_csr` / `hits_csr`) bit for bit at several thread counts.
//!
//! The edit batches are adversarial on purpose: self-loops, duplicate
//! edges, edges into brand-new nodes, and nodes that stay isolated.

use mass_graph::{hits_csr, pagerank_csr, DiGraph, HitsParams, LinkCsr, PageRankParams};
use proptest::prelude::*;

/// A base graph plus a batch of append-only edits: `added_nodes` new nodes
/// and edges over the grown id range.
fn arb_base_and_edits() -> impl Strategy<Value = (DiGraph, usize, Vec<(u32, u32)>)> {
    (1usize..30, 0usize..6).prop_flat_map(|(n, added)| {
        let grown = n + added;
        (
            proptest::collection::vec((0..n, 0..n), 0..80)
                .prop_map(move |edges| DiGraph::from_edges(n, edges)),
            Just(added),
            proptest::collection::vec(((0..grown as u32), (0..grown as u32)), 0..40),
        )
    })
}

/// The rebuilt graph: base edges in base order, then the edit batch in
/// batch order — the same append discipline `apply_edits` assumes.
fn rebuilt(base: &DiGraph, added_nodes: usize, edits: &[(u32, u32)]) -> DiGraph {
    let mut g = DiGraph::new(base.len() + added_nodes);
    for u in 0..base.len() {
        for v in base.successors(u) {
            g.add_edge(u, v);
        }
    }
    for &(u, v) in edits {
        g.add_edge(u as usize, v as usize);
    }
    g
}

proptest! {
    /// Structural equality: the maintained bundle is indistinguishable from
    /// a rebuild — rows, degrees, orderings, everything.
    #[test]
    fn maintained_link_csr_equals_rebuild((base, added, edits) in arb_base_and_edits()) {
        let mut link = LinkCsr::from_digraph(&base);
        link.apply_edits(added, &edits);
        let want = LinkCsr::from_digraph(&rebuilt(&base, added, &edits));
        prop_assert_eq!(link, want);
    }

    /// Kernel equality: PageRank and HITS over the maintained bundle are
    /// bit-identical to the rebuild, at one thread and four.
    #[test]
    fn kernels_over_maintained_csr_are_bit_identical((base, added, edits) in arb_base_and_edits()) {
        let mut link = LinkCsr::from_digraph(&base);
        link.apply_edits(added, &edits);
        let fresh = LinkCsr::from_digraph(&rebuilt(&base, added, &edits));
        for threads in [1usize, 4] {
            let pr_params = PageRankParams { threads, ..Default::default() };
            let a = pagerank_csr(&link, &pr_params, None);
            let b = pagerank_csr(&fresh, &pr_params, None);
            prop_assert_eq!(a.iterations, b.iterations, "pagerank sweeps at threads={}", threads);
            prop_assert_eq!(
                a.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                b.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "pagerank diverged at threads={}", threads
            );
            let h_params = HitsParams { threads, ..Default::default() };
            let ha = hits_csr(&link, &h_params, None);
            let hb = hits_csr(&fresh, &h_params, None);
            prop_assert_eq!(
                ha.authority.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                hb.authority.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "hits authority diverged at threads={}", threads
            );
            prop_assert_eq!(
                ha.hub.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                hb.hub.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "hits hub diverged at threads={}", threads
            );
        }
    }

    /// Edit application in one batch equals the same edits over several
    /// refreshes: splitting a batch anywhere changes nothing.
    #[test]
    fn split_batches_compose((base, added, edits) in arb_base_and_edits(),
                             split in 0usize..40) {
        let mut one_shot = LinkCsr::from_digraph(&base);
        one_shot.apply_edits(added, &edits);
        let cut = split.min(edits.len());
        let mut staged = LinkCsr::from_digraph(&base);
        // Nodes must exist before edges reference them, so they all go in
        // the first stage.
        staged.apply_edits(added, &edits[..cut]);
        staged.apply_edits(0, &edits[cut..]);
        prop_assert_eq!(one_shot, staged);
    }
}

/// A hand-built worst case covering every edge class at once.
#[test]
fn adversarial_batch_matches_rebuild() {
    // Node 3 is isolated; 0 has a self-loop and duplicate out-edges.
    let base = DiGraph::from_edges(5, [(0, 0), (0, 1), (0, 1), (2, 4), (4, 2)]);
    let mut link = LinkCsr::from_digraph(&base);
    // Grow by two nodes; touch old rows, new rows, self-loop a new node,
    // duplicate an existing parallel edge, and leave node 6 isolated.
    let edits = [(0u32, 1u32), (5, 5), (5, 0), (2, 4), (0, 0)];
    link.apply_edits(2, &edits);
    let want = LinkCsr::from_digraph(&rebuilt(&base, 2, &edits));
    assert_eq!(link, want);
    assert_eq!(link.successors(0), &[0, 1, 1, 1, 0]);
    assert_eq!(link.predecessors(0), &[0, 0, 5]);
    assert!(link.successors(6).is_empty());
    assert!(link.predecessors(3).is_empty());

    let pr_params = PageRankParams::default();
    let a = pagerank_csr(&link, &pr_params, None);
    let b = pagerank_csr(&want, &pr_params, None);
    assert_eq!(
        a.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        b.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
    );
}
