//! Property-based tests for the link-analysis substrate.

use mass_graph::{
    ball, bfs_within_radius, giant_component_size, hits, pagerank, strongly_connected_components,
    weakly_connected_components, DiGraph, HitsParams, PageRankParams,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (1usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..120)
            .prop_map(move |edges| DiGraph::from_edges(n, edges))
    })
}

proptest! {
    #[test]
    fn pagerank_is_a_distribution(g in arb_graph()) {
        let r = pagerank(&g, &PageRankParams::default());
        prop_assert!(r.converged, "residual {}", r.residual);
        let sum: f64 = r.scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        for &s in &r.scores {
            prop_assert!(s > 0.0, "teleport guarantees positive rank, got {s}");
            prop_assert!(s <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn pagerank_is_deterministic(g in arb_graph()) {
        let a = pagerank(&g, &PageRankParams::default());
        let b = pagerank(&g, &PageRankParams::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn adding_an_inlink_never_lowers_rank(g in arb_graph(), src in 0usize..40, dst in 0usize..40) {
        let n = g.len();
        let (src, dst) = (src % n, dst % n);
        prop_assume!(src != dst);
        let before = pagerank(&g, &PageRankParams::default()).scores[dst];
        let mut g2 = g.clone();
        g2.add_edge(src, dst);
        let after = pagerank(&g2, &PageRankParams::default()).scores[dst];
        // The new citation must not hurt dst (allow fp slack).
        prop_assert!(after >= before - 1e-9, "before {before} after {after}");
    }

    #[test]
    fn hits_vectors_are_distributions(g in arb_graph()) {
        let s = hits(&g, &HitsParams::default());
        let asum: f64 = s.authority.iter().sum();
        let hsum: f64 = s.hub.iter().sum();
        prop_assert!((asum - 1.0).abs() < 1e-6);
        prop_assert!((hsum - 1.0).abs() < 1e-6);
        for &x in s.authority.iter().chain(&s.hub) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&x));
        }
    }

    #[test]
    fn transpose_is_an_involution(g in arb_graph()) {
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn transpose_swaps_degrees(g in arb_graph()) {
        let t = g.transpose();
        for u in 0..g.len() {
            prop_assert_eq!(g.in_degree(u), t.out_degree(u));
            prop_assert_eq!(g.out_degree(u), t.in_degree(u));
        }
    }

    #[test]
    fn scc_refines_wcc(g in arb_graph()) {
        let (wcc, _) = weakly_connected_components(&g);
        let (scc, _) = strongly_connected_components(&g);
        // Two nodes in the same SCC must share a WCC.
        for i in 0..g.len() {
            for j in 0..g.len() {
                if scc[i] == scc[j] {
                    prop_assert_eq!(wcc[i], wcc[j]);
                }
            }
        }
    }

    #[test]
    fn giant_component_bounds(g in arb_graph()) {
        let size = giant_component_size(&g);
        prop_assert!(size >= 1);
        prop_assert!(size <= g.len());
    }

    #[test]
    fn bfs_layers_partition_the_ball(g in arb_graph(), seed in 0usize..40, radius in 0usize..6) {
        let seed = seed % g.len();
        let layers = bfs_within_radius(&g, seed, radius);
        prop_assert_eq!(layers[0].nodes.as_slice(), &[seed]);
        let mut seen = std::collections::HashSet::new();
        for (d, layer) in layers.iter().enumerate() {
            prop_assert_eq!(layer.depth, d);
            prop_assert!(d <= radius);
            for &n in &layer.nodes {
                prop_assert!(seen.insert(n), "node {n} appears in two layers");
            }
        }
        prop_assert_eq!(seen.len(), ball(&g, seed, radius).len());
    }

    #[test]
    fn bfs_ball_grows_with_radius(g in arb_graph(), seed in 0usize..40) {
        let seed = seed % g.len();
        let mut last = 0;
        for r in 0..5 {
            let size = ball(&g, seed, r).len();
            prop_assert!(size >= last);
            last = size;
        }
    }

    #[test]
    fn degree_stats_consistent(g in arb_graph()) {
        let s = g.degree_stats();
        prop_assert_eq!(s.nodes, g.len());
        prop_assert_eq!(s.edges, g.edge_count());
        let manual_dangling = (0..g.len()).filter(|&u| g.out_degree(u) == 0).count();
        prop_assert_eq!(s.dangling_nodes, manual_dangling);
    }
}
