//! Property-based tests: any crawl configuration over any corpus must
//! yield a consistent dataset with schedule-independent content.

use mass_crawler::{crawl, BlogHost, CrawlConfig, HostConfig, SimulatedHost};
use mass_synth::{generate, SynthConfig};
use proptest::prelude::*;

fn arb_world() -> impl Strategy<Value = SimulatedHost> {
    (2usize..40, any::<u64>()).prop_map(|(bloggers, seed)| {
        SimulatedHost::new(
            generate(&SynthConfig {
                bloggers,
                mean_posts_per_blogger: 2.0,
                seed,
                ..Default::default()
            })
            .dataset,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn crawl_output_is_always_valid(
        host in arb_world(),
        seed in 0usize..40,
        radius in proptest::option::of(0usize..4),
        threads in 1usize..6,
        max_spaces in 1usize..50,
    ) {
        let cfg = CrawlConfig {
            seeds: vec![seed % host.space_count()],
            radius,
            threads,
            max_spaces,
            ..Default::default()
        };
        let result = crawl(&host, &cfg).unwrap();
        prop_assert!(result.dataset.validate().is_ok());
        prop_assert!(result.report.spaces_fetched <= max_spaces);
        prop_assert!(result.report.spaces_fetched >= 1);
        prop_assert!(result.stub_start <= result.dataset.bloggers.len());
        // Every crawled space id maps back to a unique dataset blogger.
        let mut sorted = result.space_of.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), result.space_of.len());
    }

    #[test]
    fn thread_count_never_changes_the_result(
        host in arb_world(),
        seed in 0usize..40,
        radius in 0usize..3,
    ) {
        let cfg = |threads| CrawlConfig {
            seeds: vec![seed % host.space_count()],
            radius: Some(radius),
            threads,
            ..Default::default()
        };
        let one = crawl(&host, &cfg(1)).unwrap();
        let many = crawl(&host, &cfg(5)).unwrap();
        prop_assert_eq!(one.dataset, many.dataset);
        prop_assert_eq!(one.space_of, many.space_of);
        prop_assert_eq!(one.report.spaces_fetched, many.report.spaces_fetched);
    }

    #[test]
    fn full_crawl_is_lossless(host in arb_world()) {
        let result = crawl(&host, &CrawlConfig::default()).unwrap();
        prop_assert_eq!(result.report.spaces_fetched, host.space_count());
        prop_assert_eq!(result.dataset.posts.len(), host.dataset().posts.len());
        // Full crawls carry no sentiment tags, so compare the rest.
        for (orig, got) in host.dataset().posts.iter().zip(&result.dataset.posts) {
            prop_assert_eq!(&orig.text, &got.text);
            prop_assert_eq!(&orig.links_to, &got.links_to);
            prop_assert_eq!(orig.author, got.author);
            prop_assert_eq!(orig.comments.len(), got.comments.len());
        }
    }

    #[test]
    fn failures_only_shrink_coverage(
        host_seed in any::<u64>(),
        failure_permille in 0u32..800,
    ) {
        let ds = generate(&SynthConfig { bloggers: 20, seed: host_seed, ..SynthConfig::tiny(0) }).dataset;
        let flaky = SimulatedHost::with_config(
            ds.clone(),
            HostConfig { failure_rate: failure_permille as f64 / 1000.0, ..Default::default() },
        )
        .unwrap();
        let result = crawl(
            &flaky,
            &CrawlConfig {
                retries: 2,
                backoff: mass_crawler::BackoffPolicy::none(),
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert!(result.report.spaces_fetched <= flaky.space_count());
        prop_assert_eq!(
            result.report.spaces_fetched + result.report.spaces_failed,
            flaky.space_count()
        );
        prop_assert!(result.dataset.validate().is_ok());
    }
}

/// Differential fuzz of the checkpoint manifest codec: any checkpoint state
/// must survive write → parse → write with *byte-identical* XML, and parse
/// back to the original state. Catches both lossy fields and any
/// nondeterminism in the writer.
mod checkpoint_roundtrip {
    use mass_crawler::checkpoint::{checkpoint_from_xml, checkpoint_to_xml};
    use mass_crawler::CrawlCheckpoint;
    use proptest::prelude::*;

    fn arb_checkpoint() -> impl Strategy<Value = (CrawlCheckpoint, Vec<usize>)> {
        (
            proptest::collection::hash_set(0usize..10_000, 0..60),
            proptest::collection::vec(0usize..10_000, 0..40),
            0usize..20,
            proptest::collection::vec(0usize..500, 0..12),
            (
                0usize..100,
                0usize..100,
                0usize..1000,
                0usize..100,
                0usize..100,
            ),
            proptest::collection::vec(0usize..10_000, 0..50),
        )
            .prop_map(
                |(visited, frontier, depth, layer_sizes, counters, page_ids)| {
                    let (failed, missing, retries, throttled, corrupt) = counters;
                    (
                        CrawlCheckpoint {
                            visited: visited.into_iter().collect(),
                            frontier,
                            depth,
                            layer_sizes,
                            spaces_failed: failed,
                            spaces_missing: missing,
                            retries,
                            throttled,
                            corrupt_fetches: corrupt,
                        },
                        page_ids,
                    )
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn write_parse_write_is_byte_identical((cp, page_ids) in arb_checkpoint()) {
            let first = checkpoint_to_xml(&cp, &page_ids);
            let (parsed, parsed_pages) = checkpoint_from_xml(&first).expect("own output parses");
            prop_assert_eq!(&parsed, &cp, "checkpoint state must round-trip losslessly");
            prop_assert_eq!(&parsed_pages, &page_ids, "page list must round-trip");
            let second = checkpoint_to_xml(&parsed, &parsed_pages);
            prop_assert_eq!(first.into_bytes(), second.into_bytes(),
                "second serialisation must be byte-identical");
        }

        #[test]
        fn empty_and_degenerate_states_roundtrip(depth in 0usize..5) {
            let cp = CrawlCheckpoint { depth, ..Default::default() };
            let xml = checkpoint_to_xml(&cp, &[]);
            let (parsed, pages) = checkpoint_from_xml(&xml).unwrap();
            prop_assert_eq!(parsed, cp);
            prop_assert!(pages.is_empty());
            prop_assert_eq!(checkpoint_to_xml(&CrawlCheckpoint { depth, ..Default::default() }, &[]), xml);
        }
    }
}
