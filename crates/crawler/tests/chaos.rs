//! Chaos suite: the crawl pipeline must survive every fault mode the host
//! can throw — burst outages, chronic flakiness, throttling, corruption,
//! tarpits — and still terminate, produce a dataset that validates, stay
//! schedule-independent, and resume from checkpoints exactly.

use mass_crawler::{
    crawl, BackoffPolicy, BlogHost, BreakerConfig, BurstOutage, CrawlConfig, FaultPlan, HostConfig,
    SimulatedHost,
};
use mass_synth::{generate, SynthConfig};
use mass_types::Dataset;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn world(seed: u64) -> Dataset {
    generate(&SynthConfig {
        bloggers: 30,
        mean_posts_per_blogger: 2.0,
        seed,
        ..Default::default()
    })
    .dataset
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mass_chaos").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A config that retries hard but never wastes wall clock sleeping.
fn persistent() -> CrawlConfig {
    CrawlConfig {
        retries: 25,
        backoff: BackoffPolicy::none(),
        ..Default::default()
    }
}

#[test]
fn throttled_host_is_fully_recovered() {
    let truth = world(1);
    let host = SimulatedHost::with_faults(
        truth.clone(),
        HostConfig::default(),
        FaultPlan {
            seed: 11,
            throttle_rate: 0.4,
            ..Default::default()
        },
    )
    .unwrap();
    let result = crawl(&host, &persistent()).unwrap();
    assert_eq!(result.report.spaces_fetched, host.space_count());
    assert!(
        result.report.throttled > 0,
        "throttling should have been observed"
    );
    assert_eq!(result.dataset.posts.len(), truth.posts.len());
    result.dataset.validate().unwrap();
}

#[test]
fn corrupt_payloads_are_retried_to_clean_copies() {
    let truth = world(2);
    let host = SimulatedHost::with_faults(
        truth.clone(),
        HostConfig::default(),
        FaultPlan {
            seed: 22,
            corrupt_rate: 0.4,
            ..Default::default()
        },
    )
    .unwrap();
    let result = crawl(&host, &persistent()).unwrap();
    assert_eq!(result.report.spaces_fetched, host.space_count());
    assert!(
        result.report.corrupt_fetches > 0,
        "corruption should have been observed"
    );
    assert!(
        result.report.rejected_pages.is_empty(),
        "transit corruption never reaches assembly"
    );
    assert_eq!(result.dataset.posts.len(), truth.posts.len());
    result.dataset.validate().unwrap();
}

#[test]
fn mangled_pages_are_quarantined_and_reported() {
    let truth = world(3);
    let host = SimulatedHost::with_faults(
        truth,
        HostConfig::default(),
        FaultPlan {
            mangled_spaces: [4usize, 9].into_iter().collect(),
            ..Default::default()
        },
    )
    .unwrap();
    let result = crawl(&host, &persistent()).unwrap();
    assert_eq!(result.report.rejected_pages, vec![4, 9]);
    // Quarantined spaces contribute no crawled blogger of their own.
    for &space in &[4usize, 9] {
        let local = result.space_of.iter().position(|&s| s == space);
        if let Some(local) = local {
            assert!(
                local >= result.stub_start,
                "space {space} must at most be a stub"
            );
        }
    }
    result.dataset.validate().unwrap();
}

#[test]
fn burst_outages_do_not_break_the_crawl() {
    let truth = world(4);
    let host = SimulatedHost::with_faults(
        truth,
        HostConfig::default(),
        FaultPlan {
            burst: Some(BurstOutage {
                period: 20,
                down: 8,
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let result = crawl(&host, &persistent()).unwrap();
    // Burst outcomes depend on arrival order, so assert accounting and
    // validity rather than exact coverage.
    assert_eq!(
        result.report.spaces_fetched + result.report.spaces_failed,
        host.space_count()
    );
    assert!(result.report.spaces_fetched > 0);
    result.dataset.validate().unwrap();
}

#[test]
fn chronic_flakiness_is_survivable_and_reported() {
    let truth = world(5);
    let flaky: std::collections::BTreeMap<usize, f64> = [(0usize, 0.85f64), (7, 0.85), (13, 0.85)]
        .into_iter()
        .collect();
    let host = SimulatedHost::with_faults(
        truth.clone(),
        HostConfig::default(),
        FaultPlan {
            seed: 55,
            chronic_flaky: flaky,
            ..Default::default()
        },
    )
    .unwrap();
    let result = crawl(&host, &persistent()).unwrap();
    assert_eq!(
        result.report.spaces_fetched,
        host.space_count(),
        "25 retries beat 85% flake"
    );
    assert!(result.report.retries > 0);
    result.dataset.validate().unwrap();
}

#[test]
fn faulty_crawls_are_schedule_independent() {
    // Per-space fault streams: outcome of (space, attempt k) is fixed, so
    // thread count must not change the assembled dataset.
    let truth = world(6);
    let plan = FaultPlan {
        seed: 66,
        throttle_rate: 0.2,
        corrupt_rate: 0.15,
        chronic_flaky: [(2usize, 0.7f64), (11, 0.7)].into_iter().collect(),
        mangled_spaces: [5usize].into_iter().collect(),
        ..Default::default()
    };
    let cfg = |threads| CrawlConfig {
        threads,
        seeds: vec![0],
        radius: Some(3),
        retries: 4,
        backoff: BackoffPolicy::none(),
        ..Default::default()
    };
    let run = |threads| {
        let host = SimulatedHost::with_faults(
            truth.clone(),
            HostConfig {
                failure_rate: 0.3,
                ..Default::default()
            },
            plan.clone(),
        )
        .unwrap();
        crawl(&host, &cfg(threads)).unwrap()
    };
    let one = run(1);
    let many = run(8);
    assert_eq!(one.dataset, many.dataset);
    assert_eq!(one.space_of, many.space_of);
    assert_eq!(one.report.rejected_pages, many.report.rejected_pages);
    assert_eq!(one.report.spaces_fetched, many.report.spaces_fetched);
    assert_eq!(one.report.spaces_failed, many.report.spaces_failed);
    one.dataset.validate().unwrap();
}

#[test]
fn breaker_trips_during_meltdown_and_dataset_still_validates() {
    let truth = world(7);
    let host = SimulatedHost::with_faults(
        truth,
        HostConfig {
            failure_rate: 0.9,
            ..Default::default()
        },
        FaultPlan {
            seed: 77,
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = CrawlConfig {
        retries: 12,
        backoff: BackoffPolicy::none(),
        breaker: Some(BreakerConfig {
            window: 16,
            min_samples: 8,
            error_threshold: 0.6,
            cooldown: Duration::from_millis(5),
            probes: 2,
        }),
        ..Default::default()
    };
    let result = crawl(&host, &cfg).unwrap();
    assert!(
        result.report.breaker_trips > 0,
        "90% failure must trip the breaker"
    );
    assert!(result.report.breaker_open_time > Duration::ZERO);
    result.dataset.validate().unwrap();
    // The breaker only delays fetches; with a fresh identical host and no
    // breaker, the dataset must come out the same.
    let plain_host = SimulatedHost::with_faults(
        world(7),
        HostConfig {
            failure_rate: 0.9,
            ..Default::default()
        },
        FaultPlan {
            seed: 77,
            ..Default::default()
        },
    )
    .unwrap();
    let plain = crawl(
        &plain_host,
        &CrawlConfig {
            retries: 12,
            backoff: BackoffPolicy::none(),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        result.dataset, plain.dataset,
        "breaker must not change crawl content"
    );
}

#[test]
fn tarpits_are_cut_by_the_fetch_deadline() {
    let truth = world(8);
    let host = SimulatedHost::with_faults(
        truth,
        HostConfig {
            failure_rate: 0.8,
            ..Default::default()
        },
        FaultPlan {
            seed: 88,
            tarpit_rate: 0.8,
            tarpit_latency: Duration::from_millis(15),
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = CrawlConfig {
        retries: 50,
        backoff: BackoffPolicy::none(),
        fetch_deadline: Some(Duration::from_millis(30)),
        threads: 8,
        ..Default::default()
    };
    let start = Instant::now();
    let result = crawl(&host, &cfg).unwrap();
    // Without the deadline, 30 spaces * ~40 tarpitted retries * 15 ms would
    // run for minutes; the deadline caps each space near 30 ms + overshoot.
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "deadline failed to cut tarpits"
    );
    assert_eq!(
        result.report.spaces_fetched + result.report.spaces_failed,
        host.space_count()
    );
    result.dataset.validate().unwrap();
}

#[test]
fn time_budget_terminates_a_hostile_crawl() {
    let truth = world(9);
    let host = SimulatedHost::with_faults(
        truth,
        HostConfig {
            failure_rate: 0.5,
            latency: Duration::from_millis(5),
        },
        FaultPlan {
            seed: 99,
            throttle_rate: 0.2,
            tarpit_rate: 0.5,
            tarpit_latency: Duration::from_millis(10),
            burst: Some(BurstOutage {
                period: 30,
                down: 10,
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = CrawlConfig {
        retries: 100,
        backoff: BackoffPolicy::none(),
        threads: 2,
        time_budget: Some(Duration::from_millis(60)),
        ..Default::default()
    };
    let start = Instant::now();
    let result = crawl(&host, &cfg).unwrap();
    assert!(
        result.report.budget_exhausted,
        "crawl should have hit the time budget"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "budget exceeded without terminating"
    );
    result.dataset.validate().unwrap();
}

#[test]
fn checkpoint_resume_equals_uninterrupted_crawl() {
    let truth = world(10);
    let plan = FaultPlan {
        seed: 1010,
        throttle_rate: 0.15,
        corrupt_rate: 0.1,
        mangled_spaces: [3usize].into_iter().collect(),
        ..Default::default()
    };
    let host_cfg = HostConfig {
        failure_rate: 0.25,
        latency: Duration::from_millis(2),
    };
    let fresh_host = || SimulatedHost::with_faults(truth.clone(), host_cfg, plan.clone()).unwrap();
    let base = CrawlConfig {
        seeds: vec![0],
        retries: 8,
        backoff: BackoffPolicy::none(),
        threads: 2,
        ..Default::default()
    };

    let reference = crawl(&fresh_host(), &base).unwrap();

    // Crash loop: every run gets a small time budget, checkpoints at layer
    // boundaries, and the next run resumes from disk. The budget grows a
    // little each cycle so the loop provably converges even if one layer is
    // slow; early cycles still get cut off mid-crawl.
    let dir = tmpdir("resume_identity");
    let mut final_run = None;
    for cycle in 0..200u64 {
        let cfg = CrawlConfig {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            time_budget: Some(Duration::from_millis(10 + 3 * cycle)),
            ..base.clone()
        };
        let run = crawl(&fresh_host(), &cfg).unwrap();
        if !run.report.budget_exhausted {
            final_run = Some(run);
            break;
        }
    }
    let final_run = final_run.expect("crawl never completed within 200 resume cycles");

    assert_eq!(
        final_run.dataset, reference.dataset,
        "resumed crawl must equal uninterrupted"
    );
    assert_eq!(final_run.space_of, reference.space_of);
    assert_eq!(final_run.stub_start, reference.stub_start);
    assert_eq!(
        final_run.report.rejected_pages,
        reference.report.rejected_pages
    );
    assert_eq!(
        final_run.report.spaces_fetched,
        reference.report.spaces_fetched
    );
    assert_eq!(
        final_run.report.depth_reached,
        reference.report.depth_reached
    );
    final_run.dataset.validate().unwrap();
}

#[test]
fn radius_stepped_resume_equals_direct_crawl() {
    // Deterministic (timing-free) resume identity: grow the crawl one
    // radius at a time through checkpoints and compare against crawling at
    // the final radius directly.
    let truth = world(14);
    let plan = FaultPlan {
        seed: 1414,
        throttle_rate: 0.2,
        ..Default::default()
    };
    let fresh_host =
        || SimulatedHost::with_faults(truth.clone(), HostConfig::default(), plan.clone()).unwrap();
    let base = CrawlConfig {
        seeds: vec![0],
        retries: 6,
        backoff: BackoffPolicy::none(),
        ..Default::default()
    };

    let reference = crawl(
        &fresh_host(),
        &CrawlConfig {
            radius: Some(3),
            ..base.clone()
        },
    )
    .unwrap();

    let dir = tmpdir("radius_stepped");
    let mut stepped = None;
    for r in 0..=3 {
        let cfg = CrawlConfig {
            radius: Some(r),
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..base.clone()
        };
        stepped = Some(crawl(&fresh_host(), &cfg).unwrap());
    }
    let stepped = stepped.unwrap();
    assert!(stepped.report.resumed_from_checkpoint);
    assert_eq!(stepped.dataset, reference.dataset);
    assert_eq!(stepped.space_of, reference.space_of);
    assert_eq!(stepped.report.depth_reached, reference.report.depth_reached);
    assert_eq!(stepped.report.layer_sizes, reference.report.layer_sizes);
    stepped.dataset.validate().unwrap();
}

#[test]
fn resume_of_a_completed_crawl_is_a_noop_with_identical_output() {
    let truth = world(11);
    let dir = tmpdir("resume_complete");
    let cfg = CrawlConfig {
        checkpoint_dir: Some(dir.clone()),
        resume: true,
        ..Default::default()
    };
    let first = crawl(&SimulatedHost::new(truth.clone()), &cfg).unwrap();
    assert!(!first.report.resumed_from_checkpoint);
    assert!(first.report.checkpoints_written > 0);

    let host = SimulatedHost::new(truth);
    let again = crawl(&host, &cfg).unwrap();
    assert!(again.report.resumed_from_checkpoint);
    assert_eq!(
        host.attempts(),
        0,
        "completed crawl must not refetch anything"
    );
    assert_eq!(again.dataset, first.dataset);
    assert_eq!(again.report.depth_reached, first.report.depth_reached);
    assert_eq!(again.report.layer_sizes, first.report.layer_sizes);
}

#[test]
fn everything_at_once_still_yields_a_valid_dataset() {
    // The kitchen sink: all five fault modes, breaker, deadline, budget,
    // checkpointing — the pipeline must end in a validated dataset.
    let truth = world(12);
    let host = SimulatedHost::with_faults(
        truth,
        HostConfig {
            failure_rate: 0.3,
            ..Default::default()
        },
        FaultPlan {
            seed: 1212,
            throttle_rate: 0.15,
            corrupt_rate: 0.1,
            chronic_flaky: [(1usize, 0.8f64)].into_iter().collect(),
            mangled_spaces: [2usize, 6].into_iter().collect(),
            burst: Some(BurstOutage {
                period: 40,
                down: 6,
            }),
            tarpit_rate: 0.05,
            tarpit_latency: Duration::from_millis(3),
        },
    )
    .unwrap();
    let cfg = CrawlConfig {
        retries: 10,
        backoff: BackoffPolicy {
            initial: Duration::from_micros(200),
            ..Default::default()
        },
        fetch_deadline: Some(Duration::from_millis(200)),
        time_budget: Some(Duration::from_secs(30)),
        breaker: Some(BreakerConfig::default()),
        checkpoint_dir: Some(tmpdir("kitchen_sink")),
        ..Default::default()
    };
    let result = crawl(&host, &cfg).unwrap();
    assert!(result.report.spaces_fetched > 0);
    assert_eq!(result.report.rejected_pages.len(), 2);
    assert!(result.report.checkpoints_written > 0);
    result.dataset.validate().unwrap();
}
