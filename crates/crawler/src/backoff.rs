//! Retry backoff: exponential growth with deterministic jitter.
//!
//! The seed engine retried failed fetches immediately, which hammers a host
//! that is already struggling — the classic retry storm. This policy spaces
//! attempts out exponentially and adds jitter so a worker pool that failed
//! together does not retry in lockstep. The jitter is *deterministic* in
//! `(space_id, attempt)`: crawls stay reproducible for a given
//! configuration, which the schedule-independence tests rely on.

use crate::config::ConfigError;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Delay schedule between retry attempts on one space.
#[derive(Clone, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (attempt 1).
    pub initial: Duration,
    /// Upper bound any single delay is clamped to.
    pub max: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Jitter fraction in [0, 1]: each delay is scaled by a deterministic
    /// factor drawn from `[1 - jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // Small absolute values: the simulated hosts answer in microseconds,
        // and tests crawl thousands of spaces. Against a real host these
        // would be hundreds of milliseconds; the *shape* is what matters.
        BackoffPolicy {
            initial: Duration::from_micros(500),
            max: Duration::from_millis(50),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }
}

impl BackoffPolicy {
    /// A policy that never sleeps — for tests that only care about retry
    /// counting, not pacing.
    pub fn none() -> Self {
        BackoffPolicy {
            initial: Duration::ZERO,
            max: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
        }
    }

    /// Checks the policy's numeric sanity.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.multiplier >= 1.0 && self.multiplier.is_finite()) {
            return Err(ConfigError::BadBackoff(format!(
                "multiplier must be >= 1 and finite, got {}",
                self.multiplier
            )));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(ConfigError::BadBackoff(format!(
                "jitter must be in [0, 1], got {}",
                self.jitter
            )));
        }
        if self.max < self.initial {
            return Err(ConfigError::BadBackoff(format!(
                "max ({:?}) must be >= initial ({:?})",
                self.max, self.initial
            )));
        }
        Ok(())
    }

    /// The delay to sleep before retry number `attempt` (1-based) of
    /// `space`. Attempt 0 — the first try — never waits.
    pub fn delay(&self, space: usize, attempt: usize) -> Duration {
        if attempt == 0 || self.initial.is_zero() {
            return Duration::ZERO;
        }
        let grown = self.initial.as_secs_f64() * self.multiplier.powi(attempt as i32 - 1);
        let base = grown.min(self.max.as_secs_f64());
        // Deterministic jitter from (space, attempt): same crawl config →
        // same delays, but distinct spaces desynchronise.
        let mut h = DefaultHasher::new();
        (space as u64).hash(&mut h);
        (attempt as u64).hash(&mut h);
        let unit = h.finish() as f64 / u64::MAX as f64; // [0, 1]
        let scale = 1.0 + self.jitter * (unit - 0.5);
        Duration::from_secs_f64(base * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_is_immediate() {
        assert_eq!(BackoffPolicy::default().delay(3, 0), Duration::ZERO);
    }

    #[test]
    fn delays_grow_then_cap() {
        let p = BackoffPolicy {
            initial: Duration::from_millis(1),
            max: Duration::from_millis(8),
            multiplier: 2.0,
            jitter: 0.0,
        };
        let d: Vec<Duration> = (1..6).map(|a| p.delay(0, a)).collect();
        assert_eq!(d[0], Duration::from_millis(1));
        assert_eq!(d[1], Duration::from_millis(2));
        assert_eq!(d[2], Duration::from_millis(4));
        assert_eq!(d[3], Duration::from_millis(8));
        assert_eq!(d[4], Duration::from_millis(8), "capped at max");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = BackoffPolicy {
            initial: Duration::from_millis(10),
            max: Duration::from_secs(1),
            multiplier: 1.0,
            jitter: 0.5,
        };
        for space in 0..50 {
            let a = p.delay(space, 1);
            let b = p.delay(space, 1);
            assert_eq!(a, b, "same (space, attempt) must give the same delay");
            let ms = a.as_secs_f64() * 1000.0;
            assert!(
                (7.5..=12.5).contains(&ms),
                "jittered delay {ms}ms out of band"
            );
        }
        // Different spaces should not all share a delay (desynchronisation).
        let distinct: std::collections::BTreeSet<Duration> =
            (0..50).map(|s| p.delay(s, 1)).collect();
        assert!(
            distinct.len() > 10,
            "jitter should spread delays, got {distinct:?}"
        );
    }

    #[test]
    fn none_policy_never_sleeps() {
        let p = BackoffPolicy::none();
        p.validate().unwrap();
        for attempt in 0..10 {
            assert_eq!(p.delay(1, attempt), Duration::ZERO);
        }
    }

    #[test]
    fn invalid_policies_rejected() {
        let bad_mult = BackoffPolicy {
            multiplier: 0.5,
            ..Default::default()
        };
        assert!(bad_mult.validate().is_err());
        let bad_jitter = BackoffPolicy {
            jitter: 2.0,
            ..Default::default()
        };
        assert!(bad_jitter.validate().is_err());
        let bad_cap = BackoffPolicy {
            initial: Duration::from_secs(1),
            max: Duration::from_millis(1),
            ..Default::default()
        };
        assert!(bad_cap.validate().is_err());
    }
}
