//! A [`BlogHost`] backed by an on-disk XML archive — the paper's offline
//! mode ("a user can load the blogger data set that is crawled offline",
//! Section IV).
//!
//! [`save_archive`] writes one XML file per space into a directory;
//! [`XmlArchiveHost`] serves `fetch_space` from those files, parsing
//! lazily, so a crawl can be replayed (or re-crawled with different seeds
//! and radii) without the original host. The per-space schema:
//!
//! ```xml
//! <space id="7" name="blogger_0007">
//!   <profile>…</profile>
//!   <friends><friend ref="12"/></friends>
//!   <post gid="41" domain="3">
//!     <title>…</title><text>…</text>
//!     <links><link ref="40"/></links>
//!     <comments><comment commenter="9">…</comment></comments>
//!   </post>
//! </space>
//! ```

use crate::host::{BlogHost, FetchError, PostView, SpacePage};
use mass_xml::{Element, XmlWriter};
use std::path::{Path, PathBuf};

/// Serialises one space page to XML.
pub fn space_to_xml(page: &SpacePage) -> String {
    let mut w = XmlWriter::new();
    w.declaration();
    w.open_with_attrs(
        "space",
        &[("id", &page.space_id.to_string()), ("name", &page.name)],
    );
    if !page.profile.is_empty() {
        w.text_element("profile", &page.profile);
    }
    if !page.friends.is_empty() {
        w.open("friends");
        for f in &page.friends {
            w.leaf_with_attrs("friend", &[("ref", &f.to_string())]);
        }
        w.close();
    }
    for post in &page.posts {
        let gid = post.global_id.to_string();
        let mut attrs = vec![("gid", gid.as_str())];
        let domain = post.domain_hint.map(|d| d.to_string());
        if let Some(ref d) = domain {
            attrs.push(("domain", d.as_str()));
        }
        w.open_with_attrs("post", &attrs);
        w.text_element("title", &post.title);
        w.text_element("text", &post.text);
        if !post.links_to.is_empty() {
            w.open("links");
            for l in &post.links_to {
                w.leaf_with_attrs("link", &[("ref", &l.to_string())]);
            }
            w.close();
        }
        if !post.comments.is_empty() {
            w.open("comments");
            for (commenter, text) in &post.comments {
                w.text_element_with_attrs(
                    "comment",
                    &[("commenter", &commenter.to_string())],
                    text,
                );
            }
            w.close();
        }
        w.close();
    }
    w.close();
    w.finish()
}

/// Parses a space page saved by [`space_to_xml`].
pub fn space_from_xml(xml: &str) -> mass_xml::Result<SpacePage> {
    let root = Element::parse(xml)?;
    if root.name != "space" {
        return Err(mass_xml::Error::Schema(format!(
            "expected <space>, found <{}>",
            root.name
        )));
    }
    let mut page = SpacePage {
        space_id: root.require_usize("id")?,
        name: root.require_attr("name")?.to_string(),
        profile: root.child("profile").map(|p| p.text()).unwrap_or_default(),
        friends: Vec::new(),
        posts: Vec::new(),
    };
    if let Some(friends) = root.child("friends") {
        for f in friends.elements_named("friend") {
            page.friends.push(f.require_usize("ref")?);
        }
    }
    for post in root.elements_named("post") {
        let mut view = PostView {
            global_id: post.require_usize("gid")?,
            title: post.child("title").map(|t| t.text()).unwrap_or_default(),
            text: post.child("text").map(|t| t.text()).unwrap_or_default(),
            links_to: Vec::new(),
            comments: Vec::new(),
            domain_hint: None,
        };
        if let Some(d) = post.attr("domain") {
            view.domain_hint = Some(
                d.parse()
                    .map_err(|_| mass_xml::Error::Schema(format!("non-integer domain {d:?}")))?,
            );
        }
        if let Some(links) = post.child("links") {
            for l in links.elements_named("link") {
                view.links_to.push(l.require_usize("ref")?);
            }
        }
        if let Some(comments) = post.child("comments") {
            for c in comments.elements_named("comment") {
                view.comments
                    .push((c.require_usize("commenter")?, c.text()));
            }
        }
        page.posts.push(view);
    }
    Ok(page)
}

fn space_file(dir: &Path, space_id: usize) -> PathBuf {
    dir.join(format!("space_{space_id:06}.xml"))
}

/// Writes an archive directory, one file per space. Existing files for the
/// same space ids are overwritten.
pub fn save_archive(dir: impl AsRef<Path>, pages: &[SpacePage]) -> mass_xml::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for page in pages {
        std::fs::write(space_file(dir, page.space_id), space_to_xml(page))?;
    }
    Ok(())
}

/// Saves a full host's contents as an archive (fetches every space).
pub fn archive_host(dir: impl AsRef<Path>, host: &dyn BlogHost) -> mass_xml::Result<usize> {
    let mut pages = Vec::new();
    for space in 0..host.space_count() {
        match host.fetch_space(space) {
            Ok(p) => pages.push(p),
            Err(FetchError::NotFound(_)) => {}
            Err(_) => {
                // Transient/throttled/corrupt: one retry is enough for
                // archiving purposes.
                if let Ok(p) = host.fetch_space(space) {
                    pages.push(p);
                }
            }
        }
    }
    let n = pages.len();
    save_archive(dir, &pages)?;
    Ok(n)
}

/// A blog host serving spaces from an XML archive directory.
///
/// Space ids are read from the file names at construction; pages parse
/// lazily per fetch (a real archive replayer does not hold 40 000 posts in
/// memory up front).
#[derive(Debug)]
pub struct XmlArchiveHost {
    dir: PathBuf,
    /// Dense upper bound on space ids present (files may be sparse).
    max_id_plus_one: usize,
}

impl XmlArchiveHost {
    /// Opens an archive directory.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let mut max_id_plus_one = 0;
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("space_")
                .and_then(|s| s.strip_suffix(".xml"))
                .and_then(|s| s.parse::<usize>().ok())
            {
                max_id_plus_one = max_id_plus_one.max(id + 1);
            }
        }
        Ok(XmlArchiveHost {
            dir,
            max_id_plus_one,
        })
    }
}

impl BlogHost for XmlArchiveHost {
    fn fetch_space(&self, space_id: usize) -> Result<SpacePage, FetchError> {
        let path = space_file(&self.dir, space_id);
        let xml = std::fs::read_to_string(&path).map_err(|_| FetchError::NotFound(space_id))?;
        // A malformed file is a payload that arrived but failed integrity
        // checks — exactly what Corrupt models; retry/skip logic applies.
        space_from_xml(&xml).map_err(|_| FetchError::Corrupt(space_id))
    }

    fn space_count(&self) -> usize {
        self.max_id_plus_one
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrawlConfig;
    use crate::engine::crawl;
    use crate::host::SimulatedHost;
    use mass_synth::{generate, SynthConfig};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mass_xml_host").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_page() -> SpacePage {
        SpacePage {
            space_id: 7,
            name: "Amery & Co".into(),
            profile: "cs <blogger>".into(),
            friends: vec![1, 2],
            posts: vec![PostView {
                global_id: 41,
                title: "Post1".into(),
                text: "programming \"skills\"".into(),
                links_to: vec![40],
                comments: vec![(9, "agree".into()), (2, "hm & hm".into())],
                domain_hint: Some(1),
            }],
        }
    }

    #[test]
    fn space_xml_roundtrip() {
        let page = sample_page();
        let back = space_from_xml(&space_to_xml(&page)).unwrap();
        assert_eq!(page, back);
    }

    #[test]
    fn minimal_space_roundtrip() {
        let page = SpacePage {
            space_id: 0,
            name: "x".into(),
            profile: String::new(),
            friends: vec![],
            posts: vec![],
        };
        assert_eq!(space_from_xml(&space_to_xml(&page)).unwrap(), page);
    }

    #[test]
    fn malformed_space_xml_rejected() {
        assert!(space_from_xml("<wrong/>").is_err());
        assert!(space_from_xml("<space id=\"x\" name=\"a\"/>").is_err());
        assert!(space_from_xml("not xml").is_err());
    }

    #[test]
    fn archive_then_recrawl_equals_original() {
        let world = generate(&SynthConfig::tiny(21));
        let live = SimulatedHost::new(world.dataset.clone());
        let dir = tmpdir("recrawl");
        let archived = archive_host(&dir, &live).unwrap();
        assert_eq!(archived, live.space_count());

        let replay = XmlArchiveHost::open(&dir).unwrap();
        assert_eq!(replay.space_count(), live.space_count());
        let from_live = crawl(&live, &CrawlConfig::default()).unwrap();
        let from_archive = crawl(&replay, &CrawlConfig::default()).unwrap();
        // Sentiment tags don't survive the page format (hosts expose text
        // only), so the assembled datasets match exactly.
        assert_eq!(from_live.dataset, from_archive.dataset);
    }

    #[test]
    fn archive_supports_seeded_radius_crawls() {
        let world = generate(&SynthConfig::tiny(22));
        let dir = tmpdir("radius");
        archive_host(&dir, &SimulatedHost::new(world.dataset)).unwrap();
        let replay = XmlArchiveHost::open(&dir).unwrap();
        let result = crawl(
            &replay,
            &CrawlConfig {
                seeds: vec![0],
                radius: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.report.spaces_fetched >= 1);
        result.dataset.validate().unwrap();
    }

    #[test]
    fn missing_space_is_not_found() {
        let dir = tmpdir("missing");
        save_archive(&dir, &[sample_page()]).unwrap();
        let host = XmlArchiveHost::open(&dir).unwrap();
        assert_eq!(host.space_count(), 8); // max id 7 → bound 8
        assert!(host.fetch_space(7).is_ok());
        assert_eq!(host.fetch_space(3), Err(FetchError::NotFound(3)));
    }

    #[test]
    fn corrupted_file_is_a_corrupt_fetch() {
        let dir = tmpdir("corrupt");
        save_archive(&dir, &[sample_page()]).unwrap();
        std::fs::write(dir.join("space_000007.xml"), "<space truncated").unwrap();
        let host = XmlArchiveHost::open(&dir).unwrap();
        assert_eq!(host.fetch_space(7), Err(FetchError::Corrupt(7)));
    }

    #[test]
    fn empty_archive_has_zero_spaces() {
        let dir = tmpdir("empty");
        let host = XmlArchiveHost::open(&dir).unwrap();
        assert_eq!(host.space_count(), 0);
    }
}
