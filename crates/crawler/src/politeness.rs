//! Crawl politeness: a token-bucket rate limiter shared by the workers.
//!
//! The paper's crawler hit a production service (MSN Spaces); a crawler
//! that is "multi-thread … efficient" and survives contact with a real host
//! needs a global request-rate cap. The limiter is shared across the worker
//! pool, so total host pressure is bounded regardless of thread count.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A token bucket: `rate` requests per second with a burst allowance.
#[derive(Debug)]
pub struct RateLimiter {
    state: Mutex<BucketState>,
    /// Tokens added per second.
    rate: f64,
    /// Maximum tokens the bucket holds.
    burst: f64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl RateLimiter {
    /// Creates a limiter allowing `rate` requests/second with a burst of
    /// `burst` immediate requests.
    ///
    /// # Panics
    /// Panics unless both are positive and finite.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive, got {rate}"
        );
        assert!(
            burst >= 1.0 && burst.is_finite(),
            "burst must be at least 1, got {burst}"
        );
        RateLimiter {
            state: Mutex::new(BucketState {
                tokens: burst,
                last_refill: Instant::now(),
            }),
            rate,
            burst,
        }
    }

    /// Blocks until a token is available, then consumes it.
    pub fn acquire(&self) {
        loop {
            let wait = {
                let mut s = self.state.lock().expect("rate limiter poisoned");
                let now = Instant::now();
                let elapsed = now.duration_since(s.last_refill).as_secs_f64();
                s.tokens = (s.tokens + elapsed * self.rate).min(self.burst);
                s.last_refill = now;
                if s.tokens >= 1.0 {
                    s.tokens -= 1.0;
                    return;
                }
                // Time until one full token accrues.
                Duration::from_secs_f64((1.0 - s.tokens) / self.rate)
            };
            std::thread::sleep(wait.min(Duration::from_millis(20)));
        }
    }

    /// Non-blocking acquire; true when a token was consumed.
    pub fn try_acquire(&self) -> bool {
        let mut s = self.state.lock().expect("rate limiter poisoned");
        let now = Instant::now();
        let elapsed = now.duration_since(s.last_refill).as_secs_f64();
        s.tokens = (s.tokens + elapsed * self.rate).min(self.burst);
        s.last_refill = now;
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn burst_is_immediate() {
        let rl = RateLimiter::new(10.0, 5.0);
        let start = Instant::now();
        for _ in 0..5 {
            rl.acquire();
        }
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "burst should not block"
        );
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let rl = RateLimiter::new(100.0, 1.0);
        let start = Instant::now();
        for _ in 0..21 {
            rl.acquire();
        }
        // 20 post-burst tokens at 100/s ≈ 200 ms minimum.
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(150),
            "too fast: {elapsed:?}"
        );
        assert!(elapsed < Duration::from_secs(2), "too slow: {elapsed:?}");
    }

    #[test]
    fn try_acquire_fails_when_drained() {
        let rl = RateLimiter::new(0.5, 1.0);
        assert!(rl.try_acquire());
        assert!(!rl.try_acquire(), "bucket should be empty");
    }

    #[test]
    fn shared_across_threads_bounds_total_rate() {
        let rl = Arc::new(RateLimiter::new(200.0, 1.0));
        let start = Instant::now();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rl = Arc::clone(&rl);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    rl.acquire();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 40 requests minus burst at 200/s ≈ 195 ms minimum.
        assert!(start.elapsed() >= Duration::from_millis(120));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RateLimiter::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "burst")]
    fn zero_burst_rejected() {
        let _ = RateLimiter::new(1.0, 0.0);
    }

    #[test]
    fn burst_exhaustion_then_refill() {
        // Drain the whole burst, verify the bucket is empty, then wait for
        // a refill and verify exactly the accrued tokens come back.
        let rl = RateLimiter::new(50.0, 3.0);
        for _ in 0..3 {
            assert!(rl.try_acquire());
        }
        assert!(!rl.try_acquire(), "burst must be exhausted");
        std::thread::sleep(Duration::from_millis(50)); // ~2.5 tokens accrue
        assert!(rl.try_acquire());
        assert!(rl.try_acquire());
        // A third token would need the full 60 ms; immediately after two
        // draws the bucket must be below 1 again.
        assert!(!rl.try_acquire(), "refill must not exceed elapsed * rate");
    }

    #[test]
    fn refill_never_exceeds_burst_capacity() {
        let rl = RateLimiter::new(1000.0, 2.0);
        assert!(rl.try_acquire());
        assert!(rl.try_acquire());
        // Plenty of time to refill far beyond the cap.
        std::thread::sleep(Duration::from_millis(30));
        assert!(rl.try_acquire());
        assert!(rl.try_acquire());
        assert!(!rl.try_acquire(), "bucket must clamp at burst=2");
    }

    #[test]
    fn sub_one_rates_are_honoured() {
        // Rates below 1 req/s must still work: one immediate burst token,
        // then a wait proportional to 1/rate.
        let rl = RateLimiter::new(0.5, 1.0); // one request per 2 s
        assert!(rl.try_acquire());
        assert!(!rl.try_acquire());
        std::thread::sleep(Duration::from_millis(120));
        assert!(
            !rl.try_acquire(),
            "120 ms is far short of the 2 s a token needs"
        );

        // Blocking acquire at a faster sub-1-ish boundary: 10/s after a
        // 1-token burst means the second acquire waits ~100 ms.
        let rl = RateLimiter::new(10.0, 1.0);
        let start = Instant::now();
        rl.acquire();
        rl.acquire();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(70),
            "too fast: {elapsed:?}"
        );
    }

    #[test]
    fn concurrent_acquire_is_fair_enough() {
        // Four threads share one limiter; every thread must make progress
        // (no starvation) and the total rate stays bounded.
        let rl = Arc::new(RateLimiter::new(400.0, 1.0));
        let counts: Vec<_> = (0..4)
            .map(|_| Arc::new(std::sync::atomic::AtomicUsize::new(0)))
            .collect();
        let deadline = Instant::now() + Duration::from_millis(250);
        let mut handles = Vec::new();
        for count in &counts {
            let rl = Arc::clone(&rl);
            let count = Arc::clone(count);
            handles.push(std::thread::spawn(move || {
                while Instant::now() < deadline {
                    rl.acquire();
                    count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let got: Vec<usize> = counts
            .iter()
            .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
            .collect();
        let total: usize = got.iter().sum();
        // 250 ms at 400/s ≈ 100 tokens (+1 burst); allow generous slack.
        assert!(total <= 140, "total {total} exceeds the rate cap");
        for (i, &n) in got.iter().enumerate() {
            assert!(n > 0, "thread {i} starved: counts {got:?}");
        }
        let max = *got.iter().max().unwrap();
        let min = *got.iter().min().unwrap();
        assert!(max <= min * 8 + 8, "grossly unfair split: {got:?}");
    }
}
