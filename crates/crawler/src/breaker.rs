//! Circuit breaker over transient host errors.
//!
//! When a host starts failing most requests, retrying every space at full
//! speed just burns the politeness budget and prolongs the outage. The
//! breaker watches a sliding window of fetch outcomes shared by all workers;
//! when the transient-error rate crosses a threshold it *opens* — workers
//! pause instead of fetching — then *half-opens* to let a few probes through,
//! and closes again once probes succeed. Crucially, `acquire` only ever
//! delays a worker; it never consumes a retry or fails a fetch, so the
//! resulting dataset is identical with the breaker on or off — only the
//! timing changes.

use crate::config::ConfigError;
use mass_obs::field;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Thresholds for [`CircuitBreaker`].
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Outcomes remembered in the sliding window.
    pub window: usize,
    /// Minimum outcomes observed before the breaker may trip.
    pub min_samples: usize,
    /// Transient-error fraction in the window that trips the breaker.
    pub error_threshold: f64,
    /// How long the breaker stays open before half-opening.
    pub cooldown: Duration,
    /// Probes admitted in the half-open state; if all succeed the breaker
    /// closes, and any failure re-opens it.
    pub probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // Cooldown is short because the simulated hosts recover in
        // milliseconds; a production deployment would use seconds.
        BreakerConfig {
            window: 32,
            min_samples: 8,
            error_threshold: 0.5,
            cooldown: Duration::from_millis(20),
            probes: 3,
        }
    }
}

impl BreakerConfig {
    /// Checks threshold sanity.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window == 0 {
            return Err(ConfigError::BadBreaker("window must be positive".into()));
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(ConfigError::BadBreaker(format!(
                "min_samples must be in 1..=window ({}), got {}",
                self.window, self.min_samples
            )));
        }
        if !(self.error_threshold > 0.0 && self.error_threshold <= 1.0) {
            return Err(ConfigError::BadBreaker(format!(
                "error_threshold must be in (0, 1], got {}",
                self.error_threshold
            )));
        }
        if self.probes == 0 {
            return Err(ConfigError::BadBreaker("probes must be positive".into()));
        }
        Ok(())
    }
}

#[derive(Debug)]
enum State {
    Closed,
    Open { until: Instant },
    HalfOpen { in_flight: usize, succeeded: usize },
}

#[derive(Debug)]
struct Inner {
    state: State,
    window: VecDeque<bool>,
    trips: usize,
    open_since: Option<Instant>,
    open_total: Duration,
}

/// Shared crawl-wide breaker; see the module docs for the state machine.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Creates a closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: State::Closed,
                window: VecDeque::new(),
                trips: 0,
                open_since: None,
                open_total: Duration::ZERO,
            }),
        }
    }

    /// Blocks while the breaker is open, returning once this worker is
    /// allowed to fetch (either the breaker is closed, or it is half-open
    /// and this worker claimed a probe slot). Purely a delay: the caller's
    /// retry budget is untouched.
    pub fn acquire(&self) {
        loop {
            let wait = {
                let mut inner = self.inner.lock().expect("breaker poisoned");
                match inner.state {
                    State::Closed => return,
                    State::Open { until } => {
                        let now = Instant::now();
                        if now >= until {
                            self.leave_open(&mut inner);
                            inner.state = State::HalfOpen {
                                in_flight: 0,
                                succeeded: 0,
                            };
                            continue;
                        }
                        until - now
                    }
                    State::HalfOpen {
                        ref mut in_flight, ..
                    } => {
                        if *in_flight < self.cfg.probes {
                            *in_flight += 1;
                            return;
                        }
                        // All probe slots taken; wait for their verdicts.
                        Duration::from_millis(1)
                    }
                }
            };
            std::thread::sleep(wait.min(Duration::from_millis(20)));
        }
    }

    /// Reports a fetch outcome. Only transient errors count against the
    /// window; hard outcomes (`NotFound`, corrupt payloads) are the host
    /// answering fine, so callers report them as successes.
    pub fn record(&self, success: bool) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            State::Closed => {
                inner.window.push_back(success);
                while inner.window.len() > self.cfg.window {
                    inner.window.pop_front();
                }
                if inner.window.len() >= self.cfg.min_samples {
                    let errors = inner.window.iter().filter(|ok| !**ok).count();
                    let rate = errors as f64 / inner.window.len() as f64;
                    if rate >= self.cfg.error_threshold {
                        self.trip(&mut inner);
                    }
                }
            }
            State::HalfOpen {
                in_flight,
                succeeded,
            } => {
                if success {
                    let succeeded = succeeded + 1;
                    if succeeded >= self.cfg.probes {
                        // Probes all passed: host looks healthy again.
                        inner.state = State::Closed;
                        inner.window.clear();
                        mass_obs::info("breaker.close", &[field("probes", self.cfg.probes)]);
                    } else {
                        inner.state = State::HalfOpen {
                            in_flight: in_flight.saturating_sub(1),
                            succeeded,
                        };
                    }
                } else {
                    // A probe failed while recovering: back to open.
                    self.trip(&mut inner);
                }
            }
            // Outcomes from fetches that started before the trip; the
            // cooldown timer is the authority now.
            State::Open { .. } => {}
        }
    }

    fn trip(&self, inner: &mut Inner) {
        let now = Instant::now();
        inner.state = State::Open {
            until: now + self.cfg.cooldown,
        };
        inner.window.clear();
        inner.trips += 1;
        inner.open_since = Some(now);
        mass_obs::counter("breaker.trips").inc();
        mass_obs::warn(
            "breaker.open",
            &[
                field("trips", inner.trips),
                field("cooldown_ms", self.cfg.cooldown.as_millis() as u64),
            ],
        );
    }

    fn leave_open(&self, inner: &mut Inner) {
        if let Some(since) = inner.open_since.take() {
            inner.open_total += since.elapsed();
        }
    }

    /// Times the breaker tripped so far.
    pub fn trips(&self) -> usize {
        self.inner.lock().expect("breaker poisoned").trips
    }

    /// Total wall-clock time spent in the open state so far.
    pub fn open_time(&self) -> Duration {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        let mut total = inner.open_total;
        if let Some(since) = inner.open_since {
            total += since.elapsed();
            // Fold the elapsed slice in so it is not double counted later.
            inner.open_total = total;
            inner.open_since = Some(Instant::now());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn quick_cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            error_threshold: 0.5,
            cooldown: Duration::from_millis(10),
            probes: 2,
        }
    }

    #[test]
    fn stays_closed_on_success() {
        let b = CircuitBreaker::new(quick_cfg());
        for _ in 0..50 {
            b.acquire();
            b.record(true);
        }
        assert_eq!(b.trips(), 0);
        assert_eq!(b.open_time(), Duration::ZERO);
    }

    #[test]
    fn trips_on_error_burst_then_recovers() {
        let b = CircuitBreaker::new(quick_cfg());
        for _ in 0..4 {
            b.record(false);
        }
        assert_eq!(b.trips(), 1, "4/4 errors should trip");
        // acquire() must block through the cooldown, then admit a probe.
        let start = Instant::now();
        b.acquire();
        assert!(
            start.elapsed() >= Duration::from_millis(8),
            "should wait out cooldown"
        );
        b.record(true);
        b.acquire();
        b.record(true);
        // Both probes passed; breaker is closed and acquire is instant.
        let start = Instant::now();
        b.acquire();
        assert!(start.elapsed() < Duration::from_millis(5));
        assert_eq!(b.trips(), 1);
        assert!(b.open_time() >= Duration::from_millis(8));
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(quick_cfg());
        for _ in 0..4 {
            b.record(false);
        }
        b.acquire(); // waits out cooldown, claims probe slot
        b.record(false); // probe fails
        assert_eq!(b.trips(), 2, "failed probe should re-trip");
    }

    #[test]
    fn below_min_samples_never_trips() {
        let cfg = BreakerConfig {
            min_samples: 6,
            ..quick_cfg()
        };
        let b = CircuitBreaker::new(cfg);
        for _ in 0..5 {
            b.record(false);
        }
        assert_eq!(b.trips(), 0, "5 < min_samples=6 must not trip");
    }

    #[test]
    fn mixed_outcomes_below_threshold_stay_closed() {
        let b = CircuitBreaker::new(quick_cfg());
        for i in 0..100 {
            b.record(i % 4 != 0); // one error in four < 0.5 threshold
        }
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn concurrent_workers_all_unblock() {
        let b = Arc::new(CircuitBreaker::new(quick_cfg()));
        for _ in 0..4 {
            b.record(false);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                b.acquire();
                b.record(true);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(BreakerConfig {
            window: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            min_samples: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            min_samples: 99,
            window: 8,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            error_threshold: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            error_threshold: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            probes: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        BreakerConfig::default().validate().unwrap();
    }
}
