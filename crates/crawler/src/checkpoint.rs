//! Crawl checkpointing: periodic durable snapshots of BFS progress.
//!
//! A checkpoint directory holds
//!
//! * `pages/` — one XML file per successfully fetched space, in the same
//!   per-space schema the offline archive uses ([`crate::xml_host`]);
//! * `checkpoint.xml` — the manifest: visited set, current frontier, depth,
//!   per-layer sizes, and the failure counters needed to resume the
//!   [`crate::CrawlReport`] exactly.
//!
//! The manifest is written via a temp file + rename *after* the pages, so a
//! crash mid-checkpoint leaves the previous manifest intact and never a
//! manifest referencing pages that are not on disk. Page files not listed
//! in the manifest are ignored on load.
//!
//! ```xml
//! <checkpoint depth="2">
//!   <visited><space ref="0"/>…</visited>
//!   <frontier><space ref="5"/>…</frontier>
//!   <layers><layer size="1"/><layer size="4"/></layers>
//!   <pages><space ref="0"/>…</pages>
//!   <counters failed="0" missing="1" retries="7" throttled="2" corrupt="0"/>
//! </checkpoint>
//! ```

use crate::host::SpacePage;
use crate::xml_host::{save_archive, space_from_xml};
use mass_xml::{Element, XmlWriter};
use std::collections::BTreeSet;
use std::path::Path;

/// Resumable BFS state at a layer boundary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrawlCheckpoint {
    /// Spaces ever claimed into a frontier (fetched, failed, or missing).
    pub visited: BTreeSet<usize>,
    /// The next layer to fetch.
    pub frontier: Vec<usize>,
    /// Completed BFS depth (layers fully fetched so far).
    pub depth: usize,
    /// Size of each completed layer.
    pub layer_sizes: Vec<usize>,
    /// Spaces whose retries were exhausted.
    pub spaces_failed: usize,
    /// Spaces the host reported as nonexistent.
    pub spaces_missing: usize,
    /// Retry attempts performed.
    pub retries: usize,
    /// Fetch attempts the host throttled.
    pub throttled: usize,
    /// Fetch attempts that returned corrupt payloads.
    pub corrupt_fetches: usize,
}

fn ref_list(w: &mut XmlWriter, parent: &str, item: &str, ids: impl Iterator<Item = usize>) {
    w.open(parent);
    for id in ids {
        w.leaf_with_attrs(item, &[("ref", &id.to_string())]);
    }
    w.close();
}

fn read_ref_list(root: &Element, parent: &str, item: &str) -> mass_xml::Result<Vec<usize>> {
    let mut out = Vec::new();
    if let Some(list) = root.child(parent) {
        for e in list.elements_named(item) {
            out.push(e.require_usize("ref")?);
        }
    }
    Ok(out)
}

/// Serialises the manifest (not the pages).
pub fn checkpoint_to_xml(cp: &CrawlCheckpoint, page_ids: &[usize]) -> String {
    let mut w = XmlWriter::new();
    w.declaration();
    w.open_with_attrs("checkpoint", &[("depth", &cp.depth.to_string())]);
    ref_list(&mut w, "visited", "space", cp.visited.iter().copied());
    ref_list(&mut w, "frontier", "space", cp.frontier.iter().copied());
    w.open("layers");
    for size in &cp.layer_sizes {
        w.leaf_with_attrs("layer", &[("size", &size.to_string())]);
    }
    w.close();
    ref_list(&mut w, "pages", "space", page_ids.iter().copied());
    w.leaf_with_attrs(
        "counters",
        &[
            ("failed", &cp.spaces_failed.to_string()),
            ("missing", &cp.spaces_missing.to_string()),
            ("retries", &cp.retries.to_string()),
            ("throttled", &cp.throttled.to_string()),
            ("corrupt", &cp.corrupt_fetches.to_string()),
        ],
    );
    w.close();
    w.finish()
}

/// Parses a manifest, returning the checkpoint and the page ids it lists.
pub fn checkpoint_from_xml(xml: &str) -> mass_xml::Result<(CrawlCheckpoint, Vec<usize>)> {
    let root = Element::parse(xml)?;
    if root.name != "checkpoint" {
        return Err(mass_xml::Error::Schema(format!(
            "expected <checkpoint>, found <{}>",
            root.name
        )));
    }
    let counters = root.require_child("counters")?;
    let cp = CrawlCheckpoint {
        visited: read_ref_list(&root, "visited", "space")?
            .into_iter()
            .collect(),
        frontier: read_ref_list(&root, "frontier", "space")?,
        depth: root.require_usize("depth")?,
        layer_sizes: root
            .child("layers")
            .map(|l| {
                l.elements_named("layer")
                    .map(|e| e.require_usize("size"))
                    .collect::<Result<_, _>>()
            })
            .transpose()?
            .unwrap_or_default(),
        spaces_failed: counters.require_usize("failed")?,
        spaces_missing: counters.require_usize("missing")?,
        retries: counters.require_usize("retries")?,
        throttled: counters.require_usize("throttled")?,
        corrupt_fetches: counters.require_usize("corrupt")?,
    };
    let page_ids = read_ref_list(&root, "pages", "space")?;
    Ok((cp, page_ids))
}

/// Writes a checkpoint: pages first, then the manifest atomically.
pub fn save_checkpoint(
    dir: impl AsRef<Path>,
    cp: &CrawlCheckpoint,
    pages: &[SpacePage],
) -> mass_xml::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    save_archive(dir.join("pages"), pages)?;
    let page_ids: Vec<usize> = pages.iter().map(|p| p.space_id).collect();
    let tmp = dir.join("checkpoint.xml.tmp");
    std::fs::write(&tmp, checkpoint_to_xml(cp, &page_ids))?;
    std::fs::rename(&tmp, dir.join("checkpoint.xml"))?;
    Ok(())
}

/// Loads the checkpoint in `dir`, or `None` when no manifest exists yet.
pub fn load_checkpoint(
    dir: impl AsRef<Path>,
) -> mass_xml::Result<Option<(CrawlCheckpoint, Vec<SpacePage>)>> {
    let dir = dir.as_ref();
    let manifest = dir.join("checkpoint.xml");
    let xml = match std::fs::read_to_string(&manifest) {
        Ok(xml) => xml,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let (cp, page_ids) = checkpoint_from_xml(&xml)?;
    let pages_dir = dir.join("pages");
    let mut pages = Vec::with_capacity(page_ids.len());
    for id in page_ids {
        let path = pages_dir.join(format!("space_{id:06}.xml"));
        pages.push(space_from_xml(&std::fs::read_to_string(path)?)?);
    }
    Ok(Some((cp, pages)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::PostView;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mass_checkpoint").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> (CrawlCheckpoint, Vec<SpacePage>) {
        let cp = CrawlCheckpoint {
            visited: [0, 1, 5].into_iter().collect(),
            frontier: vec![5],
            depth: 1,
            layer_sizes: vec![1, 2],
            spaces_failed: 1,
            spaces_missing: 0,
            retries: 3,
            throttled: 2,
            corrupt_fetches: 1,
        };
        let pages = vec![
            SpacePage {
                space_id: 0,
                name: "a".into(),
                profile: "p".into(),
                friends: vec![1],
                posts: vec![PostView {
                    global_id: 0,
                    title: "t".into(),
                    text: "x".into(),
                    links_to: vec![],
                    comments: vec![(5, "hi".into())],
                    domain_hint: None,
                }],
            },
            SpacePage {
                space_id: 1,
                name: "b".into(),
                profile: String::new(),
                friends: vec![],
                posts: vec![],
            },
        ];
        (cp, pages)
    }

    #[test]
    fn manifest_roundtrip() {
        let (cp, _) = sample();
        let xml = checkpoint_to_xml(&cp, &[0, 1]);
        let (back, ids) = checkpoint_from_xml(&xml).unwrap();
        assert_eq!(back, cp);
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn save_then_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let (cp, pages) = sample();
        save_checkpoint(&dir, &cp, &pages).unwrap();
        let (back, back_pages) = load_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(back, cp);
        assert_eq!(back_pages, pages);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        assert_eq!(load_checkpoint(tmpdir("absent")).unwrap(), None);
    }

    #[test]
    fn overwriting_checkpoint_keeps_latest() {
        let dir = tmpdir("overwrite");
        let (mut cp, pages) = sample();
        save_checkpoint(&dir, &cp, &pages[..1]).unwrap();
        cp.depth = 2;
        save_checkpoint(&dir, &cp, &pages).unwrap();
        let (back, back_pages) = load_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(back.depth, 2);
        assert_eq!(back_pages.len(), 2);
    }

    #[test]
    fn unlisted_page_files_are_ignored() {
        let dir = tmpdir("unlisted");
        let (cp, pages) = sample();
        // A page file exists on disk but the manifest only lists page 0 —
        // as after a crash between page writes and the manifest rename.
        save_checkpoint(&dir, &cp, &pages).unwrap();
        let xml = checkpoint_to_xml(&cp, &[0]);
        std::fs::write(dir.join("checkpoint.xml"), xml).unwrap();
        let (_, back_pages) = load_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(back_pages.len(), 1);
        assert_eq!(back_pages[0].space_id, 0);
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let dir = tmpdir("corrupt");
        std::fs::write(dir.join("checkpoint.xml"), "<nope/>").unwrap();
        assert!(load_checkpoint(&dir).is_err());
    }
}
