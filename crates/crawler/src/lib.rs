//! # mass-crawler
//!
//! The Crawler Module of MASS (Fig. 2): "uses a multi-thread crawling
//! technique to efficiently crawl blogosphere and stores the bloggers'
//! information (including the bloggers' personal information, posts, and
//! corresponding comments)".
//!
//! MSN Spaces — the paper's crawl target — no longer exists, so the crawler
//! runs against the [`BlogHost`] trait: a page-at-a-time fetch API shaped
//! like a 2000s blog-hosting service. [`SimulatedHost`] implements it over a
//! synthetic corpus with configurable latency and transient-failure
//! injection, which exercises the full production surface of the crawler:
//! worker pools, frontier management, retry, and partial-view dataset
//! assembly.
//!
//! Section IV features map directly onto [`CrawlConfig`]:
//! * "specify a seed of the crawling … from which the crawling starts" →
//!   [`CrawlConfig::seeds`],
//! * "specify the radius of network where the crawling is performed" →
//!   [`CrawlConfig::radius`],
//! * multi-thread crawling → [`CrawlConfig::threads`].
//!
//! ```
//! use mass_crawler::{crawl, CrawlConfig, SimulatedHost};
//! use mass_synth::{generate, SynthConfig};
//!
//! let corpus = generate(&SynthConfig::tiny(1));
//! let host = SimulatedHost::new(corpus.dataset.clone());
//! let result = crawl(&host, &CrawlConfig { seeds: vec![0], radius: Some(2), ..Default::default() });
//! result.dataset.validate().unwrap();
//! assert!(result.report.spaces_fetched >= 1);
//! ```

pub mod assemble;
pub mod config;
pub mod engine;
pub mod host;
pub mod politeness;
pub mod xml_host;

pub use assemble::assemble_dataset;
pub use config::CrawlConfig;
pub use engine::{crawl, CrawlReport, CrawlResult};
pub use host::{BlogHost, FetchError, HostConfig, SimulatedHost, SpacePage};
pub use politeness::RateLimiter;
pub use xml_host::{archive_host, save_archive, XmlArchiveHost};
