//! # mass-crawler
//!
//! The Crawler Module of MASS (Fig. 2): "uses a multi-thread crawling
//! technique to efficiently crawl blogosphere and stores the bloggers'
//! information (including the bloggers' personal information, posts, and
//! corresponding comments)".
//!
//! MSN Spaces — the paper's crawl target — no longer exists, so the crawler
//! runs against the [`BlogHost`] trait: a page-at-a-time fetch API shaped
//! like a 2000s blog-hosting service. [`SimulatedHost`] implements it over a
//! synthetic corpus with configurable latency and transient-failure
//! injection, which exercises the full production surface of the crawler:
//! worker pools, frontier management, retry, and partial-view dataset
//! assembly.
//!
//! Section IV features map directly onto [`CrawlConfig`]:
//! * "specify a seed of the crawling … from which the crawling starts" →
//!   [`CrawlConfig::seeds`],
//! * "specify the radius of network where the crawling is performed" →
//!   [`CrawlConfig::radius`],
//! * multi-thread crawling → [`CrawlConfig::threads`].
//!
//! The fault-tolerance layer (DESIGN.md "Fault model & recovery") adds
//! exponential [`BackoffPolicy`] retries, per-fetch deadlines and an overall
//! time budget, an optional shared [`CircuitBreaker`], and layer-boundary
//! checkpointing with exact resume ([`CrawlConfig::checkpoint_dir`],
//! [`CrawlConfig::resume`]).
//!
//! ```
//! use mass_crawler::{crawl, CrawlConfig, SimulatedHost};
//! use mass_synth::{generate, SynthConfig};
//!
//! let corpus = generate(&SynthConfig::tiny(1));
//! let host = SimulatedHost::new(corpus.dataset.clone());
//! let result = crawl(&host, &CrawlConfig { seeds: vec![0], radius: Some(2), ..Default::default() })
//!     .expect("valid config");
//! result.dataset.validate().unwrap();
//! assert!(result.report.spaces_fetched >= 1);
//! ```

pub mod assemble;
pub mod backoff;
pub mod breaker;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod host;
pub mod politeness;
pub mod xml_host;

pub use assemble::{assemble_dataset, assemble_dataset_threaded};
pub use backoff::BackoffPolicy;
pub use breaker::{BreakerConfig, CircuitBreaker};
pub use checkpoint::{load_checkpoint, save_checkpoint, CrawlCheckpoint};
pub use config::{ConfigError, CrawlConfig};
pub use engine::{crawl, CrawlError, CrawlReport, CrawlResult};
pub use host::{
    BlogHost, BurstOutage, FaultPlan, FetchError, HostConfig, SimulatedHost, SpacePage,
};
pub use politeness::RateLimiter;
pub use xml_host::{archive_host, save_archive, XmlArchiveHost};
