//! Assembling fetched pages into a dense, validated [`Dataset`].
//!
//! A partial crawl sees only part of the host: comments may come from
//! bloggers whose spaces were never fetched, and links may point outside the
//! crawl. Assembly policy (documented in DESIGN.md §5):
//!
//! * commenters outside the crawl become **stub bloggers** (no profile, no
//!   posts) — they matter for the influence model's `TC` normalisation and
//!   as comment sources;
//! * friend links are kept when the target is present (crawled or stub) and
//!   dropped otherwise;
//! * post-to-post links are kept only between fetched posts;
//! * pages that are *internally inconsistent* — a duplicated post id within
//!   the page, a post id already claimed by a lower space, or a
//!   self-referential friend link — are **quarantined**: dropped from the
//!   dataset and reported in [`AssembledCrawl::rejected`], so one corrupt
//!   mirror cannot poison an otherwise valid crawl.
//!
//! Assembly is deterministic: bloggers are ordered crawled-spaces-first
//! (ascending space id), then stubs (ascending space id); posts keep the
//! host's global order.

use crate::host::SpacePage;
use mass_types::{Blogger, BloggerId, Comment, Dataset, DomainId, DomainSet, Post, PostId};
use std::collections::{BTreeMap, BTreeSet};

/// A crawl's dataset plus the mapping back to host space ids.
#[derive(Clone, Debug, PartialEq)]
pub struct AssembledCrawl {
    /// The dense, validated dataset.
    pub dataset: Dataset,
    /// `space_of[i]` = host space id of blogger `i`.
    pub space_of: Vec<usize>,
    /// Bloggers with index `>= stub_start` are stubs (commenters whose
    /// spaces were not fetched).
    pub stub_start: usize,
    /// Host space ids whose pages were quarantined as inconsistent
    /// (ascending). Their content is excluded from the dataset; they may
    /// still appear as stubs if other pages reference them.
    pub rejected: Vec<usize>,
}

impl AssembledCrawl {
    /// The dataset-local id of a host space, if present.
    pub fn blogger_for_space(&self, space: usize) -> Option<BloggerId> {
        self.space_of
            .iter()
            .position(|&s| s == space)
            .map(BloggerId::new)
    }

    /// Whether a blogger is a stub.
    pub fn is_stub(&self, b: BloggerId) -> bool {
        b.index() >= self.stub_start
    }

    /// Tokenizes and interns the assembled dataset once, ready for the
    /// analysis pipeline — the crawl output feeds the interner directly so
    /// downstream stages never re-tokenize raw text (DESIGN.md §10).
    pub fn prepared_corpus(&self, threads: usize) -> mass_text::PreparedCorpus {
        mass_text::PreparedCorpus::build(&self.dataset, threads)
    }
}

/// Builds the dataset from fetched pages. Duplicate pages for the same
/// space id keep the first occurrence. Serial wrapper around
/// [`assemble_dataset_threaded`]; the output never depends on `threads`.
pub fn assemble_dataset(pages: &[SpacePage]) -> AssembledCrawl {
    assemble_dataset_threaded(pages, 1)
}

/// [`assemble_dataset`] with blogger and post construction fanned out over
/// the `mass-par` executor. Dedup, quarantine, and id assignment stay serial
/// (they are order-sensitive scans); the per-blogger and per-post clone/remap
/// work is embarrassingly parallel, each result landing in its own slot, so
/// the assembled dataset is identical at every thread count.
pub fn assemble_dataset_threaded(pages: &[SpacePage], threads: usize) -> AssembledCrawl {
    let ex = mass_par::executor(threads);
    // Deduplicate and order pages by space id.
    let mut by_space: BTreeMap<usize, &SpacePage> = BTreeMap::new();
    for p in pages {
        by_space.entry(p.space_id).or_insert(p);
    }

    // Quarantine inconsistent pages: a self-friend link or a post id seen
    // twice within the page marks the page as served by a corrupt mirror.
    let mut rejected: BTreeSet<usize> = BTreeSet::new();
    for (&space, page) in &by_space {
        if page.friends.contains(&space) {
            rejected.insert(space);
            continue;
        }
        let mut seen = BTreeSet::new();
        if page.posts.iter().any(|p| !seen.insert(p.global_id)) {
            rejected.insert(space);
        }
    }
    // Cross-page conflicts: two spaces claiming the same host-global post
    // id cannot both be right. Scan ascending, so the lower space keeps the
    // post and the higher space is quarantined (its other claims released).
    let mut gid_owner: BTreeMap<usize, usize> = BTreeMap::new();
    for (&space, page) in &by_space {
        if rejected.contains(&space) {
            continue;
        }
        let mut claimed = Vec::new();
        let conflict = page.posts.iter().any(|p| {
            if let std::collections::btree_map::Entry::Vacant(slot) = gid_owner.entry(p.global_id) {
                slot.insert(space);
                claimed.push(p.global_id);
                false
            } else {
                true
            }
        });
        if conflict {
            rejected.insert(space);
            for g in claimed {
                gid_owner.remove(&g);
            }
        }
    }
    by_space.retain(|space, _| !rejected.contains(space));

    // Discover stub commenters.
    let crawled: BTreeSet<usize> = by_space.keys().copied().collect();
    let mut stubs: BTreeSet<usize> = BTreeSet::new();
    for page in by_space.values() {
        for post in &page.posts {
            for &(commenter, _) in &post.comments {
                if !crawled.contains(&commenter) {
                    stubs.insert(commenter);
                }
            }
        }
    }

    // Blogger id assignment: crawled first, then stubs.
    let mut space_of: Vec<usize> = crawled.iter().copied().collect();
    let stub_start = space_of.len();
    space_of.extend(stubs.iter().copied());
    let local_of: BTreeMap<usize, usize> = space_of
        .iter()
        .enumerate()
        .map(|(local, &space)| (space, local))
        .collect();

    // Post id assignment: host-global order over fetched posts.
    let mut all_posts: Vec<(&SpacePage, &crate::host::PostView)> = by_space
        .values()
        .flat_map(|page| page.posts.iter().map(move |p| (*page, p)))
        .collect();
    all_posts.sort_by_key(|(_, p)| p.global_id);
    let post_local: BTreeMap<usize, usize> = all_posts
        .iter()
        .enumerate()
        .map(|(local, (_, p))| (p.global_id, local))
        .collect();

    // Bloggers: each crawled blogger's profile clone + friend remap is
    // independent of the others.
    let mut bloggers = ex.par_map(&space_of[..stub_start], |&space| {
        let page = by_space[&space];
        let mut b = Blogger::with_profile(page.name.clone(), page.profile.clone());
        b.friends = page
            .friends
            .iter()
            .filter_map(|f| local_of.get(f).map(|&l| BloggerId::new(l)))
            .collect();
        b
    });
    for &space in &space_of[stub_start..] {
        bloggers.push(Blogger::new(format!("space_{space}")));
    }

    // Posts: each fetched post remaps into its own dataset slot. `local` is
    // the index being built, which the serial loop expressed as `posts.len()`
    // in its self-link filter.
    let posts = ex.par_map_collect(all_posts.len(), |local| {
        let (page, view) = &all_posts[local];
        let author = BloggerId::new(local_of[&page.space_id]);
        let mut post = Post::new(author, view.title.clone(), view.text.clone());
        post.true_domain = view.domain_hint.map(DomainId::new);
        post.links_to = view
            .links_to
            .iter()
            .filter_map(|g| post_local.get(g).map(|&l| PostId::new(l)))
            .filter(|&target| target.index() != local)
            .collect();
        post.comments = view
            .comments
            .iter()
            .filter_map(|(commenter, text)| {
                let local = BloggerId::new(local_of[commenter]);
                // A host page could claim the author commented on their own
                // post; the MASS model only counts peer comments.
                (local != author).then(|| Comment {
                    commenter: local,
                    text: text.clone(),
                    sentiment: None,
                    ts: 0,
                })
            })
            .collect();
        post
    });

    let dataset = Dataset {
        bloggers,
        posts,
        domains: DomainSet::paper(),
    };
    debug_assert!(
        dataset.validate().is_ok(),
        "assembly must produce a consistent dataset"
    );
    AssembledCrawl {
        dataset,
        space_of,
        stub_start,
        rejected: rejected.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::PostView;

    fn page(space: usize, friends: Vec<usize>, posts: Vec<PostView>) -> SpacePage {
        SpacePage {
            space_id: space,
            name: format!("name{space}"),
            profile: format!("profile{space}"),
            friends,
            posts,
        }
    }

    fn post(global: usize, links: Vec<usize>, comments: Vec<(usize, &str)>) -> PostView {
        PostView {
            global_id: global,
            title: format!("t{global}"),
            text: format!("text of post {global}"),
            links_to: links,
            comments: comments
                .into_iter()
                .map(|(c, t)| (c, t.to_string()))
                .collect(),
            domain_hint: Some(global % 10),
        }
    }

    #[test]
    fn crawled_then_stubs_ordering() {
        let pages = vec![
            page(
                7,
                vec![2],
                vec![post(10, vec![], vec![(2, "hi"), (99, "yo")])],
            ),
            page(2, vec![7, 50], vec![post(5, vec![10], vec![])]),
        ];
        let out = assemble_dataset(&pages);
        assert_eq!(out.space_of, vec![2, 7, 99]);
        assert_eq!(out.stub_start, 2);
        assert!(out.is_stub(BloggerId::new(2)));
        assert!(!out.is_stub(BloggerId::new(0)));
        assert_eq!(out.dataset.bloggers[2].name, "space_99");
        // Friend 50 was never seen → dropped; friend 7 kept.
        assert_eq!(out.dataset.bloggers[0].friends, vec![BloggerId::new(1)]);
    }

    #[test]
    fn posts_keep_global_order_and_remap_links() {
        let pages = vec![
            page(7, vec![], vec![post(10, vec![5, 77], vec![])]),
            page(2, vec![], vec![post(5, vec![], vec![])]),
        ];
        let out = assemble_dataset(&pages);
        // Post 5 (space 2) becomes p0; post 10 (space 7) becomes p1.
        assert_eq!(out.dataset.posts[0].title, "t5");
        assert_eq!(out.dataset.posts[1].title, "t10");
        // Link 10→5 kept and remapped; 10→77 dropped (not fetched).
        assert_eq!(out.dataset.posts[1].links_to, vec![PostId::new(0)]);
    }

    #[test]
    fn self_comments_from_host_are_dropped() {
        let pages = vec![page(
            1,
            vec![],
            vec![post(0, vec![], vec![(1, "me"), (3, "ok")])],
        )];
        let out = assemble_dataset(&pages);
        assert_eq!(out.dataset.posts[0].comments.len(), 1);
        out.dataset.validate().unwrap();
    }

    #[test]
    fn duplicate_pages_keep_first() {
        let mut p1 = page(3, vec![], vec![]);
        p1.name = "first".into();
        let mut p2 = page(3, vec![], vec![]);
        p2.name = "second".into();
        let out = assemble_dataset(&[p1, p2]);
        assert_eq!(out.dataset.bloggers.len(), 1);
        assert_eq!(out.dataset.bloggers[0].name, "first");
    }

    #[test]
    fn empty_crawl_is_empty_dataset() {
        let out = assemble_dataset(&[]);
        assert!(out.dataset.bloggers.is_empty());
        assert!(out.dataset.posts.is_empty());
        assert_eq!(out.stub_start, 0);
        out.dataset.validate().unwrap();
    }

    #[test]
    fn domain_hints_become_true_domains() {
        let out = assemble_dataset(&[page(0, vec![], vec![post(4, vec![], vec![])])]);
        assert_eq!(out.dataset.posts[0].true_domain, Some(DomainId::new(4)));
    }

    #[test]
    fn blogger_for_space_lookup() {
        let out = assemble_dataset(&[page(9, vec![], vec![])]);
        assert_eq!(out.blogger_for_space(9), Some(BloggerId::new(0)));
        assert_eq!(out.blogger_for_space(1), None);
    }

    #[test]
    fn duplicate_post_id_within_page_is_quarantined() {
        let pages = vec![
            page(
                1,
                vec![],
                vec![post(4, vec![], vec![]), post(4, vec![], vec![])],
            ),
            page(2, vec![], vec![post(7, vec![], vec![])]),
        ];
        let out = assemble_dataset(&pages);
        assert_eq!(out.rejected, vec![1]);
        assert_eq!(out.space_of, vec![2]);
        assert_eq!(out.dataset.posts.len(), 1);
        out.dataset.validate().unwrap();
    }

    #[test]
    fn cross_page_post_conflict_keeps_lower_space() {
        let pages = vec![
            page(5, vec![], vec![post(3, vec![], vec![])]),
            page(
                8,
                vec![],
                vec![post(3, vec![], vec![]), post(9, vec![], vec![])],
            ),
        ];
        let out = assemble_dataset(&pages);
        assert_eq!(out.rejected, vec![8]);
        assert_eq!(out.space_of, vec![5]);
        // Space 8's unconflicted post 9 goes down with the page.
        assert_eq!(out.dataset.posts.len(), 1);
        out.dataset.validate().unwrap();
    }

    #[test]
    fn self_friend_page_is_quarantined_but_can_remain_a_stub() {
        let pages = vec![
            page(1, vec![1], vec![]),
            page(2, vec![1], vec![post(0, vec![], vec![(1, "hi")])]),
        ];
        let out = assemble_dataset(&pages);
        assert_eq!(out.rejected, vec![1]);
        // Space 1 still shows up as a stub via space 2's comment.
        assert_eq!(out.space_of, vec![2, 1]);
        assert_eq!(out.stub_start, 1);
        assert!(out.is_stub(BloggerId::new(1)));
        out.dataset.validate().unwrap();
    }

    #[test]
    fn threaded_assembly_is_identical_to_serial() {
        // Mix of quarantined pages, stubs, cross links, and self links so
        // every assembly branch runs under the pool.
        let mut pages = vec![page(1, vec![1], vec![])]; // quarantined self-friend
        for s in 2..40 {
            pages.push(page(
                s,
                vec![s - 1, s + 1, 500],
                vec![
                    post(s * 10, vec![s * 10, (s - 1) * 10], vec![(s + 1, "hi")]),
                    post(s * 10 + 1, vec![], vec![(900 + s, "out"), (s, "self")]),
                ],
            ));
        }
        let serial = assemble_dataset(&pages);
        for threads in [2, 3, 8] {
            assert_eq!(
                assemble_dataset_threaded(&pages, threads),
                serial,
                "assembly diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn clean_pages_report_no_rejects() {
        let out = assemble_dataset(&[page(0, vec![], vec![post(4, vec![], vec![])])]);
        assert!(out.rejected.is_empty());
    }

    #[test]
    fn prepared_corpus_matches_direct_build_at_every_thread_count() {
        let pages = vec![
            page(
                1,
                vec![2],
                vec![post(10, vec![], vec![(2, "nice write-up")])],
            ),
            page(
                2,
                vec![1],
                vec![post(20, vec![10], vec![(1, "I do not agree")])],
            ),
        ];
        let out = assemble_dataset(&pages);
        let direct = mass_text::PreparedCorpus::build(&out.dataset, 1);
        for threads in [1, 4] {
            let c = out.prepared_corpus(threads);
            assert_eq!(c.vocab_len(), direct.vocab_len(), "threads={threads}");
            assert_eq!(c.total_tokens(), direct.total_tokens());
            for k in 0..c.posts() {
                assert_eq!(c.doc_tokens(k), direct.doc_tokens(k), "post {k}");
            }
        }
    }
}
