//! The multi-threaded crawl engine.
//!
//! Breadth-first over the blogosphere: each frontier layer is fetched by a
//! worker pool (scoped threads pulling space ids from a shared
//! cursor), then the next layer is derived from friend links and commenter
//! identities. Layered BFS gives exact radius semantics — a space fetched at
//! layer `d` is exactly `d` hops from the nearest seed — while still keeping
//! all workers busy within a layer.
//!
//! Resilience (DESIGN.md "Fault model & recovery"): retries back off
//! exponentially with deterministic jitter; a per-space fetch deadline stops
//! tarpitted hosts from pinning workers; an overall time budget bounds the
//! whole crawl; an optional shared circuit breaker pauses the pool when the
//! host melts down; and BFS state checkpoints at layer boundaries so an
//! interrupted crawl resumes exactly where it left off.

use crate::assemble::{assemble_dataset_threaded, AssembledCrawl};
use crate::breaker::CircuitBreaker;
use crate::checkpoint::{load_checkpoint, save_checkpoint, CrawlCheckpoint};
use crate::config::{ConfigError, CrawlConfig};
use crate::host::{BlogHost, FetchError, SpacePage};
use crate::politeness::RateLimiter;
use mass_obs::field;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why a crawl could not run (as opposed to running and losing some
/// spaces, which the [`CrawlReport`] accounts for).
#[derive(Clone, Debug, PartialEq)]
pub enum CrawlError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// Reading or writing the checkpoint directory failed.
    Checkpoint(String),
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Config(e) => write!(f, "invalid crawl config: {e}"),
            CrawlError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
        }
    }
}

impl std::error::Error for CrawlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrawlError::Config(e) => Some(e),
            CrawlError::Checkpoint(_) => None,
        }
    }
}

impl From<ConfigError> for CrawlError {
    fn from(e: ConfigError) -> Self {
        CrawlError::Config(e)
    }
}

/// Statistics of one crawl run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CrawlReport {
    /// Spaces fetched successfully.
    pub spaces_fetched: usize,
    /// Spaces given up on after exhausting retries (or their deadline).
    pub spaces_failed: usize,
    /// Spaces that did not exist on the host.
    pub spaces_missing: usize,
    /// Retry attempts performed (beyond first tries).
    pub retries: usize,
    /// Fetch attempts the host rejected with throttling.
    pub throttled: usize,
    /// Fetch attempts that returned corrupt payloads.
    pub corrupt_fetches: usize,
    /// Posts collected into the assembled dataset.
    pub posts: usize,
    /// Comments collected into the assembled dataset.
    pub comments: usize,
    /// Number of BFS layers processed (0 = seeds only).
    pub depth_reached: usize,
    /// Spaces first reached at each depth.
    pub layer_sizes: Vec<usize>,
    /// Host space ids whose pages were fetched but quarantined as
    /// inconsistent during assembly.
    pub rejected_pages: Vec<usize>,
    /// Times the circuit breaker tripped.
    pub breaker_trips: usize,
    /// Total time the breaker held the pool back.
    pub breaker_open_time: Duration,
    /// Checkpoints written during this run.
    pub checkpoints_written: usize,
    /// Whether this run restored state from a checkpoint.
    pub resumed_from_checkpoint: bool,
    /// Whether the crawl stopped because `time_budget` ran out.
    pub budget_exhausted: bool,
    /// Wall-clock duration of the crawl.
    pub elapsed: Duration,
}

/// A completed crawl: the assembled dataset, id mappings and statistics.
#[derive(Clone, Debug)]
pub struct CrawlResult {
    /// Dense, validated dataset (see `assemble` for partial-view policy).
    pub dataset: mass_types::Dataset,
    /// `space_of[i]` = host space id of dataset blogger `i`.
    pub space_of: Vec<usize>,
    /// Index of the first stub blogger.
    pub stub_start: usize,
    /// Crawl statistics.
    pub report: CrawlReport,
}

fn snapshot(
    visited: &BTreeSet<usize>,
    frontier: &[usize],
    depth: usize,
    report: &CrawlReport,
) -> CrawlCheckpoint {
    CrawlCheckpoint {
        visited: visited.clone(),
        frontier: frontier.to_vec(),
        depth,
        layer_sizes: report.layer_sizes.clone(),
        spaces_failed: report.spaces_failed,
        spaces_missing: report.spaces_missing,
        retries: report.retries,
        throttled: report.throttled,
        corrupt_fetches: report.corrupt_fetches,
    }
}

/// Crawls `host` according to `cfg` and assembles the result.
pub fn crawl(host: &dyn BlogHost, cfg: &CrawlConfig) -> Result<CrawlResult, CrawlError> {
    cfg.validate()?;
    let _run_span = mass_obs::span_with(
        "crawl.run",
        vec![
            field("threads", cfg.threads),
            field("max_spaces", cfg.max_spaces),
            field("retries", cfg.retries),
        ],
    );
    let start = Instant::now();
    let deadline = cfg.time_budget.map(|b| start + b);

    let mut report = CrawlReport::default();
    let mut pages: Vec<SpacePage> = Vec::new();
    let mut visited: BTreeSet<usize>;
    let mut frontier: Vec<usize>;
    let mut depth = 0usize;

    let restored = if cfg.resume {
        let dir = cfg
            .checkpoint_dir
            .as_ref()
            .expect("validate() requires a dir for resume");
        load_checkpoint(dir).map_err(|e| CrawlError::Checkpoint(e.to_string()))?
    } else {
        None
    };
    match restored {
        Some((cp, cp_pages)) => {
            visited = cp.visited;
            frontier = cp.frontier;
            depth = cp.depth;
            report.layer_sizes = cp.layer_sizes;
            report.depth_reached = cp.depth.saturating_sub(1);
            report.spaces_failed = cp.spaces_failed;
            report.spaces_missing = cp.spaces_missing;
            report.retries = cp.retries;
            report.throttled = cp.throttled;
            report.corrupt_fetches = cp.corrupt_fetches;
            report.resumed_from_checkpoint = true;
            mass_obs::info(
                "crawl.resumed",
                &[
                    field("depth", depth),
                    field("pages", cp_pages.len()),
                    field("frontier", frontier.len()),
                ],
            );
            pages = cp_pages;
        }
        None => {
            let seeds: Vec<usize> = if cfg.seeds.is_empty() {
                (0..host.space_count()).collect()
            } else {
                let mut s: Vec<usize> = cfg.seeds.clone();
                s.sort_unstable();
                s.dedup();
                s
            };
            visited = seeds.iter().copied().collect();
            frontier = seeds;
        }
    }

    let limiter = cfg
        .max_requests_per_second
        .map(|r| RateLimiter::new(r, r.max(1.0)));
    let breaker = cfg.breaker.clone().map(CircuitBreaker::new);
    // Set when the time budget expired *inside* a layer: the in-memory
    // result is still returned, but the (boundary-consistent) checkpoint on
    // disk must not be overwritten with mid-layer state.
    let mut cut_mid_layer = false;
    let mut completed_layers = 0usize;

    loop {
        // Radius is checked against the *next* layer's depth, so a
        // checkpoint taken at a radius stop still records the frontier —
        // resuming with a larger radius continues the crawl exactly.
        if cfg.radius.is_some_and(|r| depth > r) {
            break;
        }
        let budget = cfg.max_spaces.saturating_sub(pages.len());
        if budget == 0 || frontier.is_empty() {
            break;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            report.budget_exhausted = true;
            break;
        }
        frontier.truncate(budget);
        report.layer_sizes.push(frontier.len());

        let layer_span = mass_obs::span_with(
            "crawl.layer",
            vec![field("depth", depth), field("spaces", frontier.len())],
        );
        let layer = fetch_layer(
            host,
            &frontier,
            cfg,
            limiter.as_ref(),
            breaker.as_ref(),
            deadline,
            &mut report,
        );
        drop(layer_span);
        let mut next: BTreeSet<usize> = BTreeSet::new();
        for page in layer {
            for &f in &page.friends {
                next.insert(f);
            }
            for post in &page.posts {
                for &(commenter, _) in &post.comments {
                    next.insert(commenter);
                }
            }
            pages.push(page);
        }
        report.depth_reached = depth;
        completed_layers += 1;

        if report.budget_exhausted {
            cut_mid_layer = true;
            break;
        }

        depth += 1;
        frontier = next.into_iter().filter(|s| visited.insert(*s)).collect();

        if let Some(dir) = &cfg.checkpoint_dir {
            if !frontier.is_empty() && completed_layers.is_multiple_of(cfg.checkpoint_every_layers)
            {
                save_checkpoint(dir, &snapshot(&visited, &frontier, depth, &report), &pages)
                    .map_err(|e| CrawlError::Checkpoint(e.to_string()))?;
                report.checkpoints_written += 1;
                mass_obs::counter("crawl.checkpoints").inc();
                mass_obs::info(
                    "crawl.checkpoint",
                    &[field("depth", depth), field("pages", pages.len())],
                );
            }
        }
        if frontier.is_empty() {
            break;
        }
    }

    // Final checkpoint so the directory always reflects the finished (or
    // boundary-interrupted) state — except after a mid-layer cut, where the
    // previous boundary checkpoint is the only consistent snapshot.
    if let Some(dir) = &cfg.checkpoint_dir {
        if !cut_mid_layer {
            save_checkpoint(dir, &snapshot(&visited, &frontier, depth, &report), &pages)
                .map_err(|e| CrawlError::Checkpoint(e.to_string()))?;
            report.checkpoints_written += 1;
        }
    }

    if let Some(b) = &breaker {
        report.breaker_trips = b.trips();
        report.breaker_open_time = b.open_time();
    }
    report.spaces_fetched = pages.len();
    mass_obs::counter("crawl.spaces_fetched").add(pages.len() as u64);
    if report.budget_exhausted {
        mass_obs::warn(
            "crawl.budget_exhausted",
            &[field("pages", pages.len()), field("depth", depth)],
        );
    }

    let assemble_span = mass_obs::span_with("crawl.assemble", vec![field("pages", pages.len())]);
    let AssembledCrawl {
        dataset,
        space_of,
        stub_start,
        rejected,
    } = assemble_dataset_threaded(&pages, cfg.threads);
    drop(assemble_span);
    mass_obs::counter("crawl.quarantined").add(rejected.len() as u64);
    report.rejected_pages = rejected;
    report.posts = dataset.posts.len();
    report.comments = dataset.posts.iter().map(|p| p.comments.len()).sum();
    report.elapsed = start.elapsed();
    Ok(CrawlResult {
        dataset,
        space_of,
        stub_start,
        report,
    })
}

/// Fetches one frontier layer with a worker pool. Results are returned in
/// frontier order so the crawl is deterministic regardless of scheduling.
fn fetch_layer(
    host: &dyn BlogHost,
    frontier: &[usize],
    cfg: &CrawlConfig,
    limiter: Option<&RateLimiter>,
    breaker: Option<&CircuitBreaker>,
    deadline: Option<Instant>,
    report: &mut CrawlReport,
) -> Vec<SpacePage> {
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Option<SpacePage>)>> =
        Mutex::new(Vec::with_capacity(frontier.len()));
    // Metric handles are hoisted outside the worker loop: recording through
    // them is lock-free, only the name lookup takes a mutex.
    let fetch_latency = mass_obs::histogram("crawl.fetch_latency_us");
    let retry_events = mass_obs::counter("crawl.retries");
    let throttled_events = mass_obs::counter("crawl.throttled");
    let corrupt_events = mass_obs::counter("crawl.corrupt_fetches");
    let backoff_sleep = mass_obs::counter("crawl.backoff_sleep_us");
    let retries = AtomicUsize::new(0);
    let missing = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let throttled = AtomicUsize::new(0);
    let corrupt = AtomicUsize::new(0);
    let out_of_time = AtomicBool::new(false);

    let workers = cfg.threads.min(frontier.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    out_of_time.store(true, Ordering::Relaxed);
                    break;
                }
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= frontier.len() {
                    break;
                }
                let space = frontier[idx];
                let space_start = Instant::now();
                let mut outcome = None;
                let mut gone = false;
                for attempt in 0..=cfg.retries {
                    if attempt > 0 {
                        let delay = cfg.backoff.delay(space, attempt);
                        if !delay.is_zero() {
                            backoff_sleep.add(delay.as_micros() as u64);
                            std::thread::sleep(delay);
                        }
                    }
                    // The per-space deadline spans all retries: a tarpitted
                    // or melting host forfeits its remaining attempts.
                    if cfg
                        .fetch_deadline
                        .is_some_and(|d| space_start.elapsed() >= d)
                    {
                        break;
                    }
                    if let Some(b) = breaker {
                        b.acquire();
                    }
                    if let Some(l) = limiter {
                        l.acquire();
                    }
                    let fetch_start = Instant::now();
                    let fetched = host.fetch_space(space);
                    fetch_latency.record_duration(fetch_start.elapsed());
                    match fetched {
                        Ok(page) => {
                            if let Some(b) = breaker {
                                b.record(true);
                            }
                            outcome = Some(page);
                            break;
                        }
                        Err(FetchError::NotFound(_)) => {
                            // The host answered authoritatively; not an
                            // availability signal for the breaker.
                            if let Some(b) = breaker {
                                b.record(true);
                            }
                            gone = true;
                            break;
                        }
                        Err(err) => {
                            match err {
                                FetchError::Throttled(_) => {
                                    throttled.fetch_add(1, Ordering::Relaxed);
                                    throttled_events.inc();
                                }
                                FetchError::Corrupt(_) => {
                                    corrupt.fetch_add(1, Ordering::Relaxed);
                                    corrupt_events.inc();
                                }
                                _ => {}
                            }
                            if let Some(b) = breaker {
                                // Corrupt payloads mean the host answered;
                                // only availability failures feed the trip
                                // threshold.
                                b.record(matches!(err, FetchError::Corrupt(_)));
                            }
                            if attempt < cfg.retries {
                                retries.fetch_add(1, Ordering::Relaxed);
                                retry_events.inc();
                            }
                        }
                    }
                }
                if outcome.is_none() {
                    if gone {
                        missing.fetch_add(1, Ordering::Relaxed);
                    } else {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                results
                    .lock()
                    .expect("results poisoned")
                    .push((idx, outcome));
            });
        }
    });

    report.retries += retries.load(Ordering::Relaxed);
    report.spaces_missing += missing.load(Ordering::Relaxed);
    report.spaces_failed += failed.load(Ordering::Relaxed);
    report.throttled += throttled.load(Ordering::Relaxed);
    report.corrupt_fetches += corrupt.load(Ordering::Relaxed);
    if out_of_time.load(Ordering::Relaxed) {
        report.budget_exhausted = true;
    }

    let mut collected = results.into_inner().expect("results poisoned");
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().filter_map(|(_, page)| page).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::BackoffPolicy;
    use crate::host::{HostConfig, SimulatedHost};
    use mass_synth::{generate, SynthConfig};
    use mass_types::DatasetBuilder;

    fn tiny_host() -> SimulatedHost {
        SimulatedHost::new(generate(&SynthConfig::tiny(2)).dataset)
    }

    #[test]
    fn full_crawl_recovers_every_space() {
        let host = tiny_host();
        let result = crawl(&host, &CrawlConfig::default()).unwrap();
        assert_eq!(result.report.spaces_fetched, host.space_count());
        assert_eq!(result.dataset.bloggers.len(), host.space_count());
        assert_eq!(result.dataset.posts.len(), host.dataset().posts.len());
        assert_eq!(result.stub_start, host.space_count());
        assert!(result.report.rejected_pages.is_empty());
        assert!(!result.report.budget_exhausted);
        result.dataset.validate().unwrap();
    }

    #[test]
    fn full_crawl_preserves_content() {
        let host = tiny_host();
        let result = crawl(&host, &CrawlConfig::default()).unwrap();
        // Space ids are dense on the host, so blogger i maps to space i.
        assert_eq!(result.space_of, (0..host.space_count()).collect::<Vec<_>>());
        for (orig, got) in host.dataset().bloggers.iter().zip(&result.dataset.bloggers) {
            assert_eq!(orig.name, got.name);
            assert_eq!(orig.friends, got.friends);
        }
        for (orig, got) in host.dataset().posts.iter().zip(&result.dataset.posts) {
            assert_eq!(orig.text, got.text);
            assert_eq!(orig.links_to, got.links_to);
            assert_eq!(orig.comments.len(), got.comments.len());
        }
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let host = tiny_host();
        let err = crawl(
            &host,
            &CrawlConfig {
                threads: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, CrawlError::Config(ConfigError::ZeroThreads));
        assert!(err.to_string().contains("thread"));
    }

    #[test]
    fn radius_zero_fetches_only_seeds() {
        let host = tiny_host();
        let result = crawl(
            &host,
            &CrawlConfig {
                seeds: vec![0, 3],
                radius: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.report.spaces_fetched, 2);
        assert_eq!(result.report.layer_sizes, vec![2]);
    }

    #[test]
    fn radius_grows_coverage_monotonically() {
        let host = SimulatedHost::new(generate(&SynthConfig::default()).dataset);
        let mut last = 0;
        for r in 0..4 {
            let result = crawl(
                &host,
                &CrawlConfig {
                    seeds: vec![0],
                    radius: Some(r),
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                result.report.spaces_fetched >= last,
                "radius {r}: {} < {last}",
                result.report.spaces_fetched
            );
            last = result.report.spaces_fetched;
        }
        assert!(last > 1, "radius never expanded beyond the seed");
    }

    #[test]
    fn max_spaces_caps_the_crawl() {
        let host = tiny_host();
        let result = crawl(
            &host,
            &CrawlConfig {
                max_spaces: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.report.spaces_fetched, 5);
    }

    #[test]
    fn transient_failures_are_retried() {
        let ds = generate(&SynthConfig::tiny(4)).dataset;
        let host = SimulatedHost::with_config(
            ds,
            HostConfig {
                failure_rate: 0.4,
                ..Default::default()
            },
        )
        .unwrap();
        let result = crawl(
            &host,
            &CrawlConfig {
                retries: 20,
                backoff: BackoffPolicy::none(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.report.spaces_fetched, host.space_count());
        assert!(
            result.report.retries > 0,
            "expected retries with 40% failure rate"
        );
        assert_eq!(result.report.spaces_failed, 0);
    }

    #[test]
    fn exhausted_retries_are_reported() {
        let ds = generate(&SynthConfig::tiny(5)).dataset;
        let host = SimulatedHost::with_config(
            ds,
            HostConfig {
                failure_rate: 0.95,
                ..Default::default()
            },
        )
        .unwrap();
        let result = crawl(
            &host,
            &CrawlConfig {
                retries: 0,
                backoff: BackoffPolicy::none(),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.report.spaces_failed > 0);
        assert!(result.report.spaces_fetched < host.space_count());
        result.dataset.validate().unwrap();
    }

    #[test]
    fn missing_seeds_reported_not_fatal() {
        let host = tiny_host();
        let result = crawl(
            &host,
            &CrawlConfig {
                seeds: vec![0, 100_000],
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.report.spaces_missing, 1);
        assert!(result.report.spaces_fetched >= 1);
    }

    #[test]
    fn single_thread_equals_many_threads() {
        let host = tiny_host();
        let one = crawl(
            &host,
            &CrawlConfig {
                threads: 1,
                seeds: vec![0],
                radius: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let many = crawl(
            &host,
            &CrawlConfig {
                threads: 8,
                seeds: vec![0],
                radius: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            one.dataset, many.dataset,
            "crawl must be schedule-independent"
        );
        assert_eq!(one.space_of, many.space_of);
    }

    #[test]
    fn rate_limited_crawl_is_slower_but_identical() {
        let host = tiny_host();
        let fast = crawl(&host, &CrawlConfig::default()).unwrap();
        let start = std::time::Instant::now();
        let polite = crawl(
            &host,
            &CrawlConfig {
                max_requests_per_second: Some(200.0),
                ..Default::default()
            },
        )
        .unwrap();
        // 30 spaces at 200 req/s with a 200-token burst: the cap only bites
        // once the burst drains, so just assert correctness + wall clock sanity.
        assert_eq!(fast.dataset, polite.dataset);
        assert!(start.elapsed() < Duration::from_secs(10));
        let tight = crawl(
            &host,
            &CrawlConfig {
                max_requests_per_second: Some(1.0),
                max_spaces: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(tight.report.spaces_fetched, 3);
    }

    #[test]
    fn empty_host_crawl() {
        let host = SimulatedHost::new(DatasetBuilder::new().build().unwrap());
        let result = crawl(&host, &CrawlConfig::default()).unwrap();
        assert_eq!(result.report.spaces_fetched, 0);
        assert!(result.dataset.bloggers.is_empty());
    }

    #[test]
    fn stubs_created_for_uncrawled_commenters() {
        // Radius-0 crawl of a single space: commenters on its posts become stubs.
        let host = SimulatedHost::new(generate(&SynthConfig::default()).dataset);
        // Find a space with comments on its posts.
        let full = host.dataset();
        let ix = full.index();
        let busy = full
            .bloggers_enumerated()
            .map(|(id, _)| id)
            .max_by_key(|&b| ix.comments_received(b))
            .unwrap();
        let result = crawl(
            &host,
            &CrawlConfig {
                seeds: vec![busy.index()],
                radius: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.report.spaces_fetched, 1);
        assert!(
            result.dataset.bloggers.len() > 1,
            "commenter stubs expected"
        );
        assert_eq!(result.stub_start, 1);
        result.dataset.validate().unwrap();
    }
}
