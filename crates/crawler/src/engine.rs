//! The multi-threaded crawl engine.
//!
//! Breadth-first over the blogosphere: each frontier layer is fetched by a
//! worker pool (crossbeam scoped threads pulling space ids from a shared
//! cursor), then the next layer is derived from friend links and commenter
//! identities. Layered BFS gives exact radius semantics — a space fetched at
//! layer `d` is exactly `d` hops from the nearest seed — while still keeping
//! all workers busy within a layer.

use crate::assemble::{assemble_dataset, AssembledCrawl};
use crate::config::CrawlConfig;
use crate::host::{BlogHost, FetchError, SpacePage};
use crate::politeness::RateLimiter;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Statistics of one crawl run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CrawlReport {
    /// Spaces fetched successfully.
    pub spaces_fetched: usize,
    /// Spaces given up on after exhausting retries.
    pub spaces_failed: usize,
    /// Spaces that did not exist on the host.
    pub spaces_missing: usize,
    /// Retry attempts performed (beyond first tries).
    pub retries: usize,
    /// Posts collected.
    pub posts: usize,
    /// Comments collected.
    pub comments: usize,
    /// Number of BFS layers processed (0 = seeds only).
    pub depth_reached: usize,
    /// Spaces first reached at each depth.
    pub layer_sizes: Vec<usize>,
    /// Wall-clock duration of the crawl.
    pub elapsed: Duration,
}

/// A completed crawl: the assembled dataset, id mappings and statistics.
#[derive(Clone, Debug)]
pub struct CrawlResult {
    /// Dense, validated dataset (see `assemble` for partial-view policy).
    pub dataset: mass_types::Dataset,
    /// `space_of[i]` = host space id of dataset blogger `i`.
    pub space_of: Vec<usize>,
    /// Index of the first stub blogger.
    pub stub_start: usize,
    /// Crawl statistics.
    pub report: CrawlReport,
}

/// Crawls `host` according to `cfg` and assembles the result.
pub fn crawl(host: &dyn BlogHost, cfg: &CrawlConfig) -> CrawlResult {
    cfg.validate();
    let start = Instant::now();

    let seeds: Vec<usize> = if cfg.seeds.is_empty() {
        (0..host.space_count()).collect()
    } else {
        let mut s: Vec<usize> = cfg.seeds.clone();
        s.sort_unstable();
        s.dedup();
        s
    };

    let mut visited: BTreeSet<usize> = seeds.iter().copied().collect();
    let mut frontier = seeds;
    let mut pages: Vec<SpacePage> = Vec::new();
    let mut report = CrawlReport::default();
    let mut depth = 0usize;
    let limiter = cfg.max_requests_per_second.map(|r| RateLimiter::new(r, r.max(1.0)));

    loop {
        let budget = cfg.max_spaces.saturating_sub(pages.len());
        if budget == 0 || frontier.is_empty() {
            break;
        }
        frontier.truncate(budget);
        report.layer_sizes.push(frontier.len());

        let layer = fetch_layer(host, &frontier, cfg, limiter.as_ref(), &mut report);
        let mut next: BTreeSet<usize> = BTreeSet::new();
        for page in layer {
            for &f in &page.friends {
                next.insert(f);
            }
            for post in &page.posts {
                for &(commenter, _) in &post.comments {
                    next.insert(commenter);
                }
            }
            pages.push(page);
        }
        report.depth_reached = depth;

        if cfg.radius.is_some_and(|r| depth >= r) {
            break;
        }
        depth += 1;
        frontier = next.into_iter().filter(|s| visited.insert(*s)).collect();
    }

    report.spaces_fetched = pages.len();
    report.posts = pages.iter().map(|p| p.posts.len()).sum();
    report.comments =
        pages.iter().flat_map(|p| &p.posts).map(|post| post.comments.len()).sum();
    report.elapsed = start.elapsed();

    let AssembledCrawl { dataset, space_of, stub_start } = assemble_dataset(&pages);
    CrawlResult { dataset, space_of, stub_start, report }
}

/// Fetches one frontier layer with a worker pool. Results are returned in
/// frontier order so the crawl is deterministic regardless of scheduling.
fn fetch_layer(
    host: &dyn BlogHost,
    frontier: &[usize],
    cfg: &CrawlConfig,
    limiter: Option<&RateLimiter>,
    report: &mut CrawlReport,
) -> Vec<SpacePage> {
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Option<SpacePage>)>> =
        Mutex::new(Vec::with_capacity(frontier.len()));
    let retries = AtomicUsize::new(0);
    let missing = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);

    let workers = cfg.threads.min(frontier.len()).max(1);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= frontier.len() {
                    break;
                }
                let space = frontier[idx];
                let mut outcome = None;
                for attempt in 0..=cfg.retries {
                    if let Some(l) = limiter {
                        l.acquire();
                    }
                    match host.fetch_space(space) {
                        Ok(page) => {
                            outcome = Some(page);
                            break;
                        }
                        Err(FetchError::NotFound(_)) => {
                            missing.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(FetchError::Transient(_)) => {
                            if attempt < cfg.retries {
                                retries.fetch_add(1, Ordering::Relaxed);
                            } else {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                results.lock().push((idx, outcome));
            });
        }
    })
    .expect("crawler worker panicked");

    report.retries += retries.load(Ordering::Relaxed);
    report.spaces_missing += missing.load(Ordering::Relaxed);
    report.spaces_failed += failed.load(Ordering::Relaxed);

    let mut collected = results.into_inner();
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().filter_map(|(_, page)| page).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostConfig, SimulatedHost};
    use mass_synth::{generate, SynthConfig};
    use mass_types::DatasetBuilder;

    fn tiny_host() -> SimulatedHost {
        SimulatedHost::new(generate(&SynthConfig::tiny(2)).dataset)
    }

    #[test]
    fn full_crawl_recovers_every_space() {
        let host = tiny_host();
        let result = crawl(&host, &CrawlConfig::default());
        assert_eq!(result.report.spaces_fetched, host.space_count());
        assert_eq!(result.dataset.bloggers.len(), host.space_count());
        assert_eq!(result.dataset.posts.len(), host.dataset().posts.len());
        assert_eq!(result.stub_start, host.space_count());
        result.dataset.validate().unwrap();
    }

    #[test]
    fn full_crawl_preserves_content() {
        let host = tiny_host();
        let result = crawl(&host, &CrawlConfig::default());
        // Space ids are dense on the host, so blogger i maps to space i.
        assert_eq!(result.space_of, (0..host.space_count()).collect::<Vec<_>>());
        for (orig, got) in host.dataset().bloggers.iter().zip(&result.dataset.bloggers) {
            assert_eq!(orig.name, got.name);
            assert_eq!(orig.friends, got.friends);
        }
        for (orig, got) in host.dataset().posts.iter().zip(&result.dataset.posts) {
            assert_eq!(orig.text, got.text);
            assert_eq!(orig.links_to, got.links_to);
            assert_eq!(orig.comments.len(), got.comments.len());
        }
    }

    #[test]
    fn radius_zero_fetches_only_seeds() {
        let host = tiny_host();
        let result = crawl(
            &host,
            &CrawlConfig { seeds: vec![0, 3], radius: Some(0), ..Default::default() },
        );
        assert_eq!(result.report.spaces_fetched, 2);
        assert_eq!(result.report.layer_sizes, vec![2]);
    }

    #[test]
    fn radius_grows_coverage_monotonically() {
        let host = SimulatedHost::new(generate(&SynthConfig::default()).dataset);
        let mut last = 0;
        for r in 0..4 {
            let result = crawl(
                &host,
                &CrawlConfig { seeds: vec![0], radius: Some(r), ..Default::default() },
            );
            assert!(
                result.report.spaces_fetched >= last,
                "radius {r}: {} < {last}",
                result.report.spaces_fetched
            );
            last = result.report.spaces_fetched;
        }
        assert!(last > 1, "radius never expanded beyond the seed");
    }

    #[test]
    fn max_spaces_caps_the_crawl() {
        let host = tiny_host();
        let result = crawl(&host, &CrawlConfig { max_spaces: 5, ..Default::default() });
        assert_eq!(result.report.spaces_fetched, 5);
    }

    #[test]
    fn transient_failures_are_retried() {
        let ds = generate(&SynthConfig::tiny(4)).dataset;
        let host = SimulatedHost::with_config(
            ds,
            HostConfig { failure_rate: 0.4, ..Default::default() },
        );
        let result = crawl(&host, &CrawlConfig { retries: 20, ..Default::default() });
        assert_eq!(result.report.spaces_fetched, host.space_count());
        assert!(result.report.retries > 0, "expected retries with 40% failure rate");
        assert_eq!(result.report.spaces_failed, 0);
    }

    #[test]
    fn exhausted_retries_are_reported() {
        let ds = generate(&SynthConfig::tiny(5)).dataset;
        let host = SimulatedHost::with_config(
            ds,
            HostConfig { failure_rate: 0.95, ..Default::default() },
        );
        let result = crawl(&host, &CrawlConfig { retries: 0, ..Default::default() });
        assert!(result.report.spaces_failed > 0);
        assert!(result.report.spaces_fetched < host.space_count());
        result.dataset.validate().unwrap();
    }

    #[test]
    fn missing_seeds_reported_not_fatal() {
        let host = tiny_host();
        let result = crawl(
            &host,
            &CrawlConfig { seeds: vec![0, 100_000], ..Default::default() },
        );
        assert_eq!(result.report.spaces_missing, 1);
        assert!(result.report.spaces_fetched >= 1);
    }

    #[test]
    fn single_thread_equals_many_threads() {
        let host = tiny_host();
        let one = crawl(&host, &CrawlConfig { threads: 1, seeds: vec![0], radius: Some(2), ..Default::default() });
        let many = crawl(&host, &CrawlConfig { threads: 8, seeds: vec![0], radius: Some(2), ..Default::default() });
        assert_eq!(one.dataset, many.dataset, "crawl must be schedule-independent");
        assert_eq!(one.space_of, many.space_of);
    }

    #[test]
    fn rate_limited_crawl_is_slower_but_identical() {
        let host = tiny_host();
        let fast = crawl(&host, &CrawlConfig::default());
        let start = std::time::Instant::now();
        let polite = crawl(
            &host,
            &CrawlConfig { max_requests_per_second: Some(200.0), ..Default::default() },
        );
        // 30 spaces at 200 req/s with a 200-token burst: the cap only bites
        // once the burst drains, so just assert correctness + wall clock sanity.
        assert_eq!(fast.dataset, polite.dataset);
        assert!(start.elapsed() < Duration::from_secs(10));
        let tight = crawl(
            &host,
            &CrawlConfig {
                max_requests_per_second: Some(1.0),
                max_spaces: 3,
                ..Default::default()
            },
        );
        assert_eq!(tight.report.spaces_fetched, 3);
    }

    #[test]
    fn empty_host_crawl() {
        let host = SimulatedHost::new(DatasetBuilder::new().build().unwrap());
        let result = crawl(&host, &CrawlConfig::default());
        assert_eq!(result.report.spaces_fetched, 0);
        assert!(result.dataset.bloggers.is_empty());
    }

    #[test]
    fn stubs_created_for_uncrawled_commenters() {
        // Radius-0 crawl of a single space: commenters on its posts become stubs.
        let host = SimulatedHost::new(generate(&SynthConfig::default()).dataset);
        // Find a space with comments on its posts.
        let full = host.dataset();
        let ix = full.index();
        let busy = full
            .bloggers_enumerated()
            .map(|(id, _)| id)
            .max_by_key(|&b| ix.comments_received(b))
            .unwrap();
        let result = crawl(
            &host,
            &CrawlConfig { seeds: vec![busy.index()], radius: Some(0), ..Default::default() },
        );
        assert_eq!(result.report.spaces_fetched, 1);
        assert!(result.dataset.bloggers.len() > 1, "commenter stubs expected");
        assert_eq!(result.stub_start, 1);
        result.dataset.validate().unwrap();
    }
}
