//! Crawl configuration.

/// Parameters of one crawl run, mirroring the user-facing options of
/// Section IV.
#[derive(Clone, Debug, PartialEq)]
pub struct CrawlConfig {
    /// Seed spaces the crawl starts from. Empty means "crawl the whole
    /// host" (the paper's offline full-blogosphere mode).
    pub seeds: Vec<usize>,
    /// Maximum link distance from a seed (`None` = unbounded). Friendship
    /// links define distance, matching "find influential bloggers in
    /// her/his friend network".
    pub radius: Option<usize>,
    /// Worker threads.
    pub threads: usize,
    /// Retry attempts per space on transient failures.
    pub retries: usize,
    /// Stop after this many spaces (safety valve for unbounded crawls).
    pub max_spaces: usize,
    /// Politeness cap: total fetch attempts per second across all workers
    /// (`None` = unlimited, for in-process hosts).
    pub max_requests_per_second: Option<f64>,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            seeds: Vec::new(),
            radius: None,
            threads: 4,
            retries: 3,
            max_spaces: usize::MAX,
            max_requests_per_second: None,
        }
    }
}

impl CrawlConfig {
    /// Checks parameter sanity.
    ///
    /// # Panics
    /// Panics on a zero thread count or zero space budget.
    pub fn validate(&self) {
        assert!(self.threads > 0, "need at least one crawler thread");
        assert!(self.max_spaces > 0, "max_spaces must be positive");
        if let Some(r) = self.max_requests_per_second {
            assert!(r > 0.0 && r.is_finite(), "request rate must be positive, got {r}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_crawls_everything() {
        let c = CrawlConfig::default();
        c.validate();
        assert!(c.seeds.is_empty());
        assert_eq!(c.radius, None);
    }

    #[test]
    #[should_panic(expected = "request rate")]
    fn zero_rate_rejected() {
        CrawlConfig { max_requests_per_second: Some(0.0), ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "thread")]
    fn zero_threads_rejected() {
        CrawlConfig { threads: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "max_spaces")]
    fn zero_budget_rejected() {
        CrawlConfig { max_spaces: 0, ..Default::default() }.validate();
    }
}
