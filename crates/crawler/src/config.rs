//! Crawl configuration.

use crate::backoff::BackoffPolicy;
use crate::breaker::BreakerConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Why a configuration was rejected. A library must not abort the process
/// on bad user input, so validation returns this instead of panicking.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `threads` was zero.
    ZeroThreads,
    /// `max_spaces` was zero.
    ZeroMaxSpaces,
    /// `max_requests_per_second` was zero, negative, or non-finite.
    BadRequestRate(f64),
    /// A host fault probability was outside its valid range.
    BadProbability {
        /// Which knob was out of range.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Backoff policy had a non-positive multiplier or zero initial delay.
    BadBackoff(String),
    /// Circuit-breaker thresholds were out of range.
    BadBreaker(String),
    /// `checkpoint_every_layers` was zero while checkpointing was enabled.
    ZeroCheckpointInterval,
    /// `resume` was requested without a `checkpoint_dir` to resume from.
    ResumeWithoutDir,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "need at least one crawler thread"),
            ConfigError::ZeroMaxSpaces => write!(f, "max_spaces must be positive"),
            ConfigError::BadRequestRate(r) => {
                write!(f, "request rate must be positive and finite, got {r}")
            }
            ConfigError::BadProbability { what, value } => {
                write!(f, "{what} must be a probability in [0, 1), got {value}")
            }
            ConfigError::BadBackoff(msg) => write!(f, "invalid backoff policy: {msg}"),
            ConfigError::BadBreaker(msg) => write!(f, "invalid circuit breaker config: {msg}"),
            ConfigError::ZeroCheckpointInterval => {
                write!(f, "checkpoint_every_layers must be positive")
            }
            ConfigError::ResumeWithoutDir => {
                write!(f, "resume requested but no checkpoint_dir configured")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of one crawl run, mirroring the user-facing options of
/// Section IV plus the resilience knobs (DESIGN.md "Fault model & recovery").
#[derive(Clone, Debug, PartialEq)]
pub struct CrawlConfig {
    /// Seed spaces the crawl starts from. Empty means "crawl the whole
    /// host" (the paper's offline full-blogosphere mode).
    pub seeds: Vec<usize>,
    /// Maximum link distance from a seed (`None` = unbounded). Friendship
    /// links define distance, matching "find influential bloggers in
    /// her/his friend network".
    pub radius: Option<usize>,
    /// Worker threads.
    pub threads: usize,
    /// Retry attempts per space on transient failures.
    pub retries: usize,
    /// Stop after this many spaces (safety valve for unbounded crawls).
    pub max_spaces: usize,
    /// Politeness cap: total fetch attempts per second across all workers
    /// (`None` = unlimited, for in-process hosts).
    pub max_requests_per_second: Option<f64>,
    /// Delay schedule between retry attempts on the same space.
    pub backoff: BackoffPolicy,
    /// Wall-clock allowance per space across all its retry attempts
    /// (`None` = unbounded). Once exceeded, remaining retries are abandoned
    /// and the space counts as failed — a tarpitted host cannot pin a
    /// worker forever.
    pub fetch_deadline: Option<Duration>,
    /// Overall wall-clock budget for the whole crawl (`None` = unbounded).
    /// Checked between fetches and at layer boundaries; when exceeded the
    /// crawl stops and reports `budget_exhausted` instead of hanging.
    pub time_budget: Option<Duration>,
    /// Shared circuit breaker over transient host errors (`None` = off).
    pub breaker: Option<BreakerConfig>,
    /// Directory for periodic crawl checkpoints (`None` = no checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every this many completed BFS layers.
    pub checkpoint_every_layers: usize,
    /// Resume from the checkpoint in `checkpoint_dir` if one exists
    /// (otherwise start fresh and checkpoint into it).
    pub resume: bool,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            seeds: Vec::new(),
            radius: None,
            threads: 4,
            retries: 3,
            max_spaces: usize::MAX,
            max_requests_per_second: None,
            backoff: BackoffPolicy::default(),
            fetch_deadline: None,
            time_budget: None,
            breaker: None,
            checkpoint_dir: None,
            checkpoint_every_layers: 1,
            resume: false,
        }
    }
}

impl CrawlConfig {
    /// Checks parameter sanity; the crawl refuses to start on `Err`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.max_spaces == 0 {
            return Err(ConfigError::ZeroMaxSpaces);
        }
        if let Some(r) = self.max_requests_per_second {
            if !(r > 0.0 && r.is_finite()) {
                return Err(ConfigError::BadRequestRate(r));
            }
        }
        self.backoff.validate()?;
        if let Some(b) = &self.breaker {
            b.validate()?;
        }
        if self.checkpoint_dir.is_some() && self.checkpoint_every_layers == 0 {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        if self.resume && self.checkpoint_dir.is_none() {
            return Err(ConfigError::ResumeWithoutDir);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_crawls_everything() {
        let c = CrawlConfig::default();
        c.validate().unwrap();
        assert!(c.seeds.is_empty());
        assert_eq!(c.radius, None);
        assert!(c.breaker.is_none());
        assert!(c.checkpoint_dir.is_none());
    }

    #[test]
    fn zero_rate_rejected() {
        let err = CrawlConfig {
            max_requests_per_second: Some(0.0),
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::BadRequestRate(0.0));
        assert!(err.to_string().contains("request rate"));
    }

    #[test]
    fn zero_threads_rejected() {
        let err = CrawlConfig {
            threads: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroThreads);
        assert!(err.to_string().contains("thread"));
    }

    #[test]
    fn zero_budget_rejected() {
        let err = CrawlConfig {
            max_spaces: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroMaxSpaces);
        assert!(err.to_string().contains("max_spaces"));
    }

    #[test]
    fn resume_requires_a_directory() {
        let err = CrawlConfig {
            resume: true,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ResumeWithoutDir);
    }

    #[test]
    fn zero_checkpoint_interval_rejected() {
        let err = CrawlConfig {
            checkpoint_dir: Some("/tmp/x".into()),
            checkpoint_every_layers: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroCheckpointInterval);
    }

    #[test]
    fn validation_never_panics_on_weird_values() {
        let cfg = CrawlConfig {
            max_requests_per_second: Some(f64::NAN),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn errors_are_displayable() {
        for e in [
            ConfigError::ZeroThreads,
            ConfigError::ZeroMaxSpaces,
            ConfigError::BadRequestRate(-1.0),
            ConfigError::BadProbability {
                what: "failure_rate",
                value: 2.0,
            },
            ConfigError::BadBackoff("x".into()),
            ConfigError::BadBreaker("y".into()),
            ConfigError::ZeroCheckpointInterval,
            ConfigError::ResumeWithoutDir,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
