//! The blog-hosting service abstraction and its simulated implementation.
//!
//! Besides the happy path, [`SimulatedHost`] can inject every fault class
//! the resilience layer must survive (see DESIGN.md "Fault model &
//! recovery"): transient failures, throttling, corrupt payloads, whole-host
//! burst outages, chronically flaky spaces, tarpit latency, and spaces that
//! persistently serve mangled pages. All per-space faults are deterministic
//! in `(seed, space_id, per-space attempt#)`, so whether a space ultimately
//! succeeds under `retries` attempts does not depend on thread scheduling —
//! the property the chaos tests' schedule-independence assertions rest on.

use crate::config::ConfigError;
use mass_types::Dataset;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A post as served by the host, with *global* identifiers (the crawler
/// remaps them into a dense dataset afterwards).
#[derive(Clone, Debug, PartialEq)]
pub struct PostView {
    /// Host-global post id.
    pub global_id: usize,
    /// Title.
    pub title: String,
    /// Body text.
    pub text: String,
    /// Host-global post ids this post links to.
    pub links_to: Vec<usize>,
    /// `(commenter space id, comment text)` pairs in arrival order.
    pub comments: Vec<(usize, String)>,
    /// Ground-truth domain index if the host exposes one (synthetic corpora
    /// do; a real host would not).
    pub domain_hint: Option<usize>,
}

/// One blogger's space as served by the host.
#[derive(Clone, Debug, PartialEq)]
pub struct SpacePage {
    /// Host-global space id.
    pub space_id: usize,
    /// Display name.
    pub name: String,
    /// Profile text.
    pub profile: String,
    /// Space ids this blogger links to (friend list / blogroll).
    pub friends: Vec<usize>,
    /// The blogger's posts.
    pub posts: Vec<PostView>,
}

/// Fetch failures a crawler must tolerate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FetchError {
    /// The space id does not exist on this host.
    NotFound(usize),
    /// Transient failure (timeout, connection reset); retrying may succeed.
    Transient(usize),
    /// The host rejected the request for rate reasons (HTTP 429/503);
    /// retrying after a pause may succeed, and bursts of these should trip
    /// the circuit breaker.
    Throttled(usize),
    /// The response arrived but its payload failed integrity checks
    /// (truncated body, garbled XML); retrying may fetch a clean copy.
    Corrupt(usize),
}

impl FetchError {
    /// Whether retrying the same fetch can plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, FetchError::NotFound(_))
    }

    /// The space the error concerns.
    pub fn space(&self) -> usize {
        match self {
            FetchError::NotFound(s)
            | FetchError::Transient(s)
            | FetchError::Throttled(s)
            | FetchError::Corrupt(s) => *s,
        }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::NotFound(s) => write!(f, "space {s} not found"),
            FetchError::Transient(s) => write!(f, "transient fetch failure for space {s}"),
            FetchError::Throttled(s) => write!(f, "host throttled fetch of space {s}"),
            FetchError::Corrupt(s) => write!(f, "corrupt payload fetching space {s}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A blog-hosting service the crawler can walk. Implementations must be
/// thread-safe: the crawler fetches from a worker pool.
pub trait BlogHost: Send + Sync {
    /// Fetches one space page.
    fn fetch_space(&self, space_id: usize) -> Result<SpacePage, FetchError>;

    /// Number of spaces the host serves (used for full-host crawls; a real
    /// crawler would stream a directory instead).
    fn space_count(&self) -> usize;
}

/// Tuning for [`SimulatedHost`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostConfig {
    /// Probability that any given fetch attempt fails transiently.
    /// Failures are deterministic in `(space_id, attempt#)`, so tests and
    /// retries are reproducible regardless of thread scheduling.
    pub failure_rate: f64,
    /// Artificial per-fetch latency (simulates network RTT); keep at zero
    /// for tests, set a few hundred microseconds for throughput benches.
    pub latency: Duration,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            failure_rate: 0.0,
            latency: Duration::ZERO,
        }
    }
}

/// A deterministic whole-host outage schedule: out of every `period`
/// consecutive fetch attempts (counted host-globally), the first `down`
/// fail transiently. Models the host falling over and recovering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstOutage {
    /// Cycle length in fetch attempts.
    pub period: u64,
    /// Attempts at the start of each cycle that fail.
    pub down: u64,
}

/// Fault-injection plan layered on top of [`HostConfig`]; all rates are
/// per-attempt probabilities resolved deterministically from `seed`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed that decorrelates this plan's fault streams from other plans.
    pub seed: u64,
    /// Probability an attempt is rejected with [`FetchError::Throttled`].
    pub throttle_rate: f64,
    /// Probability an attempt returns a [`FetchError::Corrupt`] payload.
    pub corrupt_rate: f64,
    /// Spaces with their own elevated transient-failure rate, overriding
    /// the host-wide `failure_rate` (chronic flakiness).
    pub chronic_flaky: BTreeMap<usize, f64>,
    /// Spaces that *persistently* serve mangled pages: the page parses but
    /// carries a duplicated post id (or, for postless spaces, a self-link),
    /// so dataset assembly must quarantine it.
    pub mangled_spaces: BTreeSet<usize>,
    /// Periodic whole-host outages, keyed on the host-global attempt
    /// counter. Note: unlike the per-space faults this makes *outcomes*
    /// depend on fetch arrival order, so tests using it assert validity and
    /// termination rather than cross-schedule equality.
    pub burst: Option<BurstOutage>,
    /// Probability an attempt is tarpitted: the host stalls for
    /// `tarpit_latency` before answering. Pair with a `fetch_deadline`.
    pub tarpit_rate: f64,
    /// Stall duration for tarpitted attempts.
    pub tarpit_latency: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            throttle_rate: 0.0,
            corrupt_rate: 0.0,
            chronic_flaky: BTreeMap::new(),
            mangled_spaces: BTreeSet::new(),
            burst: None,
            tarpit_rate: 0.0,
            tarpit_latency: Duration::ZERO,
        }
    }
}

impl FaultPlan {
    /// Checks that every rate is a probability and the outage schedule is
    /// well formed.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let rates = [
            ("throttle_rate", self.throttle_rate),
            ("corrupt_rate", self.corrupt_rate),
            ("tarpit_rate", self.tarpit_rate),
        ];
        for (what, value) in rates {
            if !(0.0..1.0).contains(&value) {
                return Err(ConfigError::BadProbability { what, value });
            }
        }
        for &rate in self.chronic_flaky.values() {
            if !(0.0..1.0).contains(&rate) {
                return Err(ConfigError::BadProbability {
                    what: "chronic_flaky",
                    value: rate,
                });
            }
        }
        if let Some(b) = self.burst {
            if b.period == 0 || b.down >= b.period {
                return Err(ConfigError::BadProbability {
                    what: "burst outage (down must be < period, period > 0)",
                    value: b.down as f64,
                });
            }
        }
        Ok(())
    }
}

/// Salts keeping the per-attempt fault streams independent of each other.
mod salt {
    pub const TRANSIENT: u64 = 0x7452_414e;
    pub const THROTTLE: u64 = 0x5448_524f;
    pub const CORRUPT: u64 = 0x434f_5252;
    pub const TARPIT: u64 = 0x5441_5250;
}

/// An in-process blog host backed by a [`Dataset`] — the MSN-Spaces
/// substitute. Exposes exactly the view a per-space scrape would see.
#[derive(Debug)]
pub struct SimulatedHost {
    dataset: Dataset,
    /// Posts of each space, precomputed (global post ids).
    posts_by_space: Vec<Vec<usize>>,
    config: HostConfig,
    faults: FaultPlan,
    /// Host-global attempt counter (stats + burst-outage clock).
    fetch_attempts: AtomicU64,
    fetch_failures: AtomicU64,
    /// Per-space attempt counters: fault decisions key on these so the
    /// outcome of "space s, its k-th attempt" is schedule-independent.
    space_attempts: Vec<AtomicU64>,
}

impl SimulatedHost {
    /// Wraps a dataset with default (fault-free, zero-latency) behaviour.
    pub fn new(dataset: Dataset) -> Self {
        Self::with_config(dataset, HostConfig::default())
            .expect("default host config is always valid")
    }

    /// Wraps a dataset with explicit latency/failure behaviour.
    pub fn with_config(dataset: Dataset, config: HostConfig) -> Result<Self, ConfigError> {
        Self::with_faults(dataset, config, FaultPlan::default())
    }

    /// Wraps a dataset with a full fault-injection plan.
    pub fn with_faults(
        dataset: Dataset,
        config: HostConfig,
        faults: FaultPlan,
    ) -> Result<Self, ConfigError> {
        if !(0.0..1.0).contains(&config.failure_rate) {
            return Err(ConfigError::BadProbability {
                what: "failure_rate",
                value: config.failure_rate,
            });
        }
        faults.validate()?;
        let mut posts_by_space = vec![Vec::new(); dataset.bloggers.len()];
        for (k, post) in dataset.posts.iter().enumerate() {
            posts_by_space[post.author.index()].push(k);
        }
        let space_attempts = (0..dataset.bloggers.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        Ok(SimulatedHost {
            dataset,
            posts_by_space,
            config,
            faults,
            fetch_attempts: AtomicU64::new(0),
            fetch_failures: AtomicU64::new(0),
            space_attempts,
        })
    }

    /// Total fetch attempts served (including failed ones).
    pub fn attempts(&self) -> u64 {
        self.fetch_attempts.load(Ordering::Relaxed)
    }

    /// Fetches that failed transiently (including throttles and corruption).
    pub fn failures(&self) -> u64 {
        self.fetch_failures.load(Ordering::Relaxed)
    }

    /// The wrapped dataset (e.g. to compare a crawl against the full truth).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Uniform draw in [0, 1] deterministic in the fault stream coordinates.
    fn unit(&self, salt: u64, space_id: usize, attempt: u64) -> f64 {
        let mut h = DefaultHasher::new();
        self.faults.seed.hash(&mut h);
        salt.hash(&mut h);
        (space_id as u64).hash(&mut h);
        attempt.hash(&mut h);
        h.finish() as f64 / u64::MAX as f64
    }

    /// The injected fault, if any, for this attempt on `space_id`.
    fn fault_for(&self, space_id: usize, global_attempt: u64) -> Option<FetchError> {
        if let Some(b) = self.faults.burst {
            if global_attempt % b.period < b.down {
                return Some(FetchError::Transient(space_id));
            }
        }
        let attempt = self.space_attempts[space_id].fetch_add(1, Ordering::Relaxed);
        if self.faults.throttle_rate > 0.0
            && self.unit(salt::THROTTLE, space_id, attempt) < self.faults.throttle_rate
        {
            return Some(FetchError::Throttled(space_id));
        }
        if self.faults.corrupt_rate > 0.0
            && self.unit(salt::CORRUPT, space_id, attempt) < self.faults.corrupt_rate
        {
            return Some(FetchError::Corrupt(space_id));
        }
        let failure_rate = self
            .faults
            .chronic_flaky
            .get(&space_id)
            .copied()
            .unwrap_or(self.config.failure_rate);
        if failure_rate > 0.0 && self.unit(salt::TRANSIENT, space_id, attempt) < failure_rate {
            return Some(FetchError::Transient(space_id));
        }
        if self.faults.tarpit_rate > 0.0
            && self.unit(salt::TARPIT, space_id, attempt) < self.faults.tarpit_rate
            && !self.faults.tarpit_latency.is_zero()
        {
            std::thread::sleep(self.faults.tarpit_latency);
        }
        None
    }

    /// Persistently damages a page the way a buggy host mirror would:
    /// a duplicated post id, or a self-referential friend link for spaces
    /// with fewer than one post to duplicate.
    fn mangle(&self, page: &mut SpacePage) {
        if page.posts.len() >= 2 {
            page.posts[1].global_id = page.posts[0].global_id;
        } else if page.posts.len() == 1 {
            let dup = page.posts[0].clone();
            page.posts.push(dup);
        } else {
            page.friends.push(page.space_id);
        }
    }
}

impl BlogHost for SimulatedHost {
    fn fetch_space(&self, space_id: usize) -> Result<SpacePage, FetchError> {
        let global_attempt = self.fetch_attempts.fetch_add(1, Ordering::Relaxed);
        if !self.config.latency.is_zero() {
            std::thread::sleep(self.config.latency);
        }
        if space_id >= self.dataset.bloggers.len() {
            return Err(FetchError::NotFound(space_id));
        }
        if let Some(err) = self.fault_for(space_id, global_attempt) {
            self.fetch_failures.fetch_add(1, Ordering::Relaxed);
            return Err(err);
        }
        let blogger = &self.dataset.bloggers[space_id];
        let posts = self.posts_by_space[space_id]
            .iter()
            .map(|&k| {
                let p = &self.dataset.posts[k];
                PostView {
                    global_id: k,
                    title: p.title.clone(),
                    text: p.text.clone(),
                    links_to: p.links_to.iter().map(|l| l.index()).collect(),
                    comments: p
                        .comments
                        .iter()
                        .map(|c| (c.commenter.index(), c.text.clone()))
                        .collect(),
                    domain_hint: p.true_domain.map(|d| d.index()),
                }
            })
            .collect();
        let mut page = SpacePage {
            space_id,
            name: blogger.name.clone(),
            profile: blogger.profile.clone(),
            friends: blogger.friends.iter().map(|f| f.index()).collect(),
            posts,
        };
        if self.faults.mangled_spaces.contains(&space_id) {
            self.mangle(&mut page);
        }
        Ok(page)
    }

    fn space_count(&self) -> usize {
        self.dataset.bloggers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mass_types::{DatasetBuilder, Sentiment};

    fn host() -> SimulatedHost {
        let mut b = DatasetBuilder::new();
        let a = b.blogger_with_profile("Amery", "cs blogger");
        let bob = b.blogger("Bob");
        let p0 = b.post(a, "Post1", "programming skills");
        let p1 = b.post(bob, "Post3", "more cs");
        b.comment(p0, bob, "agree", Some(Sentiment::Positive));
        b.link_posts(p1, p0);
        b.friend(bob, a);
        SimulatedHost::new(b.build().unwrap())
    }

    #[test]
    fn serves_space_pages() {
        let h = host();
        let page = h.fetch_space(0).unwrap();
        assert_eq!(page.name, "Amery");
        assert_eq!(page.profile, "cs blogger");
        assert_eq!(page.posts.len(), 1);
        assert_eq!(page.posts[0].comments, vec![(1, "agree".to_string())]);
        assert!(page.friends.is_empty());

        let bob = h.fetch_space(1).unwrap();
        assert_eq!(bob.friends, vec![0]);
        assert_eq!(bob.posts[0].links_to, vec![0]);
        assert_eq!(h.space_count(), 2);
    }

    #[test]
    fn unknown_space_is_not_found() {
        assert_eq!(host().fetch_space(99), Err(FetchError::NotFound(99)));
    }

    #[test]
    fn counts_attempts() {
        let h = host();
        let _ = h.fetch_space(0);
        let _ = h.fetch_space(1);
        let _ = h.fetch_space(99);
        assert_eq!(h.attempts(), 3);
        assert_eq!(h.failures(), 0);
    }

    #[test]
    fn failure_injection_is_transient_and_counted() {
        let ds = host().dataset().clone();
        let h = SimulatedHost::with_config(
            ds,
            HostConfig {
                failure_rate: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let mut failures = 0;
        let mut successes = 0;
        for _ in 0..200 {
            match h.fetch_space(0) {
                Ok(_) => successes += 1,
                Err(FetchError::Transient(0)) => failures += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failures > 30, "failures: {failures}");
        assert!(successes > 30, "successes: {successes}");
        assert_eq!(h.failures(), failures);
    }

    #[test]
    fn failure_outcomes_are_schedule_independent() {
        // The k-th attempt on a given space must have the same outcome no
        // matter what other fetches happen in between.
        let ds = host().dataset().clone();
        let cfg = HostConfig {
            failure_rate: 0.4,
            ..Default::default()
        };
        let a = SimulatedHost::with_config(ds.clone(), cfg).unwrap();
        let b = SimulatedHost::with_config(ds, cfg).unwrap();
        let seq_a: Vec<bool> = (0..20).map(|_| a.fetch_space(0).is_ok()).collect();
        // Interleave unrelated fetches on host b; space 0's stream must match.
        let mut seq_b = Vec::new();
        for _ in 0..20 {
            let _ = b.fetch_space(1);
            seq_b.push(b.fetch_space(0).is_ok());
            let _ = b.fetch_space(1);
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn invalid_failure_rate_rejected() {
        let err = SimulatedHost::with_config(
            DatasetBuilder::new().build().unwrap(),
            HostConfig {
                failure_rate: 1.0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BadProbability {
                what: "failure_rate",
                value: 1.0
            }
        );
        assert!(err.to_string().contains("failure_rate"));
    }

    #[test]
    fn invalid_fault_plan_rejected() {
        let ds = DatasetBuilder::new().build().unwrap();
        let bad = FaultPlan {
            throttle_rate: 1.5,
            ..Default::default()
        };
        assert!(SimulatedHost::with_faults(ds.clone(), HostConfig::default(), bad).is_err());
        let bad = FaultPlan {
            burst: Some(BurstOutage { period: 4, down: 4 }),
            ..Default::default()
        };
        assert!(SimulatedHost::with_faults(ds, HostConfig::default(), bad).is_err());
    }

    #[test]
    fn throttling_and_corruption_are_distinct_errors() {
        let ds = host().dataset().clone();
        let h = SimulatedHost::with_faults(
            ds,
            HostConfig::default(),
            FaultPlan {
                seed: 7,
                throttle_rate: 0.3,
                corrupt_rate: 0.3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut throttled = 0;
        let mut corrupt = 0;
        let mut ok = 0;
        for _ in 0..200 {
            match h.fetch_space(0) {
                Ok(_) => ok += 1,
                Err(FetchError::Throttled(0)) => throttled += 1,
                Err(FetchError::Corrupt(0)) => corrupt += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(throttled > 20, "throttled: {throttled}");
        assert!(corrupt > 20, "corrupt: {corrupt}");
        assert!(ok > 50, "ok: {ok}");
        assert_eq!(h.failures() as usize, throttled + corrupt);
        assert!(FetchError::Throttled(0).is_retryable());
        assert!(FetchError::Corrupt(0).is_retryable());
        assert!(!FetchError::NotFound(0).is_retryable());
    }

    #[test]
    fn burst_outage_downs_whole_host() {
        let ds = host().dataset().clone();
        let h = SimulatedHost::with_faults(
            ds,
            HostConfig::default(),
            FaultPlan {
                burst: Some(BurstOutage {
                    period: 10,
                    down: 4,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        let outcomes: Vec<bool> = (0..20).map(|i| h.fetch_space(i % 2).is_ok()).collect();
        // First 4 of every 10 attempts are down.
        let expect: Vec<bool> = (0..20u64).map(|g| g % 10 >= 4).collect();
        assert_eq!(outcomes, expect);
    }

    #[test]
    fn chronic_flaky_space_fails_more() {
        let ds = host().dataset().clone();
        let h = SimulatedHost::with_faults(
            ds,
            HostConfig::default(),
            FaultPlan {
                seed: 3,
                chronic_flaky: [(0usize, 0.9f64)].into_iter().collect(),
                ..Default::default()
            },
        )
        .unwrap();
        let flaky_fail = (0..100).filter(|_| h.fetch_space(0).is_err()).count();
        let healthy_fail = (0..100).filter(|_| h.fetch_space(1).is_err()).count();
        assert!(flaky_fail > 70, "flaky space failed only {flaky_fail}/100");
        assert_eq!(healthy_fail, 0, "healthy space must be unaffected");
    }

    #[test]
    fn mangled_space_serves_duplicate_post_ids() {
        let ds = host().dataset().clone();
        let h = SimulatedHost::with_faults(
            ds,
            HostConfig::default(),
            FaultPlan {
                mangled_spaces: [0usize].into_iter().collect(),
                ..Default::default()
            },
        )
        .unwrap();
        let page = h.fetch_space(0).unwrap();
        assert_eq!(page.posts.len(), 2, "single post should be duplicated");
        assert_eq!(page.posts[0].global_id, page.posts[1].global_id);
        let clean = h.fetch_space(1).unwrap();
        let mut ids: Vec<usize> = clean.posts.iter().map(|p| p.global_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), clean.posts.len(), "unmangled space stays clean");
    }

    #[test]
    fn tarpit_delays_responses() {
        let ds = host().dataset().clone();
        let h = SimulatedHost::with_faults(
            ds,
            HostConfig::default(),
            FaultPlan {
                tarpit_rate: 0.999,
                tarpit_latency: Duration::from_millis(5),
                ..Default::default()
            },
        )
        .unwrap();
        let start = std::time::Instant::now();
        let _ = h.fetch_space(0);
        assert!(
            start.elapsed() >= Duration::from_millis(4),
            "tarpit should stall"
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(FetchError::NotFound(3).to_string(), "space 3 not found");
        assert!(FetchError::Transient(1).to_string().contains("transient"));
        assert!(FetchError::Throttled(2).to_string().contains("throttled"));
        assert!(FetchError::Corrupt(4).to_string().contains("corrupt"));
        assert_eq!(FetchError::Throttled(2).space(), 2);
    }
}
