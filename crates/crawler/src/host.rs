//! The blog-hosting service abstraction and its simulated implementation.

use mass_types::Dataset;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A post as served by the host, with *global* identifiers (the crawler
/// remaps them into a dense dataset afterwards).
#[derive(Clone, Debug, PartialEq)]
pub struct PostView {
    /// Host-global post id.
    pub global_id: usize,
    /// Title.
    pub title: String,
    /// Body text.
    pub text: String,
    /// Host-global post ids this post links to.
    pub links_to: Vec<usize>,
    /// `(commenter space id, comment text)` pairs in arrival order.
    pub comments: Vec<(usize, String)>,
    /// Ground-truth domain index if the host exposes one (synthetic corpora
    /// do; a real host would not).
    pub domain_hint: Option<usize>,
}

/// One blogger's space as served by the host.
#[derive(Clone, Debug, PartialEq)]
pub struct SpacePage {
    /// Host-global space id.
    pub space_id: usize,
    /// Display name.
    pub name: String,
    /// Profile text.
    pub profile: String,
    /// Space ids this blogger links to (friend list / blogroll).
    pub friends: Vec<usize>,
    /// The blogger's posts.
    pub posts: Vec<PostView>,
}

/// Fetch failures a crawler must tolerate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FetchError {
    /// The space id does not exist on this host.
    NotFound(usize),
    /// Transient failure (timeout, throttling); retrying may succeed.
    Transient(usize),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::NotFound(s) => write!(f, "space {s} not found"),
            FetchError::Transient(s) => write!(f, "transient fetch failure for space {s}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A blog-hosting service the crawler can walk. Implementations must be
/// thread-safe: the crawler fetches from a worker pool.
pub trait BlogHost: Send + Sync {
    /// Fetches one space page.
    fn fetch_space(&self, space_id: usize) -> Result<SpacePage, FetchError>;

    /// Number of spaces the host serves (used for full-host crawls; a real
    /// crawler would stream a directory instead).
    fn space_count(&self) -> usize;
}

/// Tuning for [`SimulatedHost`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostConfig {
    /// Probability that any given fetch attempt fails transiently.
    /// Failures are deterministic in `(space_id, attempt#)`, so tests and
    /// retries are reproducible regardless of thread scheduling.
    pub failure_rate: f64,
    /// Artificial per-fetch latency (simulates network RTT); keep at zero
    /// for tests, set a few hundred microseconds for throughput benches.
    pub latency: Duration,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig { failure_rate: 0.0, latency: Duration::ZERO }
    }
}

/// An in-process blog host backed by a [`Dataset`] — the MSN-Spaces
/// substitute. Exposes exactly the view a per-space scrape would see.
#[derive(Debug)]
pub struct SimulatedHost {
    dataset: Dataset,
    /// Posts of each space, precomputed (global post ids).
    posts_by_space: Vec<Vec<usize>>,
    config: HostConfig,
    fetch_attempts: AtomicU64,
    fetch_failures: AtomicU64,
}

impl SimulatedHost {
    /// Wraps a dataset with default (fault-free, zero-latency) behaviour.
    pub fn new(dataset: Dataset) -> Self {
        Self::with_config(dataset, HostConfig::default())
    }

    /// Wraps a dataset with explicit latency/failure behaviour.
    pub fn with_config(dataset: Dataset, config: HostConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.failure_rate),
            "failure_rate must be in [0,1), got {}",
            config.failure_rate
        );
        let mut posts_by_space = vec![Vec::new(); dataset.bloggers.len()];
        for (k, post) in dataset.posts.iter().enumerate() {
            posts_by_space[post.author.index()].push(k);
        }
        SimulatedHost {
            dataset,
            posts_by_space,
            config,
            fetch_attempts: AtomicU64::new(0),
            fetch_failures: AtomicU64::new(0),
        }
    }

    /// Total fetch attempts served (including failed ones).
    pub fn attempts(&self) -> u64 {
        self.fetch_attempts.load(Ordering::Relaxed)
    }

    /// Fetches that failed transiently.
    pub fn failures(&self) -> u64 {
        self.fetch_failures.load(Ordering::Relaxed)
    }

    /// The wrapped dataset (e.g. to compare a crawl against the full truth).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn should_fail(&self, space_id: usize, attempt: u64) -> bool {
        if self.config.failure_rate <= 0.0 {
            return false;
        }
        let mut h = DefaultHasher::new();
        (space_id as u64).hash(&mut h);
        attempt.hash(&mut h);
        (h.finish() as f64 / u64::MAX as f64) < self.config.failure_rate
    }
}

impl BlogHost for SimulatedHost {
    fn fetch_space(&self, space_id: usize) -> Result<SpacePage, FetchError> {
        let attempt = self.fetch_attempts.fetch_add(1, Ordering::Relaxed);
        if !self.config.latency.is_zero() {
            std::thread::sleep(self.config.latency);
        }
        if space_id >= self.dataset.bloggers.len() {
            return Err(FetchError::NotFound(space_id));
        }
        if self.should_fail(space_id, attempt) {
            self.fetch_failures.fetch_add(1, Ordering::Relaxed);
            return Err(FetchError::Transient(space_id));
        }
        let blogger = &self.dataset.bloggers[space_id];
        let posts = self.posts_by_space[space_id]
            .iter()
            .map(|&k| {
                let p = &self.dataset.posts[k];
                PostView {
                    global_id: k,
                    title: p.title.clone(),
                    text: p.text.clone(),
                    links_to: p.links_to.iter().map(|l| l.index()).collect(),
                    comments: p
                        .comments
                        .iter()
                        .map(|c| (c.commenter.index(), c.text.clone()))
                        .collect(),
                    domain_hint: p.true_domain.map(|d| d.index()),
                }
            })
            .collect();
        Ok(SpacePage {
            space_id,
            name: blogger.name.clone(),
            profile: blogger.profile.clone(),
            friends: blogger.friends.iter().map(|f| f.index()).collect(),
            posts,
        })
    }

    fn space_count(&self) -> usize {
        self.dataset.bloggers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mass_types::{DatasetBuilder, Sentiment};

    fn host() -> SimulatedHost {
        let mut b = DatasetBuilder::new();
        let a = b.blogger_with_profile("Amery", "cs blogger");
        let bob = b.blogger("Bob");
        let p0 = b.post(a, "Post1", "programming skills");
        let p1 = b.post(bob, "Post3", "more cs");
        b.comment(p0, bob, "agree", Some(Sentiment::Positive));
        b.link_posts(p1, p0);
        b.friend(bob, a);
        SimulatedHost::new(b.build().unwrap())
    }

    #[test]
    fn serves_space_pages() {
        let h = host();
        let page = h.fetch_space(0).unwrap();
        assert_eq!(page.name, "Amery");
        assert_eq!(page.profile, "cs blogger");
        assert_eq!(page.posts.len(), 1);
        assert_eq!(page.posts[0].comments, vec![(1, "agree".to_string())]);
        assert!(page.friends.is_empty());

        let bob = h.fetch_space(1).unwrap();
        assert_eq!(bob.friends, vec![0]);
        assert_eq!(bob.posts[0].links_to, vec![0]);
        assert_eq!(h.space_count(), 2);
    }

    #[test]
    fn unknown_space_is_not_found() {
        assert_eq!(host().fetch_space(99), Err(FetchError::NotFound(99)));
    }

    #[test]
    fn counts_attempts() {
        let h = host();
        let _ = h.fetch_space(0);
        let _ = h.fetch_space(1);
        let _ = h.fetch_space(99);
        assert_eq!(h.attempts(), 3);
        assert_eq!(h.failures(), 0);
    }

    #[test]
    fn failure_injection_is_transient_and_counted() {
        let ds = host().dataset().clone();
        let h = SimulatedHost::with_config(
            ds,
            HostConfig { failure_rate: 0.5, ..Default::default() },
        );
        let mut failures = 0;
        let mut successes = 0;
        for _ in 0..200 {
            match h.fetch_space(0) {
                Ok(_) => successes += 1,
                Err(FetchError::Transient(0)) => failures += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failures > 30, "failures: {failures}");
        assert!(successes > 30, "successes: {successes}");
        assert_eq!(h.failures(), failures);
    }

    #[test]
    #[should_panic(expected = "failure_rate")]
    fn invalid_failure_rate_rejected() {
        let _ = SimulatedHost::with_config(
            DatasetBuilder::new().build().unwrap(),
            HostConfig { failure_rate: 1.0, ..Default::default() },
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(FetchError::NotFound(3).to_string(), "space 3 not found");
        assert!(FetchError::Transient(1).to_string().contains("transient"));
    }
}
