//! A minimal blocking HTTP/1.1 client.
//!
//! Shared by the CLI's `mass http` probe, the chaos tests, and the X14
//! load bench — one request per connection, mirroring the server's
//! `Connection: close` discipline. Not a general client: it exists so the
//! smoke gates need no external tooling.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body, lossily decoded to UTF-8.
    pub body: String,
}

impl HttpReply {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a raw response byte stream (exposed for the serve-side
/// round-trip tests).
pub fn parse_reply(wire: &[u8]) -> io::Result<HttpReply> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, why.to_string());
    let head_end = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator"))?;
    let head = String::from_utf8_lossy(&wire[..head_end]);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/") {
        return Err(bad("not an HTTP status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparsable status code"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let body = String::from_utf8_lossy(&wire[head_end + 4..]).into_owned();
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// Sends one request and reads the full response. `addr` is `host:port`;
/// `target` is the path plus query (`/topk?k=3`).
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> io::Result<HttpReply> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    let body = body.unwrap_or(b"");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut wire = Vec::new();
    stream.read_to_end(&mut wire)?;
    parse_reply(&wire)
}

/// `GET` convenience.
pub fn get(addr: &str, target: &str, timeout: Duration) -> io::Result<HttpReply> {
    request(addr, "GET", target, None, timeout)
}

/// `POST` convenience.
pub fn post(addr: &str, target: &str, body: &[u8], timeout: Duration) -> io::Result<HttpReply> {
    request(addr, "POST", target, Some(body), timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let wire =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\nhi";
        let reply = parse_reply(wire).unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(reply.body, "hi");
    }

    #[test]
    fn rejects_non_http() {
        assert!(parse_reply(b"garbage\r\n\r\n").is_err());
        assert!(parse_reply(b"no terminator").is_err());
    }
}
