//! The live telemetry plane for one server (DESIGN.md §7, §12).
//!
//! `--trace-out` / `--metrics-out` artifacts only exist after shutdown;
//! this plane is the *live* surface: an always-on metrics registry for
//! `GET /metrics` (Prometheus text exposition), sliding-window
//! histograms/counters so p99 and QPS mean "the last 60 s", a seeded
//! [`TraceIdGen`] correlating every request with the refresh it triggers,
//! and the [`FlightRecorder`] behind `GET /debug/requests`.
//!
//! Everything here is read off atomics or short-lived snapshots — a
//! scrape never touches the query path's locks. The plane is independent
//! of the process-global `mass_obs` telemetry: the global one feeds the
//! artifact files when the operator opts in, the plane feeds the live
//! endpoints always (unless `live_metrics` is off, which makes every
//! handle inert — the "telemetry off" arm of the X15 overhead bench).

use mass_obs::metrics::SERVE_LATENCY_BOUNDS;
use mass_obs::prometheus::PromWriter;
use mass_obs::{
    Counter, FlightRecorder, Gauge, Histogram, Registry, TraceId, TraceIdGen, WindowCounter,
    WindowHistogram,
};

/// Availability objective backing the error-budget burn rate reported by
/// `/debug/slo`: 99.9%, i.e. an error budget of 0.1% of requests. A burn
/// of 1.0 means errors consume the budget exactly as fast as allowed.
pub const SLO_ERROR_BUDGET: f64 = 0.001;

/// Telemetry-plane knobs (the `--flight-recorder-cap`, `--sample-slow-ms`,
/// `--window-secs` CLI flags land here).
#[derive(Clone, Debug)]
pub struct PlaneConfig {
    /// Master switch for the live registry and window metrics. Off makes
    /// every handle inert (used by the X15 "telemetry off" baseline).
    pub live_metrics: bool,
    /// Flight-recorder ring capacity; 0 disables trace capture entirely.
    pub flight_recorder_cap: usize,
    /// Requests at or above this latency are always sampled. 0 keeps
    /// every request (debug mode).
    pub sample_slow_ms: u64,
    /// Fast, successful requests are kept one-in-N; 0 disables the
    /// probabilistic path (only errors/5xx/slow are kept).
    pub sample_keep_one_in: u64,
    /// Sliding-window length for the `/debug/slo` and `{window=..}`
    /// metric variants.
    pub window_secs: u64,
    /// Trace-id generator seed (deterministic ids under test).
    pub trace_seed: u64,
}

impl Default for PlaneConfig {
    fn default() -> PlaneConfig {
        PlaneConfig {
            live_metrics: true,
            flight_recorder_cap: 256,
            sample_slow_ms: 50,
            sample_keep_one_in: 16,
            window_secs: 60,
            trace_seed: 0,
        }
    }
}

/// Rolled-up view of the sliding window, for `/debug/slo`.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowStats {
    /// Requests inside the window.
    pub requests: u64,
    /// 5xx responses inside the window.
    pub errors: u64,
    /// Window p50 latency in µs, if any traffic.
    pub p50_us: Option<f64>,
    /// Window p99 latency in µs, if any traffic.
    pub p99_us: Option<f64>,
}

/// One server's live telemetry: hoisted lock-free handles, windows, the
/// flight recorder, and the trace-id source.
pub struct TelemetryPlane {
    live: bool,
    registry: Registry,
    /// The span-tree ring behind `/debug/requests`.
    pub recorder: FlightRecorder,
    trace_gen: TraceIdGen,
    window_secs: u64,
    win_request_us: WindowHistogram,
    win_requests: WindowCounter,
    win_errors: WindowCounter,
    /// `serve.requests` — fully routed requests.
    pub requests: Counter,
    /// `serve.http_4xx`.
    pub http_4xx: Counter,
    /// `serve.http_5xx`.
    pub http_5xx: Counter,
    /// `serve.shed` — connections/batches refused by admission control.
    pub shed: Counter,
    /// `serve.deadline_exceeded`.
    pub deadline_exceeded: Counter,
    /// `serve.edit_batches` accepted.
    pub edit_batches: Counter,
    /// `serve.refreshes` that published.
    pub refreshes: Counter,
    /// `serve.refresh_failures` quarantined.
    pub refresh_failures: Counter,
    /// `serve.ad_cache_hits` (fed to [`crate::cache::AdVectorCache`]).
    pub cache_hits: Counter,
    /// `serve.ad_cache_misses`.
    pub cache_misses: Counter,
    /// `serve.request_us` cumulative latency histogram.
    pub request_us: Histogram,
    /// `serve.refresh_us` cumulative refresh-duration histogram.
    pub refresh_us: Histogram,
    /// `serve.epoch` gauge (set on publish).
    pub epoch: Gauge,
    /// `serve.stale_ms` gauge (set at scrape time).
    pub stale_ms: Gauge,
    /// `serve.queue_depth` gauge (fed to the accept queue).
    pub queue_depth: Gauge,
    /// `serve.pending_batches` gauge (set at scrape time).
    pub pending_batches: Gauge,
    /// `serve.degraded` 0/1 gauge (set at scrape time).
    pub degraded: Gauge,
}

impl TelemetryPlane {
    /// Builds the plane. With `live_metrics` off the registry is disabled
    /// and every handle inert; the recorder obeys its own capacity knob.
    pub fn new(cfg: &PlaneConfig) -> TelemetryPlane {
        let registry = if cfg.live_metrics {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let window_secs = cfg.window_secs.max(1);
        // 12 slots → 5 s resolution on the default 60 s window.
        let slots = 12;
        TelemetryPlane {
            live: cfg.live_metrics,
            recorder: FlightRecorder::new(
                cfg.flight_recorder_cap,
                cfg.sample_slow_ms.saturating_mul(1_000),
                cfg.sample_keep_one_in,
            ),
            trace_gen: TraceIdGen::new(cfg.trace_seed),
            window_secs,
            win_request_us: WindowHistogram::new(&SERVE_LATENCY_BOUNDS, window_secs, slots),
            win_requests: WindowCounter::new(window_secs, slots),
            win_errors: WindowCounter::new(window_secs, slots),
            requests: registry.counter("serve.requests"),
            http_4xx: registry.counter("serve.http_4xx"),
            http_5xx: registry.counter("serve.http_5xx"),
            shed: registry.counter("serve.shed"),
            deadline_exceeded: registry.counter("serve.deadline_exceeded"),
            edit_batches: registry.counter("serve.edit_batches"),
            refreshes: registry.counter("serve.refreshes"),
            refresh_failures: registry.counter("serve.refresh_failures"),
            cache_hits: registry.counter("serve.ad_cache_hits"),
            cache_misses: registry.counter("serve.ad_cache_misses"),
            request_us: registry.histogram_with("serve.request_us", &SERVE_LATENCY_BOUNDS),
            refresh_us: registry.histogram("serve.refresh_us"),
            epoch: registry.gauge("serve.epoch"),
            stale_ms: registry.gauge("serve.stale_ms"),
            queue_depth: registry.gauge("serve.queue_depth"),
            pending_batches: registry.gauge("serve.pending_batches"),
            degraded: registry.gauge("serve.degraded"),
            registry,
        }
    }

    /// A fresh request-correlation id.
    pub fn next_trace(&self) -> TraceId {
        self.trace_gen.next_id()
    }

    /// The sliding-window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Records one completed request into the cumulative and window
    /// metrics. All atomics — safe on the hot path.
    pub fn observe_request(&self, status: u16, elapsed_us: u64) {
        self.requests.inc();
        self.request_us.record(elapsed_us as f64);
        match status {
            400..=499 => self.http_4xx.inc(),
            500.. => self.http_5xx.inc(),
            _ => {}
        }
        if self.live {
            self.win_requests.inc();
            self.win_request_us.record(elapsed_us as f64);
            if status >= 500 {
                self.win_errors.inc();
            }
        }
    }

    /// Records one refresh outcome.
    pub fn observe_refresh(&self, ok: bool, elapsed_us: u64) {
        if ok {
            self.refreshes.inc();
        } else {
            self.refresh_failures.inc();
        }
        self.refresh_us.record(elapsed_us as f64);
    }

    /// Rolled-up window view for `/debug/slo`.
    pub fn window_stats(&self) -> WindowStats {
        let snap = self.win_request_us.snapshot();
        WindowStats {
            requests: self.win_requests.sum(),
            errors: self.win_errors.sum(),
            p50_us: snap.quantile(0.50),
            p99_us: snap.quantile(0.99),
        }
    }

    /// Error-budget burn rate over the window: the observed error ratio
    /// divided by [`SLO_ERROR_BUDGET`] (1.0 = burning exactly at budget).
    pub fn error_budget_burn(&self, stats: &WindowStats) -> f64 {
        if stats.requests == 0 {
            return 0.0;
        }
        (stats.errors as f64 / stats.requests as f64) / SLO_ERROR_BUDGET
    }

    /// Renders the `/metrics` exposition document: every cumulative
    /// metric, the `{window="Ns"}` variants, and flight-recorder counters.
    /// Call the gauge setters first so point-in-time values are fresh.
    pub fn render_prometheus(&self) -> String {
        let mut w = PromWriter::new();
        w.snapshot(&self.registry.snapshot());
        if self.live {
            let label = format!("{}s", self.window_secs);
            let labels: [(&str, &str); 1] = [("window", label.as_str())];
            w.histogram("serve.request_us", &labels, &self.win_request_us.snapshot());
            w.gauge(
                "serve.window_requests",
                &labels,
                self.win_requests.sum() as f64,
            );
            w.gauge("serve.window_errors", &labels, self.win_errors.sum() as f64);
        }
        let stats = self.recorder.stats();
        w.counter("serve.flight_offered", &[], stats.offered);
        w.counter("serve.flight_sampled", &[], stats.kept);
        w.counter("serve.flight_contended", &[], stats.contended);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_counts_and_windows_requests() {
        let plane = TelemetryPlane::new(&PlaneConfig::default());
        plane.observe_request(200, 300);
        plane.observe_request(404, 200);
        plane.observe_request(503, 90_000);
        assert_eq!(plane.requests.get(), 3);
        assert_eq!(plane.http_4xx.get(), 1);
        assert_eq!(plane.http_5xx.get(), 1);
        let stats = plane.window_stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 1);
        assert!(stats.p50_us.is_some());
        let burn = plane.error_budget_burn(&stats);
        assert!(burn > 300.0, "1/3 errors burns far beyond budget: {burn}");
    }

    #[test]
    fn disabled_plane_is_inert_but_recorder_obeys_its_own_knob() {
        let plane = TelemetryPlane::new(&PlaneConfig {
            live_metrics: false,
            flight_recorder_cap: 8,
            ..PlaneConfig::default()
        });
        plane.observe_request(200, 300);
        assert_eq!(plane.requests.get(), 0);
        assert_eq!(plane.window_stats().requests, 0);
        assert!(plane.recorder.is_enabled());
    }

    #[test]
    fn trace_ids_are_deterministic_per_seed() {
        let a = TelemetryPlane::new(&PlaneConfig {
            trace_seed: 7,
            ..PlaneConfig::default()
        });
        let b = TelemetryPlane::new(&PlaneConfig {
            trace_seed: 7,
            ..PlaneConfig::default()
        });
        assert_eq!(a.next_trace(), b.next_trace());
        assert_ne!(a.next_trace(), a.next_trace());
    }

    #[test]
    fn exposition_is_valid_and_has_window_variants() {
        let plane = TelemetryPlane::new(&PlaneConfig::default());
        plane.observe_request(200, 250);
        plane.observe_request(500, 2_500);
        plane.observe_refresh(true, 15_000);
        plane.epoch.set(3);
        let text = plane.render_prometheus();
        let report = mass_obs::prometheus::validate(&text).expect(&text);
        for family in [
            "serve_requests",
            "serve_request_us",
            "serve_refreshes",
            "serve_epoch",
            "serve_window_requests",
            "serve_flight_sampled",
        ] {
            assert!(report.families.contains_key(family), "missing {family}");
        }
        assert!(
            text.contains("serve_request_us_bucket{window=\"60s\""),
            "{text}"
        );
    }
}
