//! A byte-budgeted HTTP/1.1 request parser and response writer.
//!
//! The parser is the server's first line of defence: every read is
//! bounded (request line, header count, header size, body size), every
//! malformed input maps to a definite [`ParseError`] with a 4xx/5xx
//! classification, and no input — truncated, oversized, or garbage — can
//! make it panic (`tests/parser_fuzz.rs` owns that invariant). Socket
//! read timeouts surface as [`ParseError::Timeout`] so slow-loris clients
//! get a fast 408 instead of a parked worker.
//!
//! Only the subset the serving layer needs is implemented: `GET`/`POST`,
//! `Content-Length` bodies (no chunked transfer), `Connection: close` on
//! every response.

use std::io::{self, Read, Write};

/// Hard byte budgets for one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub max_request_line: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Longest accepted single header line.
    pub max_header_line: usize,
    /// Largest accepted `Content-Length` body.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 4096,
            max_headers: 64,
            max_header_line: 1024,
            max_body: 64 * 1024,
        }
    }
}

/// Why a request could not be read. [`status`](ParseError::status) maps
/// each variant to the response the server should write (`None` = the
/// client is gone or never spoke; drop the connection silently).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The stream ended before a complete request arrived.
    Incomplete,
    /// A socket read timed out (slow-loris or stalled client).
    Timeout,
    /// An I/O error other than timeout.
    Io(io::ErrorKind),
    /// The request line is not `METHOD TARGET HTTP/x.y`.
    BadRequestLine,
    /// A method other than GET/POST.
    UnsupportedMethod,
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion,
    /// The request line exceeded its byte budget.
    UriTooLong,
    /// A header line exceeded its byte budget.
    HeaderTooLarge,
    /// More header lines than the budget allows.
    TooManyHeaders,
    /// A header line without a `:` separator.
    BadHeader,
    /// An unparsable `Content-Length` value.
    BadContentLength,
    /// `Content-Length` exceeded the body budget.
    BodyTooLarge,
    /// A `Transfer-Encoding` the server does not implement.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The status code to answer with (`None`: drop without a response).
    pub fn status(&self) -> Option<u16> {
        match self {
            ParseError::Incomplete | ParseError::Io(_) => None,
            ParseError::Timeout => Some(408),
            ParseError::BadRequestLine | ParseError::BadHeader | ParseError::BadContentLength => {
                Some(400)
            }
            ParseError::UnsupportedMethod => Some(405),
            ParseError::UnsupportedVersion => Some(505),
            ParseError::UriTooLong => Some(414),
            ParseError::HeaderTooLarge | ParseError::TooManyHeaders => Some(431),
            ParseError::BodyTooLarge => Some(413),
            ParseError::UnsupportedTransferEncoding => Some(501),
        }
    }

    /// Short stable label for metrics and error bodies.
    pub fn label(&self) -> &'static str {
        match self {
            ParseError::Incomplete => "incomplete",
            ParseError::Timeout => "timeout",
            ParseError::Io(_) => "io",
            ParseError::BadRequestLine => "bad_request_line",
            ParseError::UnsupportedMethod => "unsupported_method",
            ParseError::UnsupportedVersion => "unsupported_version",
            ParseError::UriTooLong => "uri_too_long",
            ParseError::HeaderTooLarge => "header_too_large",
            ParseError::TooManyHeaders => "too_many_headers",
            ParseError::BadHeader => "bad_header",
            ParseError::BadContentLength => "bad_content_length",
            ParseError::BodyTooLarge => "body_too_large",
            ParseError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
        }
    }
}

fn io_err(e: io::Error) -> ParseError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ParseError::Timeout,
        kind => ParseError::Io(kind),
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Uppercase method (`GET` or `POST`).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A buffered byte source over any `Read`, with budget-aware line reads.
struct ByteReader<'a, R: Read> {
    inner: &'a mut R,
    buf: [u8; 4096],
    start: usize,
    end: usize,
}

impl<'a, R: Read> ByteReader<'a, R> {
    fn new(inner: &'a mut R) -> Self {
        ByteReader {
            inner,
            buf: [0; 4096],
            start: 0,
            end: 0,
        }
    }

    /// Next byte; `Ok(None)` at end of stream.
    fn next_byte(&mut self) -> Result<Option<u8>, ParseError> {
        if self.start == self.end {
            self.start = 0;
            self.end = self.inner.read(&mut self.buf).map_err(io_err)?;
            if self.end == 0 {
                return Ok(None);
            }
        }
        let b = self.buf[self.start];
        self.start += 1;
        Ok(Some(b))
    }

    /// Reads one `\n`-terminated line (CR stripped), spending at most
    /// `budget` bytes; `over` is returned the moment the budget is blown.
    fn read_line(&mut self, budget: usize, over: ParseError) -> Result<Option<String>, ParseError> {
        let mut line: Vec<u8> = Vec::new();
        loop {
            match self.next_byte()? {
                None => {
                    return if line.is_empty() {
                        Ok(None)
                    } else {
                        Err(ParseError::Incomplete)
                    }
                }
                Some(b'\n') => break,
                Some(b) => {
                    if line.len() >= budget {
                        return Err(over);
                    }
                    line.push(b);
                }
            }
        }
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Ok(Some(String::from_utf8_lossy(&line).into_owned()))
    }

    /// Reads exactly `n` bytes (the body).
    fn read_exact_n(&mut self, n: usize) -> Result<Vec<u8>, ParseError> {
        let mut out = Vec::with_capacity(n.min(64 * 1024));
        while out.len() < n {
            match self.next_byte()? {
                Some(b) => out.push(b),
                None => return Err(ParseError::Incomplete),
            }
        }
        Ok(out)
    }
}

/// Decodes `%XX` escapes (and, when `plus_is_space`, `+` as space).
/// Invalid escapes pass through literally — never an error, never a panic.
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let hi = (h[0] as char).to_digit(16)?;
                    let lo = (h[1] as char).to_digit(16)?;
                    Some((hi * 16 + lo) as u8)
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into a decoded path and query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(kv, true), String::new()),
        })
        .collect();
    (percent_decode(path, false), pairs)
}

/// Reads one request from `stream` under the given budgets.
pub fn read_request<R: Read>(stream: &mut R, limits: &Limits) -> Result<Request, ParseError> {
    let mut r = ByteReader::new(stream);

    let line = r
        .read_line(limits.max_request_line, ParseError::UriTooLong)?
        .ok_or(ParseError::Incomplete)?;
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::BadRequestLine),
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        if version.starts_with("HTTP/") {
            return Err(ParseError::UnsupportedVersion);
        }
        return Err(ParseError::BadRequestLine);
    }
    if !matches!(method, "GET" | "POST") {
        return Err(ParseError::UnsupportedMethod);
    }
    if !target.starts_with('/') {
        return Err(ParseError::BadRequestLine);
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = r
            .read_line(limits.max_header_line, ParseError::HeaderTooLarge)?
            .ok_or(ParseError::Incomplete)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        let name = name.trim();
        if name.is_empty() {
            return Err(ParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(ParseError::UnsupportedTransferEncoding);
    }
    let body = match find("content-length") {
        None => Vec::new(),
        Some(v) => {
            let n: usize = v.parse().map_err(|_| ParseError::BadContentLength)?;
            if n > limits.max_body {
                return Err(ParseError::BodyTooLarge);
            }
            r.read_exact_n(n)?
        }
    };

    let (path, query) = parse_target(target);
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// The reason phrase for every status this server emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// One response. Always closes the connection (`Connection: close`): the
/// server is snapshot-read-only per request, so keep-alive buys little and
/// connection state machines are where parsers grow holes.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length`, `Connection` are added on write).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: mass_obs::json::Json) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: value.render().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: body.as_bytes().to_vec(),
        }
    }

    /// The standard error shape: `{"error": <label>}`.
    pub fn error(status: u16, label: &str) -> Response {
        Response::json(
            status,
            mass_obs::json::Json::Obj(vec![(
                "error".into(),
                mass_obs::json::Json::Str(label.into()),
            )]),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.into(), value));
        self
    }

    /// Serialises the response (HTTP/1.1, `Connection: close`).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, status_text(self.status));
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(input: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut Cursor::new(input.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse(b"GET /topk?domain=Sports&k=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/topk");
        assert_eq!(req.query_param("domain"), Some("Sports"));
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body() {
        let req = parse(b"POST /match HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn percent_and_plus_decode_in_queries() {
        let req = parse(b"GET /topk?domain=a%20b+c&x=%2f HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("domain"), Some("a b c"));
        assert_eq!(req.query_param("x"), Some("/"));
        // Invalid escapes pass through untouched.
        let req = parse(b"GET /p%zz?k=%2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/p%zz");
        assert_eq!(req.query_param("k"), Some("%2"));
    }

    #[test]
    fn classification_table() {
        let cases: Vec<(&[u8], ParseError)> = vec![
            (b"", ParseError::Incomplete),
            (b"GET /x HTTP/1.1\r\nHost: x", ParseError::Incomplete),
            (b"garbage\r\n\r\n", ParseError::BadRequestLine),
            (b"GET /x HTTP/1.1 extra\r\n\r\n", ParseError::BadRequestLine),
            (b"GET x HTTP/1.1\r\n\r\n", ParseError::BadRequestLine),
            (b"DELETE /x HTTP/1.1\r\n\r\n", ParseError::UnsupportedMethod),
            (b"GET /x HTTP/2.0\r\n\r\n", ParseError::UnsupportedVersion),
            (b"GET /x FTP/1.1\r\n\r\n", ParseError::BadRequestLine),
            (b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n", ParseError::BadHeader),
            (
                b"GET /x HTTP/1.1\r\n: novalue\r\n\r\n",
                ParseError::BadHeader,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
                ParseError::BadContentLength,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
                ParseError::BodyTooLarge,
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                ParseError::UnsupportedTransferEncoding,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
                ParseError::Incomplete,
            ),
        ];
        for (input, want) in cases {
            assert_eq!(parse(input), Err(want.clone()), "{:?}", input);
        }
    }

    #[test]
    fn budgets_are_enforced() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8000));
        assert_eq!(parse(long_target.as_bytes()), Err(ParseError::UriTooLong));

        let big_header = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "v".repeat(4000));
        assert_eq!(
            parse(big_header.as_bytes()),
            Err(ParseError::HeaderTooLarge)
        );

        let mut many = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..100 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert_eq!(parse(many.as_bytes()), Err(ParseError::TooManyHeaders));
    }

    #[test]
    fn statuses_match_the_contract() {
        assert_eq!(ParseError::Incomplete.status(), None);
        assert_eq!(ParseError::Timeout.status(), Some(408));
        assert_eq!(ParseError::BodyTooLarge.status(), Some(413));
        assert_eq!(ParseError::UriTooLong.status(), Some(414));
        assert_eq!(ParseError::TooManyHeaders.status(), Some(431));
        assert_eq!(ParseError::UnsupportedMethod.status(), Some(405));
        assert_eq!(ParseError::UnsupportedVersion.status(), Some(505));
    }

    #[test]
    fn response_round_trips_through_the_client_parser() {
        let resp = Response::json(
            200,
            mass_obs::json::Json::Obj(vec![("ok".into(), mass_obs::json::Json::Bool(true))]),
        )
        .with_header("X-Mass-Epoch", "7".into());
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let reply = crate::client::parse_reply(&wire).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-mass-epoch"), Some("7"));
        assert_eq!(reply.body, r#"{"ok":true}"#);
    }
}
