//! A bounded MPMC work queue — the admission-control point.
//!
//! The accept thread `try_push`es connections; when the queue is full the
//! push fails *immediately* and the caller sheds the connection with a
//! fast 503 instead of queuing unboundedly (DESIGN.md §12: overload must
//! degrade the newest request, not the tail latency of every request).
//! Workers block on [`BoundedQueue::pop`], which drains remaining items
//! after [`BoundedQueue::close`] so shutdown finishes in-flight work.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A mutex+condvar bounded queue (no external deps, no spinning).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking. Returns the item back when the queue is
    /// full (shed it) or closed (drop it).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained (workers exit then).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Closes the queue: pushes start failing, pops drain then return
    /// `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sheds_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let mut pushed = 0;
        while pushed < 20 {
            if q.try_push(pushed).is_ok() {
                pushed += 1;
            } else {
                thread::yield_now();
            }
        }
        // Give consumers a chance to drain before closing.
        while !q.is_empty() {
            thread::yield_now();
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn capacity_floors_at_one() {
        let q = BoundedQueue::new(0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }
}
