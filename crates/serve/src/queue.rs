//! A bounded MPMC work queue — the admission-control point.
//!
//! The accept thread `try_push`es connections; when the queue is full the
//! push fails *immediately* and the caller sheds the connection with a
//! fast 503 instead of queuing unboundedly (DESIGN.md §12: overload must
//! degrade the newest request, not the tail latency of every request).
//! Workers block on [`BoundedQueue::pop`], which drains remaining items
//! after [`BoundedQueue::close`] so shutdown finishes in-flight work.

use mass_obs::Gauge;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A mutex+condvar bounded queue (no external deps, no spinning).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
    /// Depth gauge updated under the queue lock, so its value is always a
    /// length the queue really had (inert by default).
    depth: Gauge,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue::with_gauge(capacity, Gauge::default())
    }

    /// Like [`new`](Self::new), but queue depth is mirrored into `gauge`
    /// on every push/pop (the telemetry plane's `serve.queue_depth`).
    pub fn with_gauge(capacity: usize, gauge: Gauge) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            depth: gauge,
        }
    }

    /// Enqueues without blocking. Returns the item back when the queue is
    /// full (shed it) or closed (drop it).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.depth.set(inner.items.len() as i64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained (workers exit then).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.depth.set(inner.items.len() as i64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Closes the queue: pushes start failing, pops drain then return
    /// `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sheds_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let mut pushed = 0;
        while pushed < 20 {
            if q.try_push(pushed).is_ok() {
                pushed += 1;
            } else {
                thread::yield_now();
            }
        }
        // Give consumers a chance to drain before closing.
        while !q.is_empty() {
            thread::yield_now();
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn capacity_floors_at_one() {
        let q = BoundedQueue::new(0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }

    #[test]
    fn depth_gauge_tracks_length() {
        let registry = mass_obs::Registry::new();
        let gauge = registry.gauge("serve.queue_depth");
        let q = BoundedQueue::with_gauge(4, gauge.clone());
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(gauge.get(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(gauge.get(), 1);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(gauge.get(), 0);
    }

    #[test]
    fn depth_gauge_is_bounded_under_concurrent_enqueue_and_shed() {
        let registry = mass_obs::Registry::new();
        let gauge = registry.gauge("serve.queue_depth");
        let q = Arc::new(BoundedQueue::with_gauge(3, gauge.clone()));
        let shed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        thread::scope(|s| {
            // Producers race pushes; full-queue pushes count as sheds.
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    let shed = Arc::clone(&shed);
                    s.spawn(move || {
                        for i in 0..200 {
                            if q.try_push(t * 1000 + i).is_err() {
                                shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    })
                })
                .collect();
            // One consumer drains while producers push, sampling the gauge.
            let q2 = Arc::clone(&q);
            let g2 = gauge.clone();
            let consumer = s.spawn(move || {
                while q2.pop().is_some() {
                    let d = g2.get();
                    assert!((0..=3).contains(&d), "gauge {d} outside capacity");
                }
            });
            for p in producers {
                p.join().unwrap();
            }
            q.close();
            consumer.join().unwrap();
        });
        // At quiescence the gauge agrees with the real (drained) length.
        assert_eq!(gauge.get(), q.len() as i64);
        assert!(shed.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }
}
